"""Setup shim for legacy editable installs.

The evaluation environment has no network access and no `wheel`
package, so PEP 517 editable builds (which need bdist_wheel) fail.
`pip install -e . --no-build-isolation --no-use-pep517` uses this shim;
all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
