#!/usr/bin/env python
"""PCB drill routing — the workload behind TSPLIB's pcb instances.

A drilling machine must visit every hole on a board exactly once; the
tour length is machine time.  This example builds a pcb3038-style
synthetic board (component blocks of gridded holes plus scattered
vias), explores the cluster-size design space on it (the Table I
experiment), and reports the winning configuration's hardware cost.

Run:
    python examples/pcb_drill_routing.py [n_holes]
"""

from __future__ import annotations

import sys

from repro import evaluate_ppa
from repro.analysis.capacity import table1_capacity_bytes
from repro.analysis.sweep import explore_cluster_strategies
from repro.clustering.strategies import strategy_from_name
from repro.tsp.generators import pcb_style
from repro.tsp.reference import reference_length
from repro.utils.tables import Table
from repro.utils.units import format_bytes, format_time


def main(n_holes: int = 600) -> None:
    board = pcb_style(n_holes, seed=3, name=f"pcb{n_holes}-demo")
    print(f"board: {board} (drill holes on a snapped grid)")

    reference = reference_length(board, seed=0)
    print(f"CPU reference tour (greedy + 2-opt + Or-opt): {reference:.0f}")

    # ------------------------------------------------------------------
    # Design-space exploration: which cluster strategy would you build?
    # ------------------------------------------------------------------
    strategies = ("2", "1/2", "1/2/3", "1/2/3/4")
    rows = explore_cluster_strategies(
        board, strategies=strategies, seed=1, reference=reference
    )

    table = Table(
        f"Cluster-strategy exploration on the {n_holes}-hole board",
        ["strategy", "weight memory", "optimal ratio", "drill-path overhead %"],
    )
    for r in rows:
        capacity = table1_capacity_bytes(board.n, r.strategy_name)
        table.add_row(
            [
                r.strategy_name,
                format_bytes(capacity),
                r.optimal_ratio,
                f"{100 * (r.optimal_ratio - 1):.1f}",
            ]
        )
    table.add_note("paper sweet spot: 1/2/3 (p_max = 3)")
    print()
    print(table)

    # ------------------------------------------------------------------
    # Hardware report for the best quality/cost configuration.
    # ------------------------------------------------------------------
    best = min(rows, key=lambda r: r.optimal_ratio)
    strategy = strategy_from_name(best.strategy_name)
    ppa = evaluate_ppa(
        n_cities=board.n,
        p=strategy.hardware_p(),
        n_clusters=strategy.provisioned_clusters(board.n),
        mean_cluster_size=(1 + strategy.hardware_p()) / 2,
    )
    print()
    print(
        f"winning strategy {best.strategy_name!r}: "
        f"{ppa.n_arrays} arrays, {ppa.chip_area_mm2:.3f} mm^2, "
        f"drill path computed in {format_time(ppa.time_to_solution_s)} "
        f"of annealing"
    )

    # ------------------------------------------------------------------
    # Visual check: write the winning drill path as an SVG.
    # ------------------------------------------------------------------
    from repro.annealer import AnnealerConfig, ClusteredCIMAnnealer
    from repro.tsp.svg import save_tour_svg

    result = ClusteredCIMAnnealer(
        AnnealerConfig(strategy=best.strategy_name, seed=1)
    ).solve(board)
    svg_path = "pcb_drill_path.svg"
    save_tour_svg(board, svg_path, tour=result.tour,
                  title=f"{board.name} drill path")
    print(f"drill path rendered to {svg_path}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)
