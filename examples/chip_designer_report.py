#!/usr/bin/env python
"""Chip-designer report — size a CIM annealer for a target problem.

Given a target TSP size, this example sizes the digital CIM chip for
each p_max, prints the full PPA trade-off (the Fig. 7 / Table II view),
and renders the Table III comparison of the chosen design against the
published state-of-the-art annealers.

Run:
    python examples/chip_designer_report.py [n_cities]
"""

from __future__ import annotations

import sys

from repro import SemiFlexibleStrategy, evaluate_ppa
from repro.hardware import build_comparison_table
from repro.hardware.area import AreaModel
from repro.utils.tables import Table
from repro.utils.units import (
    format_area,
    format_bits,
    format_energy,
    format_power,
    format_time,
)


def main(n_cities: int = 85_900) -> None:
    print(f"target problem: {n_cities:,}-city TSP\n")

    # ------------------------------------------------------------------
    # 1. Size the chip per p_max (Table II + Fig. 7 trade-off).
    # ------------------------------------------------------------------
    area_model = AreaModel()
    table = Table(
        "Design points (16 nm FinFET, 8-bit weights, 5x2-window arrays)",
        ["p_max", "window", "array (bits)", "array area", "#arrays",
         "capacity", "chip area", "latency", "energy", "avg power"],
    )
    reports = {}
    for p in (2, 3, 4):
        strategy = SemiFlexibleStrategy(p_max=p)
        rep = evaluate_ppa(
            n_cities=n_cities,
            p=p,
            n_clusters=strategy.provisioned_clusters(n_cities),
            mean_cluster_size=strategy.target_mean,
        )
        reports[p] = rep
        h, w = area_model.array_dimensions_um(p)
        table.add_row(
            [
                p,
                f"{p * p + 2 * p}x{p * p}",
                "x".join(map(str, rep.chip.array_bit_geometry()))
                if hasattr(rep, "chip")
                else f"{5 * (p * p + 2 * p)}x{2 * p * p * 8}",
                f"{h:.0f}x{w:.0f} um",
                rep.n_arrays,
                format_bits(rep.capacity_bits),
                format_area(rep.chip_area_m2),
                format_time(rep.time_to_solution_s),
                format_energy(rep.energy_to_solution_j),
                format_power(rep.average_power_w),
            ]
        )
    table.add_note("p_max = 2: least area, most levels (slowest)")
    table.add_note("p_max = 3: the paper's quality/cost sweet spot")
    print(table)

    # ------------------------------------------------------------------
    # 2. Table III — the chosen design vs published annealers.
    # ------------------------------------------------------------------
    chosen = reports[3]
    rows = build_comparison_table(
        {
            "n_spins": chosen.n_spins,
            "weight_memory_bits": chosen.capacity_bits,
            "chip_area_mm2": chosen.chip_area_mm2,
            "chip_power_w": chosen.average_power_w,
        },
        n_cities=n_cities,
    )
    cmp_table = Table(
        "Comparison with SOTA scalable annealers (physical per-bit metrics)",
        ["design", "problem", "area um^2/bit", "power nW/bit"],
    )
    problems = {
        "This design": "TSP",
    }
    for name, r in rows.items():
        power = r["power_per_bit_w"]
        cmp_table.add_row(
            [
                name,
                problems.get(name, "Max-Cut"),
                r["area_per_bit_um2"],
                "NA" if power is None else power * 1e9,
            ]
        )
    ours = rows["This design"]
    cmp_table.add_note(
        f"functionally normalised (vs N^4 = "
        f"{ours['functional_weight_bits']:.1e} b): area improvement "
        f"{ours['area_improvement_normalized']:.1e}x, power "
        f"{ours['power_improvement_normalized']:.1e}x"
    )
    print()
    print(cmp_table)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 85_900)
