#!/usr/bin/env python
"""Quickstart: solve a TSP with the clustered digital-CIM annealer.

Builds a 500-city instance, solves it with the paper's default
configuration (semi-flexible clustering with p_max = 3, the
300→580 mV noisy-SRAM annealing schedule), compares the result against
classical CPU baselines, and prints the hardware cost of the simulated
chip.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AnnealerConfig,
    ClusteredCIMAnnealer,
    evaluate_ppa,
    random_uniform,
    tour_length,
)
from repro.tsp.baselines import (
    greedy_edge_tour,
    nearest_neighbor_tour,
    two_opt_improve,
)
from repro.utils.tables import Table
from repro.utils.units import format_area, format_bits, format_energy, format_time


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A problem instance.  Any (n, 2) coordinate array works; TSPLIB
    #    files load via repro.load_tsplib(path).
    # ------------------------------------------------------------------
    instance = random_uniform(500, seed=42)
    print(f"instance: {instance}")

    # ------------------------------------------------------------------
    # 2. Solve with the paper's defaults (p_max = 3 semi-flexible
    #    clustering, 400 iterations/level, V_DD 300 -> 580 mV).
    # ------------------------------------------------------------------
    annealer = ClusteredCIMAnnealer(AnnealerConfig(seed=7))
    result = annealer.solve(instance)
    print(
        f"annealer: length={result.length:.0f}, "
        f"{result.n_levels} levels, host {result.wall_time_s:.1f}s"
    )

    # ------------------------------------------------------------------
    # 3. Compare with CPU baselines.
    # ------------------------------------------------------------------
    nn = tour_length(instance, nearest_neighbor_tour(instance, seed=0))
    ge_tour = greedy_edge_tour(instance)
    ge = tour_length(instance, ge_tour)
    opt2 = tour_length(instance, two_opt_improve(instance, ge_tour))

    table = Table("Tour quality comparison (500 uniform cities)", ["solver", "length", "vs 2-opt"])
    for name, length in [
        ("nearest neighbour", nn),
        ("greedy edge", ge),
        ("greedy edge + 2-opt", opt2),
        ("clustered CIM annealer", result.length),
    ]:
        table.add_row([name, length, length / opt2])
    print()
    print(table)

    # ------------------------------------------------------------------
    # 4. Hardware cost of the simulated chip (from recorded counters).
    # ------------------------------------------------------------------
    ppa = evaluate_ppa(
        n_cities=instance.n,
        p=result.chip.p,
        n_clusters=result.chip.n_clusters,
        chip=result.chip,
    )
    print()
    print("simulated hardware (16 nm digital CIM):")
    print(f"  weight memory   : {format_bits(ppa.capacity_bits)}")
    print(f"  chip area       : {format_area(ppa.chip_area_m2)}")
    print(f"  time-to-solution: {format_time(ppa.time_to_solution_s)}")
    print(f"  energy          : {format_energy(ppa.energy_to_solution_j)}")
    print(f"  write share     : {100 * ppa.energy.write_fraction:.1f}% of energy")


if __name__ == "__main__":
    main()
