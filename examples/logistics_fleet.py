#!/usr/bin/env python
"""Delivery-route planning over a clustered metro area.

The paper's intro motivates TSP with supply-chain logistics: depots
serve customers concentrated in neighbourhoods (natural clusters).
This example plans a courier route over such a geography, shows how
the hierarchy the annealer builds mirrors the neighbourhood structure,
and compares against the CPU simulated-annealing baseline at equal
move counts.

Run:
    python examples/logistics_fleet.py [n_stops]
"""

from __future__ import annotations

import sys
import time

from repro import AnnealerConfig, ClusteredCIMAnnealer, random_clustered
from repro.tsp.baselines import SAParams, simulated_annealing_tsp
from repro.tsp.reference import reference_length
from repro.utils.tables import Table


def main(n_stops: int = 800) -> None:
    # A metro area: 12 dense neighbourhoods + 10% scattered stops.
    city = random_clustered(
        n_stops, n_clusters=12, seed=11, cluster_std=18.0,
        background_fraction=0.10, name=f"metro{n_stops}",
    )
    print(f"delivery area: {city} (12 neighbourhoods)")
    reference = reference_length(city, seed=0)

    # ------------------------------------------------------------------
    # The clustered CIM annealer: hierarchy should track neighbourhoods.
    # ------------------------------------------------------------------
    annealer = ClusteredCIMAnnealer(AnnealerConfig(seed=5))
    tree = annealer.build_tree(city)
    print(
        "hierarchy levels (clusters per level): "
        + " -> ".join(str(lvl.n_clusters) for lvl in tree.levels)
    )

    t0 = time.perf_counter()
    result = annealer.solve(city)
    cim_host_s = time.perf_counter() - t0

    # ------------------------------------------------------------------
    # CPU SA baseline with the same total number of proposed moves.
    # ------------------------------------------------------------------
    moves = sum(lv.swaps_proposed for lv in result.levels)
    t0 = time.perf_counter()
    sa = simulated_annealing_tsp(
        city, SAParams(n_iterations=max(10_000, moves)), seed=5
    )
    sa_host_s = time.perf_counter() - t0

    table = Table(
        f"Courier route over {n_stops} stops",
        ["planner", "route length", "optimal ratio", "proposed moves",
         "host time s"],
    )
    table.add_row(
        ["clustered CIM annealer", result.length, result.length / reference,
         moves, f"{cim_host_s:.1f}"]
    )
    table.add_row(
        ["CPU simulated annealing", sa.length, sa.length / reference,
         sa.proposed_moves, f"{sa_host_s:.1f}"]
    )
    table.add_row(
        ["CPU reference (2-opt/Or-opt)", reference, 1.0, "-", "-"]
    )
    table.add_note(
        "on hardware the CIM moves run 4 cycles each with all "
        "neighbourhoods updating in parallel - see evaluate_ppa()"
    )
    print()
    print(table)

    # The hierarchy is the win: each annealing level only reorders
    # within-neighbourhood, so the required spins collapse from N^2 to
    # p*N (Fig. 1) while route quality stays in the same band.
    print(
        f"\nspins: conventional N^2 = {n_stops**2:,} vs clustered "
        f"p*N = {3 * n_stops:,}"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 800)
