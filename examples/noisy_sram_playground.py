#!/usr/bin/env python
"""Noisy-SRAM playground — the Sec. IV mechanism, hands on.

Walks through the physics-to-algorithm chain:

1. Monte-Carlo the pseudo-read error-rate sigmoid (Fig. 6b);
2. corrupt an actual weight window at each step of the paper's V_DD
   schedule and watch the noise amplitude anneal away;
3. show the spatial→temporal conversion: the *same* stored distance,
   read through different window cells, yields different noisy values.

Run:
    python examples/noisy_sram_playground.py
"""

from __future__ import annotations

import numpy as np

from repro.ising.schedule import VddSchedule
from repro.sram import SpatialNoiseField, monte_carlo_error_rate
from repro.sram.cell import SRAMCellParams
from repro.utils.tables import Table


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The Fig. 6b experiment.
    # ------------------------------------------------------------------
    curve = monte_carlo_error_rate(n_samples=1000, seed=1)
    sharp = monte_carlo_error_rate(
        n_samples=1000, params=SRAMCellParams(bl_cap_ratio=4.0), seed=1
    )
    table = Table(
        "Pseudo-read error rate vs V_DD (1000-cell Monte Carlo)",
        ["V_DD (mV)", "error rate", "error rate (4x BL cap)"],
    )
    for v in (200, 300, 400, 500, 600, 700, 800):
        table.add_row([v, curve.rate_at(v), sharp.rate_at(v)])
    print(table)
    print(
        f"transition width (5%..45%): {curve.transition_width_mv():.0f} mV; "
        f"sharper at 4x BL cap: {sharp.transition_width_mv():.0f} mV\n"
    )

    # ------------------------------------------------------------------
    # 2. Weight corruption along the paper's annealing schedule.
    # ------------------------------------------------------------------
    schedule = VddSchedule()  # 300 -> 580 mV, 40 mV / 50 iterations
    field = SpatialNoiseField((15, 9), weight_bits=8, seed=7)
    weights = np.arange(135).reshape(15, 9) % 256

    table = Table(
        "Weight noise along the V_DD schedule (15x9 window, 8-bit)",
        ["step", "iterations", "V_DD (mV)", "noisy LSBs",
         "corrupted weights %", "mean |error| (LSB units)"],
    )
    for step in range(schedule.n_steps):
        vdd = schedule.vdd_mv(step)
        lsbs = schedule.noisy_lsbs(step)
        corrupted = field.corrupt(weights, vdd, lsbs)
        err = np.abs(corrupted - weights)
        table.add_row(
            [
                step,
                f"{step * 50}-{step * 50 + 49}",
                vdd,
                lsbs,
                f"{100 * float((err > 0).mean()):.0f}",
                float(err.mean()),
            ]
        )
    table.add_note("weights refreshed (written back) at every step boundary")
    print(table)

    # ------------------------------------------------------------------
    # 3. Spatial -> temporal: same value, different cells.
    # ------------------------------------------------------------------
    value = np.full((15, 9), 137)  # one distance replicated everywhere
    corrupted = field.corrupt(value, 300.0, 6)
    distinct = np.unique(corrupted)
    print(
        f"\nthe value 137 stored in 135 different cells pseudo-reads as "
        f"{distinct.size} distinct values at 300 mV:"
    )
    print(f"  {distinct[:12].tolist()}{' ...' if distinct.size > 12 else ''}")
    print(
        "because each trial addresses different cells, this spatial\n"
        "pattern is experienced as fresh (temporal) noise by the anneal."
    )


if __name__ == "__main__":
    main()
