#!/usr/bin/env python
"""Max-Cut annealing — the workload of the Table III comparison chips.

STATICA, CIM-Spin, Amorphica and friends all anneal Max-Cut, where
#spins = #nodes.  This example solves a planted-partition instance and
a G-set-style instance, then prints the resource-blow-up law that makes
TSP so much harder (and the paper's functional normalisation fair).

Run:
    python examples/maxcut_annealing.py [n_nodes]
"""

from __future__ import annotations

import sys

from repro.analysis.quality import run_ensemble
from repro.maxcut import (
    MaxCutAnnealParams,
    anneal_maxcut,
    greedy_maxcut,
    gset_style,
    local_search_improve,
    planted_bisection,
    spin_scaling_comparison,
)
from repro.utils.tables import Table


def main(n_nodes: int = 400) -> None:
    # ------------------------------------------------------------------
    # 1. Planted instance: we know a near-optimal cut by construction.
    # ------------------------------------------------------------------
    problem, planted_spins, planted_cut = planted_bisection(n_nodes, seed=1)
    print(f"planted instance: {problem}, planted cut = {planted_cut:.0f}")
    res = anneal_maxcut(
        problem, params=MaxCutAnnealParams(n_sweeps=200), seed=0
    )
    print(
        f"annealed cut    : {res.cut_value:.0f} "
        f"({100 * res.cut_value / planted_cut:.1f}% of planted)"
    )

    # ------------------------------------------------------------------
    # 2. G-set-style +-1 weights: compare solvers across seeds.
    # ------------------------------------------------------------------
    gset = gset_style(n_nodes, avg_degree=6.0, seed=2)
    seeds = list(range(5))
    stats = {
        "greedy": run_ensemble(
            lambda s: -greedy_maxcut(gset, seed=s).cut_value, seeds
        ),
        "annealed": run_ensemble(
            lambda s: -anneal_maxcut(
                gset, params=MaxCutAnnealParams(n_sweeps=150), seed=s
            ).cut_value,
            seeds,
        ),
        "annealed + local search": run_ensemble(
            lambda s: -local_search_improve(
                gset,
                anneal_maxcut(
                    gset, params=MaxCutAnnealParams(n_sweeps=150), seed=s
                ).spins,
            ).cut_value,
            seeds,
        ),
    }
    table = Table(
        f"Max-Cut on {gset.name} ({gset.n_edges} +-1 edges, 5 seeds)",
        ["solver", "mean cut", "best cut"],
    )
    for name, s in stats.items():
        table.add_row([name, -s.mean, -s.minimum])
    print()
    print(table)

    # ------------------------------------------------------------------
    # 3. Why TSP is the hard case (Table III footnotes).
    # ------------------------------------------------------------------
    law = spin_scaling_comparison([n_nodes, 3038, 85900])
    table = Table(
        "Spins needed: Max-Cut (n) vs unoptimised Ising TSP (N^2)",
        ["problem size", "Max-Cut spins", "TSP spins", "blow-up"],
    )
    for n, row in law.items():
        table.add_row(
            [n, int(row["maxcut_spins"]), row["tsp_spins"], row["spin_blowup"]]
        )
    table.add_note(
        "the clustered CIM annealer closes this gap with p*N spins and "
        "O(N) weights - see examples/chip_designer_report.py"
    )
    print()
    print(table)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 400)
