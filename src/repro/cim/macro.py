"""The multi-array CIM chip: geometry + hardware-event counters.

:class:`CIMChip` is the accounting spine of the co-evaluation: the
annealer reports every update cycle, write-back, and seam transfer to
it, and the PPA models (:mod:`repro.hardware`) turn the tallies into
time-to-solution and energy-to-solution with read/write breakdowns
(Fig. 7c/d).

The chip is *counter-only* by design — it never materialises windows —
so it scales to the pla85900 configuration (4 295 arrays).  Bit-exact
window behaviour lives in :class:`repro.cim.array.CIMArray` and is
exercised by the test suite on small problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cim.array import array_bit_geometry
from repro.cim.mapping import ClusterWindowMapping
from repro.cim.window import window_shape
from repro.errors import CIMError


@dataclass
class CIMChip:
    """Chip-level geometry and event counters.

    Parameters
    ----------
    p:
        Window dimension (p_max of the chosen strategy).
    n_clusters:
        Provisioned cluster windows (bottom level of the hierarchy —
        arrays are time-multiplexed across levels, Sec. V).
    weight_bits:
        Weight precision (8).
    """

    p: int
    n_clusters: int
    weight_bits: int = 8

    # --- event counters -------------------------------------------------
    mac_cycles: int = 0          # global update cycles where MACs happen
    macs_performed: int = 0      # individual column-MACs (energy events)
    writeback_events: int = 0    # global weight-refresh events
    weights_written: int = 0     # weight codes rewritten across all windows
    weight_bits_written: int = 0  # bit cells actually rewritten
    seam_transfers: int = 0      # inter-array boundary transfers
    bits_transferred: int = 0    # total bits moved across seams
    levels_processed: int = 0    # hierarchy levels annealed
    per_level_cycles: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.p < 1:
            raise CIMError(f"p must be >= 1, got {self.p}")
        if self.n_clusters < 1:
            raise CIMError(f"n_clusters must be >= 1, got {self.n_clusters}")
        self.mapping = ClusterWindowMapping(self.n_clusters, self.p)

    # --- geometry --------------------------------------------------------
    @property
    def n_arrays(self) -> int:
        """Arrays on the chip (10 windows each)."""
        return self.mapping.n_arrays

    @property
    def window_rows(self) -> int:
        """Rows per window: p² + 2p."""
        return window_shape(self.p)[0]

    @property
    def window_cols(self) -> int:
        """Weight columns per window: p²."""
        return window_shape(self.p)[1]

    @property
    def weights_per_window(self) -> int:
        """(p²+2p)·p² weight codes per window."""
        return self.window_rows * self.window_cols

    @property
    def capacity_bits(self) -> int:
        """Total provisioned weight storage in bits (Table I / III)."""
        return self.n_clusters * self.weights_per_window * self.weight_bits

    @property
    def capacity_bytes(self) -> float:
        """Provisioned weight storage in bytes."""
        return self.capacity_bits / 8.0

    def array_bit_geometry(self) -> tuple[int, int]:
        """Physical (rows, bit columns) of one array — Table II."""
        return array_bit_geometry(self.p, self.weight_bits)

    # --- event recording ---------------------------------------------------
    def record_phase_cycles(
        self, active_windows: int, cycles: int, level: int = 0
    ) -> None:
        """Record ``cycles`` update cycles with ``active_windows`` MACs each.

        One swap trial costs 4 cycles (2 MACs before + 2 after the
        swap); all active windows of the enabled column compute in
        parallel, so wall-clock cycles add once regardless of how many
        windows participate.
        """
        if active_windows < 0 or cycles < 0:
            raise CIMError("counts must be >= 0")
        self.mac_cycles += cycles
        self.macs_performed += active_windows * cycles
        self.per_level_cycles[level] = (
            self.per_level_cycles.get(level, 0) + cycles
        )

    def record_writeback(
        self,
        n_windows: int | None = None,
        bits_per_weight: int | None = None,
    ) -> None:
        """Record one global weight-refresh of ``n_windows`` windows.

        ``bits_per_weight`` is how many bit planes are rewritten —
        only the planes that ran at reduced V_DD in the previous step
        can hold flips, so refreshes after the first write fewer planes
        (Sec. IV-B).  Defaults to the full weight width (initial
        programming).
        """
        windows = self.n_clusters if n_windows is None else n_windows
        if windows < 0:
            raise CIMError("n_windows must be >= 0")
        bits = self.weight_bits if bits_per_weight is None else bits_per_weight
        if not 0 <= bits <= self.weight_bits:
            raise CIMError(
                f"bits_per_weight must be in [0, {self.weight_bits}], got {bits}"
            )
        self.writeback_events += 1
        self.weights_written += windows * self.weights_per_window
        self.weight_bits_written += windows * self.weights_per_window * bits

    def record_seam_transfers(self, phase: int, cycles: int = 1) -> None:
        """Record the Fig. 5e boundary transfers for ``cycles`` updates."""
        transfers = self.mapping.transfers_per_phase(phase) * cycles
        self.seam_transfers += transfers
        self.bits_transferred += transfers * self.mapping.bits_per_transfer()

    def record_level_done(self) -> None:
        """Mark one hierarchy level as completed."""
        self.levels_processed += 1

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Counter snapshot for reports."""
        return {
            "p": self.p,
            "n_clusters": self.n_clusters,
            "n_arrays": self.n_arrays,
            "capacity_bits": self.capacity_bits,
            "mac_cycles": self.mac_cycles,
            "macs_performed": self.macs_performed,
            "writeback_events": self.writeback_events,
            "weights_written": self.weights_written,
            "weight_bits_written": self.weight_bits_written,
            "seam_transfers": self.seam_transfers,
            "bits_transferred": self.bits_transferred,
            "levels_processed": self.levels_processed,
        }
