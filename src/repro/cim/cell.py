"""The proposed 14T digital CIM bit cell (Fig. 5b).

Composition:

* **6T SRAM** — stores one weight bit at its storage node;
* **4T NOR** — multiplies the stored bit by the 1-bit input without a
  sense-amplifier read.  With the input applied in complemented form,
  ``NOR(in_b, w_b_complement)`` realises ``input AND weight``, which is
  the 1-bit product;
* **2T transmission gate (cell MUX)** — connects the product to the
  adder tree only when this *parameter column inside the window* is
  selected (control shared along an entire row of windows);
* **2T transmission gate (window MUX)** — enables the cell only when
  its *window column* is selected (control shared along an entire
  column of windows; odd/even cluster phases alternate).

:class:`Cell14T` models the functional behaviour exactly — including
the noisy storage node, whose value may differ from the programmed bit
after a reduced-V_DD pseudo-read (see :mod:`repro.sram.cell`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CIMError


@dataclass
class Cell14T:
    """One 14T digital CIM bit cell.

    Attributes
    ----------
    stored:
        Programmed weight bit (what write-back restores).
    node:
        Current storage-node value; may deviate from ``stored`` after a
        destabilising pseudo-read.
    critical_voltage_mv:
        Fabrication-determined supply voltage below which pseudo-read
        destabilises the latch.
    preferred:
        State the latch resolves to when destabilised.
    """

    stored: int = 0
    node: int = 0
    critical_voltage_mv: float = 0.0
    preferred: int = 0

    def __post_init__(self) -> None:
        for name in ("stored", "node", "preferred"):
            v = getattr(self, name)
            if v not in (0, 1):
                raise CIMError(f"{name} must be 0 or 1, got {v!r}")

    def write(self, bit: int) -> None:
        """Program the cell (write-back): storage node = stored = bit."""
        if bit not in (0, 1):
            raise CIMError(f"bit must be 0 or 1, got {bit!r}")
        self.stored = bit
        self.node = bit

    def pseudo_read(self, vdd_mv: float) -> int:
        """Expose the node at supply ``vdd_mv``; may flip it (sticky)."""
        if vdd_mv <= 0:
            raise CIMError(f"vdd_mv must be > 0, got {vdd_mv}")
        if vdd_mv < self.critical_voltage_mv:
            self.node = self.preferred
        return self.node

    def multiply(
        self,
        input_bit: int,
        cell_mux_on: bool,
        window_mux_on: bool,
        vdd_mv: float = 800.0,
    ) -> int:
        """1-bit product delivered to the adder tree this cycle.

        Zero when either transmission gate is off (deselected column or
        window); otherwise ``input AND node`` where the node value comes
        from a pseudo-read at the plane's supply voltage.
        """
        if input_bit not in (0, 1):
            raise CIMError(f"input_bit must be 0 or 1, got {input_bit!r}")
        if not (cell_mux_on and window_mux_on):
            return 0
        return input_bit & self.pseudo_read(vdd_mv)
