"""The compact weight window of Fig. 3(c).

One window holds every coupling a cluster's spins participate in:

* **columns** — the cluster's own p² spins (position-major:
  ``col = position · p + element``);
* **rows** — the same p² own spins plus 2p *boundary* spins: the p
  elements of the previous cluster (each a candidate occupant of the
  preceding boundary position) and the p elements of the next cluster.

The stored value at (row, col) is the quantised distance between the
two entities when their positions are adjacent in the tour, else 0 —
so a MAC of the full one-hot spin input against one column yields that
spin's local energy, Eq. (2), and the window is storage-complete: it
never needs reprogramming when a *neighbouring* cluster reorders (only
the input spins change).

Every bit cell carries its own process-variation fingerprint
(:class:`repro.sram.noise.SpatialNoiseField`), so the same element
distance stored at different (row, col) cells corrupts differently —
the spatial-to-temporal noise conversion of Sec. IV-B.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cim.adder_tree import AdderTree
from repro.errors import CIMError
from repro.sram.cell import SRAMCellParams
from repro.sram.noise import SpatialNoiseField
from repro.utils.rng import SeedLike


def window_shape(p: int) -> Tuple[int, int]:
    """``(p²+2p, p²)`` — rows × columns of a cluster window."""
    if p < 1:
        raise CIMError(f"p must be >= 1, got {p}")
    return (p * p + 2 * p, p * p)


def expand_spin_window(
    d_own: np.ndarray,
    d_prev: np.ndarray,
    d_next: np.ndarray,
    p: int,
    size: Optional[int] = None,
) -> np.ndarray:
    """Tile element distances into the spin-level window matrix.

    Parameters
    ----------
    d_own:
        ``(s, s)`` quantised intra-cluster distances.
    d_prev:
        ``(s_prev, s)`` distances from previous-cluster elements.
    d_next:
        ``(s_next, s)`` distances from next-cluster elements.
    p:
        Provisioned window dimension (p_max); s, s_prev, s_next ≤ p.
        Unused rows/columns stay 0 — the paper's "redundant columns".
    size:
        Actual cluster size s (default: inferred from ``d_own``).
    """
    d_own = np.asarray(d_own)
    d_prev = np.asarray(d_prev)
    d_next = np.asarray(d_next)
    s = size if size is not None else d_own.shape[0]
    if d_own.shape != (s, s):
        raise CIMError(f"d_own must be ({s},{s}), got {d_own.shape}")
    if s > p or d_prev.shape[0] > p or d_next.shape[0] > p:
        raise CIMError("cluster or neighbour size exceeds window dimension p")
    if d_prev.shape[1] != s or d_next.shape[1] != s:
        raise CIMError("boundary distance column count must equal cluster size")

    rows, cols = window_shape(p)
    W = np.zeros((rows, cols), dtype=np.int64)

    # Own-spin rows: adjacent positions only.
    for i in range(s):  # column position
        for k in range(s):  # column element
            col = i * p + k
            for j in (i - 1, i + 1):  # adjacent row position
                if not 0 <= j < s:
                    continue
                for l in range(s):  # row element
                    if l == k:
                        continue  # an element cannot occupy two positions
                    W[j * p + l, col] = d_own[l, k]
    # Boundary rows: previous cluster feeds position 0, next feeds s-1.
    for k in range(s):
        for l in range(d_prev.shape[0]):
            W[p * p + l, 0 * p + k] = d_prev[l, k]
        for l in range(d_next.shape[0]):
            W[p * p + p + l, (s - 1) * p + k] = d_next[l, k]
    return W


class WeightWindow:
    """One programmable cluster window with noisy bit cells.

    This is the bit-exact golden model: :meth:`mac` pseudo-reads the
    selected column through the noise field and reduces it with the
    adder tree.  The vectorised annealer engine reproduces these values
    with batched gathers and is tested against this class.
    """

    def __init__(
        self,
        p: int,
        weight_bits: int = 8,
        cell_params: Optional[SRAMCellParams] = None,
        seed: SeedLike = None,
    ) -> None:
        self.p = p
        self.rows, self.cols = window_shape(p)
        self.weight_bits = weight_bits
        self.noise = SpatialNoiseField(
            (self.rows, self.cols),
            weight_bits=weight_bits,
            params=cell_params,
            seed=seed,
        )
        self._stored = np.zeros((self.rows, self.cols), dtype=np.int64)
        self._tree = AdderTree(self.rows, weight_bits)
        self.write_count = 0
        self.mac_count = 0

    # ------------------------------------------------------------------
    def col_index(self, position: int, element: int) -> int:
        """Column of spin (position, element)."""
        if not (0 <= position < self.p and 0 <= element < self.p):
            raise CIMError(
                f"(position={position}, element={element}) outside p={self.p}"
            )
        return position * self.p + element

    def own_row(self, position: int, element: int) -> int:
        """Row of an own spin (same indexing as columns)."""
        return self.col_index(position, element)

    def prev_row(self, element: int) -> int:
        """Row of a previous-cluster boundary spin."""
        if not 0 <= element < self.p:
            raise CIMError(f"element {element} outside p={self.p}")
        return self.p * self.p + element

    def next_row(self, element: int) -> int:
        """Row of a next-cluster boundary spin."""
        if not 0 <= element < self.p:
            raise CIMError(f"element {element} outside p={self.p}")
        return self.p * self.p + self.p + element

    # ------------------------------------------------------------------
    def program(self, weights: np.ndarray) -> None:
        """Write-back: program the full window with correct codes."""
        w = np.asarray(weights)
        if w.shape != (self.rows, self.cols):
            raise CIMError(
                f"weights must be ({self.rows},{self.cols}), got {w.shape}"
            )
        if np.any(w < 0) or np.any(w >= (1 << self.weight_bits)):
            raise CIMError("weight codes out of storage range")
        self._stored = w.astype(np.int64).copy()
        self.write_count += 1

    @property
    def stored(self) -> np.ndarray:
        """Programmed (correct) weight codes."""
        return self._stored

    def effective_weights(self, vdd_mv: float, noisy_lsbs: int) -> np.ndarray:
        """Corrupted codes as seen through pseudo-read this step."""
        return self.noise.corrupt(self._stored, vdd_mv, noisy_lsbs)

    def mac(
        self,
        column: int,
        input_bits: np.ndarray,
        vdd_mv: float = 800.0,
        noisy_lsbs: int = 0,
    ) -> int:
        """Local-energy MAC of one column against the spin input.

        Bit-exact path: every selected bit cell produces its 1-bit
        product (input AND pseudo-read node value) and the adder tree
        reduces them.
        """
        if not 0 <= column < self.cols:
            raise CIMError(f"column {column} out of range 0..{self.cols - 1}")
        x = np.asarray(input_bits)
        if x.shape != (self.rows,):
            raise CIMError(f"input must have shape ({self.rows},), got {x.shape}")
        if not np.isin(x, (0, 1)).all():
            raise CIMError("input must be 1-bit values")
        weights = self.effective_weights(vdd_mv, noisy_lsbs)[:, column]
        bits = (weights[:, None] >> np.arange(self.weight_bits)) & 1
        products = bits * x[:, None]
        mac, _ = self._tree.reduce(products)
        self.mac_count += 1
        return mac
