"""Adder-tree accumulation (shift-and-add).

Digital CIM's defining flexibility (Sec. II-B / III-B): unlike an
analog crossbar, whose column current unavoidably sums *every* row, a
digital adder tree sums exactly the rows it is wired to — which is what
makes the compact window relocation of Fig. 3(c) legal.

One adder tree serves one window row-slice of ``p²+2p`` parameters at
8-bit weight precision: each of the 8 bit planes contributes a
population count that is shifted by its bit significance and added.
The model is bit-exact and reports the number of full-adder-equivalent
operations, which feeds the energy model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CIMError


@dataclass
class AdderTreeStats:
    """Operation counts of one accumulation."""

    one_bit_products: int = 0
    adder_stages: int = 0
    total_adder_ops: int = 0


class AdderTree:
    """Shift-and-add reduction over a window column.

    Parameters
    ----------
    n_rows:
        Parameters summed per MAC — ``p²+2p`` for a window of cluster
        size p.
    weight_bits:
        Bit planes per weight (8 in the paper).
    """

    def __init__(self, n_rows: int, weight_bits: int = 8) -> None:
        if n_rows < 1:
            raise CIMError(f"n_rows must be >= 1, got {n_rows}")
        if weight_bits < 1 or weight_bits > 16:
            raise CIMError(f"weight_bits must be in [1,16], got {weight_bits}")
        self.n_rows = n_rows
        self.weight_bits = weight_bits

    @property
    def depth(self) -> int:
        """Binary-tree depth needed to reduce ``n_rows`` partial sums."""
        return int(np.ceil(np.log2(max(2, self.n_rows))))

    def reduce(self, products: np.ndarray) -> tuple[int, AdderTreeStats]:
        """Accumulate 1-bit products into the multi-bit MAC result.

        Parameters
        ----------
        products:
            ``(n_rows, weight_bits)`` array of 1-bit products (input AND
            weight-bit), bit plane 0 = LSB.

        Returns
        -------
        (mac, stats):
            The integer MAC value ``Σ_rows Σ_b products[r, b] << b`` and
            the operation counts.
        """
        arr = np.asarray(products)
        if arr.shape != (self.n_rows, self.weight_bits):
            raise CIMError(
                f"products must have shape ({self.n_rows}, {self.weight_bits}), "
                f"got {arr.shape}"
            )
        if not np.isin(arr, (0, 1)).all():
            raise CIMError("products must be 1-bit values")
        # Per-bit-plane popcount, then shift-and-add — exactly the
        # hardware reduction order.
        plane_sums = arr.sum(axis=0).astype(np.int64)
        mac = 0
        for b in range(self.weight_bits):
            mac += int(plane_sums[b]) << b
        stats = AdderTreeStats(
            one_bit_products=int(arr.size),
            adder_stages=self.depth,
            # Each bit plane uses (n_rows - 1) adders; the shift-and-add
            # chain uses (weight_bits - 1) more.
            total_adder_ops=self.weight_bits * (self.n_rows - 1)
            + (self.weight_bits - 1),
        )
        return mac, stats
