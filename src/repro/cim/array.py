"""A CIM memory array: 5×2 windows with MUX semantics (Table II).

The paper's arrays stack five rows and two columns of windows.  The
two window columns hold alternating clusters (even-phase / odd-phase),
so the window MUX enables exactly one column per update cycle and all
five windows of that column compute one MAC each, concurrently.  The
cell MUX (shared along a window row) picks which parameter column
inside the enabled windows is reduced by the adder trees.

Array bit-geometry (reproducing Table II):

* rows  = 5 · (p² + 2p)
* cols  = 2 · p² · weight_bits        (one bit column per weight bit)

This class is the golden functional model for small problems and
tests; large runs use the counter-only :class:`repro.cim.macro.CIMChip`
plus the vectorised engine.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.cim.window import WeightWindow, window_shape
from repro.errors import CIMError
from repro.sram.cell import SRAMCellParams
from repro.utils.rng import RandomState

#: Window grid per array (Table II: "five rows and two columns").
WINDOW_ROWS = 5
WINDOW_COLS = 2
WINDOWS_PER_ARRAY = WINDOW_ROWS * WINDOW_COLS


def array_bit_geometry(p: int, weight_bits: int = 8) -> Tuple[int, int]:
    """``(bit_rows, bit_cols)`` of one array — reproduces Table II.

    >>> array_bit_geometry(2)
    (40, 64)
    >>> array_bit_geometry(3)
    (75, 144)
    >>> array_bit_geometry(4)
    (120, 256)
    """
    rows, cols = window_shape(p)
    return (WINDOW_ROWS * rows, WINDOW_COLS * cols * weight_bits)


class CIMArray:
    """A materialised 5×2-window array.

    Parameters
    ----------
    p:
        Window dimension (cluster size cap).
    weight_bits:
        Weight precision.
    cell_params:
        SRAM population parameters shared by all windows.
    seed:
        Fabrication seed; each window gets a derived stream so two
        arrays with different seeds are different dice.
    """

    def __init__(
        self,
        p: int,
        weight_bits: int = 8,
        cell_params: Optional[SRAMCellParams] = None,
        seed: int = 0,
    ) -> None:
        self.p = p
        self.weight_bits = weight_bits
        rs = RandomState(seed)
        self.windows: List[WeightWindow] = [
            WeightWindow(
                p,
                weight_bits=weight_bits,
                cell_params=cell_params,
                seed=rs.child(f"window/{w}"),
            )
            for w in range(WINDOWS_PER_ARRAY)
        ]
        self.mac_cycles = 0

    def window_at(self, row: int, col: int) -> WeightWindow:
        """The window in grid slot (row, col)."""
        if not (0 <= row < WINDOW_ROWS and 0 <= col < WINDOW_COLS):
            raise CIMError(f"window slot ({row},{col}) out of 5x2 grid")
        return self.windows[row * WINDOW_COLS + col]

    @property
    def bit_rows(self) -> int:
        """Physical SRAM rows (Table II array height)."""
        return array_bit_geometry(self.p, self.weight_bits)[0]

    @property
    def bit_cols(self) -> int:
        """Physical SRAM bit columns (Table II array width)."""
        return array_bit_geometry(self.p, self.weight_bits)[1]

    def compute_cycle(
        self,
        window_col: int,
        columns: List[int],
        inputs: List[np.ndarray],
        vdd_mv: float = 800.0,
        noisy_lsbs: int = 0,
    ) -> List[int]:
        """One update cycle: every window of ``window_col`` does one MAC.

        ``columns[r]`` / ``inputs[r]`` select the parameter column and
        spin input of window row ``r``; both lists must have length 5.
        Returns the five MAC results.
        """
        if window_col not in (0, 1):
            raise CIMError(f"window_col must be 0 or 1, got {window_col}")
        if len(columns) != WINDOW_ROWS or len(inputs) != WINDOW_ROWS:
            raise CIMError(f"need {WINDOW_ROWS} column/input selections")
        results = []
        for r in range(WINDOW_ROWS):
            win = self.window_at(r, window_col)
            results.append(
                win.mac(columns[r], inputs[r], vdd_mv=vdd_mv, noisy_lsbs=noisy_lsbs)
            )
        self.mac_cycles += 1
        return results
