"""Digital compute-in-memory substrate (Sec. III-B).

Bit-accurate behavioural model of the proposed digital CIM macro:

* :mod:`repro.cim.quantize` — 8-bit weight quantisation;
* :mod:`repro.cim.cell` — the 14T bit cell (6T SRAM + 4T NOR multiply
  + two 2T transmission gates for the cell/window MUXes);
* :mod:`repro.cim.adder_tree` — shift-and-add accumulation over a
  window column;
* :mod:`repro.cim.window` — the compact (p²+2p)×p² weight window of
  Fig. 3(c), including its expansion from element distances and the
  per-bit-cell spatial noise;
* :mod:`repro.cim.array` — a 5×2-window CIM array with cell/window MUX
  semantics and cycle counting (Table II geometry);
* :mod:`repro.cim.mapping` — cluster → (array, window slot) compact
  mapping and inter-array p-bit dataflow accounting (Fig. 5e);
* :mod:`repro.cim.macro` — the multi-array chip with aggregate
  cycle/write/transfer counters consumed by the PPA models.

The vectorised annealer engine (:mod:`repro.annealer.engine`) computes
the same MACs with batched numpy gathers for speed; the classes here
are the golden reference it is tested against, plus the source of all
hardware-event counts.
"""

from repro.cim.adder_tree import AdderTree
from repro.cim.cell import Cell14T
from repro.cim.mapping import ClusterWindowMapping
from repro.cim.macro import CIMChip
from repro.cim.quantize import WeightQuantizer
from repro.cim.window import WeightWindow, window_shape

from repro.cim.array import CIMArray  # noqa: E402  (after window)

__all__ = [
    "WeightQuantizer",
    "Cell14T",
    "AdderTree",
    "WeightWindow",
    "window_shape",
    "CIMArray",
    "ClusterWindowMapping",
    "CIMChip",
]
