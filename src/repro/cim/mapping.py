"""Cluster → window compact mapping and dataflow accounting (Fig. 5e).

Clusters along the tour sequence are laid into arrays so that
consecutive clusters alternate window columns:

* cluster ``c`` → array ``c // 10``, window row ``(c % 10) // 2``,
  window column ``c % 2``;
* even clusters ("solid windows") occupy column 0, odd clusters
  ("dash windows") column 1 — the window MUX enables one column per
  phase, implementing the chromatic odd/even parallel update.

Inter-array dataflow: a window's boundary rows need the current
first/last element of the *adjacent* clusters.  Within an array those
spins are local; only at array seams must ``p`` bits travel to the
neighbouring array — downstream during solid phases, upstream during
dash phases.  :meth:`ClusterWindowMapping.transfers_per_phase` counts
those seam crossings for the latency/energy models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cim.array import WINDOWS_PER_ARRAY
from repro.errors import CIMError


@dataclass(frozen=True)
class ClusterWindowMapping:
    """Compact mapping of a cluster sequence onto 5×2-window arrays.

    Parameters
    ----------
    n_clusters:
        Number of provisioned cluster windows at the level.
    p:
        Window dimension (boundary transfers move p bits).
    """

    n_clusters: int
    p: int

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise CIMError(f"n_clusters must be >= 1, got {self.n_clusters}")
        if self.p < 1:
            raise CIMError(f"p must be >= 1, got {self.p}")

    @property
    def n_arrays(self) -> int:
        """Arrays needed (10 windows each, last may be partial)."""
        return -(-self.n_clusters // WINDOWS_PER_ARRAY)

    def slot_of(self, cluster: int) -> Tuple[int, int, int]:
        """``(array, window_row, window_col)`` of a cluster."""
        if not 0 <= cluster < self.n_clusters:
            raise CIMError(
                f"cluster {cluster} out of range 0..{self.n_clusters - 1}"
            )
        array, within = divmod(cluster, WINDOWS_PER_ARRAY)
        return array, within // 2, within % 2

    def phase_of(self, cluster: int) -> int:
        """0 for solid/even-phase clusters, 1 for dash/odd-phase."""
        return cluster % 2

    def clusters_in_phase(self, phase: int) -> range:
        """Cluster ids updated during ``phase`` (0 = solid, 1 = dash)."""
        if phase not in (0, 1):
            raise CIMError(f"phase must be 0 or 1, got {phase}")
        return range(phase, self.n_clusters, 2)

    def is_seam_cluster(self, cluster: int, phase: int) -> bool:
        """Does this cluster need a neighbour spin from another array?

        Solid phases pull the previous cluster's last element; dash
        phases pull the next cluster's first element (Fig. 5e).  The
        transfer crosses an array seam when that neighbour lives in a
        different array (cyclic neighbours always count).
        """
        if phase not in (0, 1):
            raise CIMError(f"phase must be 0 or 1, got {phase}")
        if self.phase_of(cluster) != phase:
            return False
        neighbour = (cluster - 1) % self.n_clusters if phase == 0 else \
            (cluster + 1) % self.n_clusters
        return self.slot_of(neighbour)[0] != self.slot_of(cluster)[0]

    def transfers_per_phase(self, phase: int) -> int:
        """Seam crossings (each p bits) during one phase update cycle."""
        return sum(
            1
            for c in self.clusters_in_phase(phase)
            if self.is_seam_cluster(c, phase)
        )

    def bits_per_transfer(self) -> int:
        """Bits moved per seam crossing (one one-hot element id: p bits)."""
        return self.p
