"""Weight quantisation for the CIM arrays.

The paper stores 8-bit weights ("to ensure solution quality" and to
give "sufficient granularity for noise control").  Distances at one
annealing level are quantised with a shared linear scale so MAC results
remain comparable across clusters:

    code = round(d / scale),   scale = d_max / (2^bits − 1)

The quantiser is deliberately simple (unsigned, zero-anchored) because
TSP edge weights are non-negative; the reconstruction error is at most
scale/2 per weight, which at 8 bits is ≤ 0.2% of the largest window
distance.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CIMError


class WeightQuantizer:
    """Linear unsigned quantiser shared by all windows of one level.

    Parameters
    ----------
    max_value:
        Largest distance that must be representable (the level's
        maximum window entry).
    bits:
        Weight precision (paper: 8).
    """

    def __init__(self, max_value: float, bits: int = 8) -> None:
        if bits < 1 or bits > 16:
            raise CIMError(f"bits must be in [1,16], got {bits}")
        if max_value < 0 or not np.isfinite(max_value):
            raise CIMError(f"max_value must be finite and >= 0, got {max_value}")
        self.bits = bits
        self.levels = (1 << bits) - 1
        # A zero max (degenerate single-point windows) still needs a
        # valid scale; any positive value works since all codes are 0.
        self.scale = (max_value / self.levels) if max_value > 0 else 1.0

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Float distances → integer codes (clipped to the code range)."""
        v = np.asarray(values, dtype=np.float64)
        if np.any(v < 0):
            raise CIMError("distances must be non-negative")
        codes = np.round(v / self.scale)
        return np.clip(codes, 0, self.levels).astype(np.int64)

    def dequantize(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes → reconstructed float distances."""
        c = np.asarray(codes)
        if np.any(c < 0) or np.any(c > self.levels):
            raise CIMError(f"codes out of range [0, {self.levels}]")
        return c.astype(np.float64) * self.scale

    def quantization_error_bound(self) -> float:
        """Worst-case absolute reconstruction error (scale / 2)."""
        return self.scale / 2.0

    def __repr__(self) -> str:
        return f"WeightQuantizer(bits={self.bits}, scale={self.scale:.6g})"
