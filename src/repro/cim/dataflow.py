"""Intra- and inter-array dataflow (Fig. 5e).

The HNN is recurrent: each update's output spins are the next update's
input spins.  Fig. 5e shows how that recurrence is wired:

* **intra-array** — the input register is *shifted upward* between the
  solid (even-cluster) and dash (odd-cluster) phases so the spin
  segments line up with the relocated weight windows;
* **inter-array** — only boundary spins cross arrays: during solid
  phases each array needs the last element of the cluster *above* its
  first cluster (p bits from upstream); during dash phases the first
  element of the cluster *below* its last cluster (p bits from
  downstream).

:class:`DataflowSimulator` plays the schedule over an explicit register
model and verifies, cycle by cycle, that every window's boundary inputs
are either locally resident or delivered by exactly one p-bit seam
transfer — the property that makes the paper's "data transmissions ...
are very trivial" claim true.  The test suite asserts it against the
:class:`repro.cim.mapping.ClusterWindowMapping` seam accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.cim.mapping import ClusterWindowMapping
from repro.errors import CIMError


@dataclass
class TransferRecord:
    """One seam transfer: p bits moved between adjacent arrays."""

    phase: int
    from_array: int
    to_array: int
    cluster: int      # the cluster whose boundary spin is needed
    for_cluster: int  # the cluster being updated

    @property
    def is_wrap(self) -> bool:
        """True for the single ring-closing transfer (first <-> last)."""
        return abs(self.cluster - self.for_cluster) > 1


@dataclass
class DataflowSimulator:
    """Registers + transfer log for one level's update schedule.

    Parameters
    ----------
    n_clusters:
        Clusters at the level (mapped 10 per array).
    p:
        Window dimension (boundary transfers move p bits).
    """

    n_clusters: int
    p: int
    _resident: Dict[int, Set[int]] = field(default_factory=dict)
    transfers: List[TransferRecord] = field(default_factory=list)
    iterations_run: int = 0

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise CIMError(f"n_clusters must be >= 1, got {self.n_clusters}")
        self.mapping = ClusterWindowMapping(self.n_clusters, self.p)
        # Initially every array holds the spin registers of exactly the
        # clusters mapped to it.
        for c in range(self.n_clusters):
            array = self.mapping.slot_of(c)[0]
            self._resident.setdefault(array, set()).add(c)

    # ------------------------------------------------------------------
    def array_of(self, cluster: int) -> int:
        """Array hosting a cluster's spin register."""
        return self.mapping.slot_of(cluster)[0]

    def boundary_needed(self, cluster: int, phase: int) -> int:
        """Which neighbour cluster's boundary spin this phase reads.

        Solid (phase 0) windows read the previous cluster's last
        element; dash (phase 1) windows read the next cluster's first
        element.
        """
        if phase == 0:
            return (cluster - 1) % self.n_clusters
        if phase == 1:
            return (cluster + 1) % self.n_clusters
        raise CIMError(f"phase must be 0 or 1, got {phase}")

    def run_phase(self, phase: int) -> Tuple[int, int]:
        """Execute one phase; return (local_reads, seam_transfers).

        For every cluster updated this phase, locate its needed
        boundary spin: if it is resident in the same array, the read is
        local (input-register shift); otherwise schedule one p-bit
        transfer from the hosting array (upstream→downstream for solid
        phases, downstream→upstream for dash phases, per Fig. 5e).
        """
        local = 0
        seams = 0
        for cluster in self.mapping.clusters_in_phase(phase):
            neighbour = self.boundary_needed(cluster, phase)
            here = self.array_of(cluster)
            there = self.array_of(neighbour)
            if there == here:
                local += 1
                continue
            seams += 1
            self.transfers.append(
                TransferRecord(
                    phase=phase, from_array=there, to_array=here,
                    cluster=neighbour, for_cluster=cluster,
                )
            )
        return local, seams

    def run_iteration(self) -> Tuple[int, int]:
        """Run both phases; return totals (local_reads, seam_transfers)."""
        l0, s0 = self.run_phase(0)
        l1, s1 = self.run_phase(1)
        self.iterations_run += 1
        return l0 + l1, s0 + s1

    # ------------------------------------------------------------------
    def verify_against_mapping(self) -> None:
        """Check the transfer log matches the mapping's seam accounting.

        Raises :class:`CIMError` on any mismatch — used by the tests as
        the dataflow/mapping consistency oracle.  Requires at least one
        full :meth:`run_iteration`.
        """
        if self.iterations_run == 0:
            raise CIMError("run at least one iteration before verifying")
        by_phase: Dict[int, int] = {0: 0, 1: 0}
        for t in self.transfers:
            by_phase[t.phase] += 1
        for phase in (0, 1):
            expected = self.mapping.transfers_per_phase(phase)
            got = by_phase[phase] / self.iterations_run
            if abs(got - expected) > 1e-9:
                raise CIMError(
                    f"phase {phase}: {got} transfers/iteration, mapping "
                    f"says {expected}"
                )

    def transfer_directions_follow_fig5e(self) -> bool:
        """Solid transfers flow downstream, dash transfers upstream.

        "Downstream" = towards higher array index along the cluster
        chain (ignoring the single cyclic wrap link).
        """
        for t in self.transfers:
            if t.is_wrap:
                continue  # the ring-closing link flows "backwards" by design
            if t.phase == 0 and t.from_array > t.to_array:
                return False
            if t.phase == 1 and t.from_array < t.to_array:
                return False
        return True
