"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single type at an API boundary.  Sub-types are split
by subsystem to make failures self-describing:

* :class:`TSPError` — malformed instances, tours, or TSPLIB files.
* :class:`ClusteringError` — invalid cluster strategies or hierarchies.
* :class:`IsingError` — inconsistent Ising model definitions.
* :class:`CIMError` — digital compute-in-memory configuration problems
  (window/array geometry, mapping, dataflow).
* :class:`SRAMError` — noisy-SRAM model misuse (voltages out of range,
  bad bit masks).
* :class:`HardwareModelError` — PPA model configuration problems.
* :class:`AnnealerError` — solver configuration or runtime failures.
* :class:`GatewayError` — serving-gateway failures (malformed wire
  payloads, overload rejections, unknown jobs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class TSPError(ReproError):
    """Raised for malformed TSP instances, tours, or TSPLIB input."""


class TSPLIBFormatError(TSPError):
    """Raised when a TSPLIB file cannot be parsed or is unsupported."""


class TourError(TSPError):
    """Raised when a tour is not a valid permutation of the cities."""


class ClusteringError(ReproError):
    """Raised for invalid clustering strategies or malformed hierarchies."""


class IsingError(ReproError):
    """Raised for inconsistent Ising model definitions or spin states."""


class CIMError(ReproError):
    """Raised for digital CIM geometry, mapping, or dataflow violations."""


class SRAMError(ReproError):
    """Raised when the noisy SRAM model is configured out of range."""


class HardwareModelError(ReproError):
    """Raised for invalid PPA (power/performance/area) model settings."""


class AnnealerError(ReproError):
    """Raised for invalid annealer configuration or runtime failures."""


class DeadlineExceededError(AnnealerError):
    """Raised when a request's end-to-end ``deadline_s`` budget expires.

    Deadlines propagate from the client through the wire codec, are
    checked at admission (a request whose budget is already spent is
    rejected immediately), enforced during the solve via cooperative
    cancellation, and shrink across gateway failovers.  On the wire
    this maps to the ``deadline_exceeded`` error code (HTTP 504).
    """


class ConfigError(ReproError):
    """Raised when a configuration object contains inconsistent values."""


class GatewayError(ReproError):
    """Raised by the serving gateway (:mod:`repro.gateway`).

    Sub-types map onto the versioned wire error responses: protocol
    violations (HTTP 400), overload rejections (429), unknown job ids
    (404).
    """
