"""Parallel ensemble runtime.

The scaling spine of the reproduction: everything that turns one
deterministic :class:`~repro.annealer.hierarchical.ClusteredCIMAnnealer`
solve into an instrumented many-seed workload lives here.

* :class:`EnsembleExecutor` — process-pool fan-out with chunked seed
  dispatch, per-run timeout + bounded retry, failure isolation, and
  deterministic (seed-ordered, serial-identical) results;
* :class:`RunTelemetry` / :class:`EnsembleTelemetry` — structured,
  JSON-serialisable per-run and aggregate instrumentation (wall times,
  per-level solve times, trial counters, write-backs, chip MAC/energy
  counters).

:func:`repro.annealer.batch.solve_ensemble` is the high-level entry
point; use the executor directly when you need raw results without the
quality statistics.
"""

from repro.runtime.executor import EnsembleExecutor
from repro.runtime.telemetry import EnsembleTelemetry, RunTelemetry

__all__ = [
    "EnsembleExecutor",
    "EnsembleTelemetry",
    "RunTelemetry",
]
