"""Parallel ensemble + async serving runtime.

The scaling spine of the reproduction: everything that turns one
deterministic :class:`~repro.annealer.hierarchical.ClusteredCIMAnnealer`
solve into an instrumented many-seed, many-instance workload lives
here.

* :class:`EnsembleOptions` / :class:`SolveRequest` — the frozen,
  keyword-only tuning surface and *the* input type shared by
  :func:`repro.annealer.batch.solve_ensemble`,
  :meth:`AnnealingService.submit`, and the CLI;
* :class:`EnsembleExecutor` — process-pool fan-out with chunked seed
  dispatch, per-run timeout + bounded retry, failure isolation,
  completion callbacks, and deterministic (seed-ordered,
  serial-identical) results;
* :class:`AnnealingService` / :class:`Job` / :class:`JobState` — the
  async multi-instance serving front-end: one shared pool, many
  concurrent jobs, per-job streamed :class:`RunTelemetry`, admission
  control, graceful drain/cancel shutdown (``docs/serving.md``);
* :class:`RunTelemetry` / :class:`EnsembleTelemetry` — structured,
  JSON-serialisable per-run and aggregate instrumentation (wall times,
  per-level solve times, trial counters, write-backs, chip MAC/energy
  counters), with job ids threaded through the ``worker`` field;
* :class:`FaultPlan` / :class:`FaultInjector` / :class:`FaultKind` —
  the deterministic chaos layer, plus the supervision primitives
  (:class:`Backoff`, :class:`CircuitBreaker`) the runtime recovers
  with (``docs/robustness.md``).

:func:`repro.annealer.batch.solve_ensemble` is the blocking
convenience entry point (itself a thin wrapper over a single-job
service); use :class:`AnnealingService` directly to serve many
concurrent instances, and :func:`solve_async` to await one request.
Executor internals (``_solve_one``, the dispatch helpers) are private.
"""

from repro.runtime.executor import EnsembleExecutor
from repro.runtime.faults import (
    Backoff,
    CircuitBreaker,
    CircuitOpenError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InjectedFault,
    ResultIntegrityError,
    ShardFaultKind,
    ShardFaultPlan,
)
from repro.runtime.options import EnsembleOptions, SolveRequest
from repro.runtime.service import (
    AnnealingService,
    Job,
    JobState,
    solve_async,
    solve_sync,
)
from repro.runtime.telemetry import EnsembleTelemetry, RunTelemetry

__all__ = [
    "AnnealingService",
    "Backoff",
    "CircuitBreaker",
    "CircuitOpenError",
    "EnsembleExecutor",
    "EnsembleOptions",
    "EnsembleTelemetry",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "InjectedFault",
    "Job",
    "JobState",
    "ResultIntegrityError",
    "RunTelemetry",
    "ShardFaultKind",
    "ShardFaultPlan",
    "SolveRequest",
    "solve_async",
    "solve_sync",
]
