"""Deterministic fault injection + self-healing primitives.

The paper's central trick is *controlled* noise: pseudo-read bit
errors act as annealing noise and are periodically recovered by weight
write-back (Fig. 6).  This module is the runtime analogue for
*uncontrolled* faults: a seeded chaos layer that injects worker
crashes, hangs, corrupted results, and broken pools on purpose — plus
the supervision primitives the runtime uses to recover from them, the
same way write-back recovers the weight state.

* :class:`FaultPlan` — a frozen, seeded fault schedule.  The decision
  "which fault (if any) hits run ``seed`` on attempt ``a``" is a pure
  function of ``(plan.seed, seed, attempt)``, so the dispatching
  parent can account for every injected fault without any side channel
  from the worker, and a chaos run is reproducible from one seed.
* :class:`FaultInjector` — executes the plan inside
  :func:`repro.runtime.executor._solve_one_injected`: raises for
  crashes, sleeps through hangs, tampers results for corruption, and
  kills the worker process for broken-pool faults.
* :func:`validate_result` — the integrity gate at the pool boundary:
  a returned tour must be a valid permutation whose recomputed length
  matches the reported one; anything else is a transient worker fault
  (:class:`ResultIntegrityError`) and is retried.
* :class:`Backoff` — bounded exponential backoff with deterministic
  jitter; the sanctioned retry pacer (lint rule RL007 flags bare
  ``time.sleep`` retry loops).
* :class:`CircuitBreaker` — consecutive-failure breaker; the serving
  runtime opens one per job so a faulting job fails fast instead of
  burning its whole seed list (and never poisons sibling jobs).

See ``docs/robustness.md`` for the fault model and the chaos-testing
walkthrough.
"""

from __future__ import annotations

import copy
import os
import time
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable, Optional, Tuple, TypeVar

from repro.errors import AnnealerError
from repro.utils.rng import RandomState

if TYPE_CHECKING:  # import cycle: repro.annealer.result uses repro.runtime
    from repro.runtime.telemetry import RunResultLike
    from repro.tsp.instance import TSPInstance

#: Any backend's run result (the corrupt fault tampers a copy of one).
ResultT = TypeVar("ResultT", bound="RunResultLike")


class FaultKind(str, Enum):
    """The four fault classes the chaos layer can inject.

    * ``CRASH`` — the worker raises mid-solve (transient exception).
    * ``HANG`` — the worker sleeps ``hang_s`` before solving; with a
      per-run ``timeout_s`` below ``hang_s`` the dispatching parent
      observes a timeout.
    * ``CORRUPT`` — the worker returns a tampered result (reported
      length no longer matches the tour); caught by
      :func:`validate_result`.
    * ``BROKEN_POOL`` — the worker process dies hard (``os._exit``),
      breaking the whole ``ProcessPoolExecutor`` mid-flight.  Injected
      in-process (serial path) it downgrades to a raise.
    """

    CRASH = "crash"
    HANG = "hang"
    CORRUPT = "corrupt"
    BROKEN_POOL = "broken-pool"


class InjectedFault(RuntimeError):
    """Raised by the injector for crash (and in-process broken-pool)
    faults.  Derives from ``RuntimeError`` — an injected fault is a
    *transient* worker failure the retry machinery must absorb, never
    an :class:`~repro.errors.AnnealerError` configuration failure."""


class ResultIntegrityError(RuntimeError):
    """A worker returned a result that fails integrity validation
    (non-permutation tour, or reported length diverging from the
    recomputed one).  Treated as a transient worker fault: the run is
    retried in-process, exactly like a crash."""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, reproducible fault schedule for chaos runs.

    Probabilities are *per attempt*: for each ``(run seed, attempt)``
    pair one uniform draw (derived purely from ``(plan seed, run seed,
    attempt)``) selects at most one fault kind.  Attempts at or beyond
    ``max_faults_per_run`` are always clean, which is what guarantees a
    retried run converges to the fault-free result — the software
    analogue of the paper's periodic weight write-back.

    Parameters
    ----------
    seed:
        Chaos seed; the whole schedule is a pure function of it.
    crash_rate, hang_rate, corrupt_rate, broken_pool_rate:
        Per-attempt probability of each fault kind (their sum must be
        <= 1).
    hang_s:
        How long an injected hang sleeps before solving.  Make it
        exceed the runtime's ``timeout_s`` for the hang to surface as
        a timeout.
    max_faults_per_run:
        Attempts ``0 .. max_faults_per_run-1`` of a run may draw a
        fault; later attempts never do.  Keep it at or below the
        runtime's ``max_retries`` so every chaos run still succeeds.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    broken_pool_rate: float = 0.0
    hang_s: float = 0.5
    max_faults_per_run: int = 1

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise AnnealerError(f"chaos seed must be >= 0, got {self.seed}")
        rates = {
            "crash_rate": self.crash_rate,
            "hang_rate": self.hang_rate,
            "corrupt_rate": self.corrupt_rate,
            "broken_pool_rate": self.broken_pool_rate,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise AnnealerError(f"{name} must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0 + 1e-12:
            raise AnnealerError(
                f"fault rates must sum to <= 1, got {sum(rates.values())}"
            )
        if self.hang_s <= 0:
            raise AnnealerError(f"hang_s must be > 0, got {self.hang_s}")
        if self.max_faults_per_run < 0:
            raise AnnealerError(
                "max_faults_per_run must be >= 0, got "
                f"{self.max_faults_per_run}"
            )

    @property
    def enabled(self) -> bool:
        """True when any fault kind has a non-zero rate."""
        return (
            self.crash_rate > 0
            or self.hang_rate > 0
            or self.corrupt_rate > 0
            or self.broken_pool_rate > 0
        )

    def fault_for(self, run_seed: int, attempt: int) -> Optional[FaultKind]:
        """The fault scheduled for ``(run_seed, attempt)``, if any.

        Pure: independent of call order, process, and thread — the
        worker uses it to inject and the parent uses it to account,
        and both always agree.
        """
        if attempt >= self.max_faults_per_run or not self.enabled:
            return None
        stream = RandomState(self.seed).child(
            f"fault/{int(run_seed)}/{int(attempt)}"
        )
        draw = float(stream.random())
        edge = self.crash_rate
        if draw < edge:
            return FaultKind.CRASH
        edge += self.hang_rate
        if draw < edge:
            return FaultKind.HANG
        edge += self.corrupt_rate
        if draw < edge:
            return FaultKind.CORRUPT
        edge += self.broken_pool_rate
        if draw < edge:
            return FaultKind.BROKEN_POOL
        return None

    def faults_for_run(
        self, run_seed: int, n_attempts: int
    ) -> Tuple[str, ...]:
        """The fault kinds scheduled over a run's first ``n_attempts``
        attempts, in attempt order (accounting/test helper)."""
        kinds = []
        for attempt in range(n_attempts):
            kind = self.fault_for(run_seed, attempt)
            if kind is not None:
                kinds.append(kind.value)
        return tuple(kinds)


class ShardFaultKind(str, Enum):
    """The shard-tier fault classes the gateway chaos layer can inject.

    * ``SHARD_CRASH`` — the whole shard service shuts down hard
      mid-flight (admitted jobs die with it), as if its process was
      OOM-killed.
    * ``PROBE_BLACKHOLE`` — the shard stays up but its health probe
      goes unanswered, as if a network partition separated the router
      from a healthy shard.
    * ``STREAM_STALL`` — jobs running on the shard stop producing
      telemetry frames without failing, as if a worker wedged while
      holding the stream open.
    """

    SHARD_CRASH = "shard-crash"
    PROBE_BLACKHOLE = "probe-blackhole"
    STREAM_STALL = "stream-stall"


@dataclass(frozen=True)
class ShardFaultPlan:
    """Seeded, reproducible *shard-tier* fault schedule for gateway
    chaos runs — :class:`FaultPlan` one level up.

    Probabilities are *per probe tick*: for each ``(shard index,
    tick)`` pair one uniform draw (derived purely from ``(plan seed,
    shard index, tick)``) selects at most one fault kind.  Ticks at or
    beyond ``max_fault_ticks`` are always clean, which is what lets a
    chaos gateway quiesce: after the fault window closes, probes
    succeed, evicted shards re-admit through probation, and every
    failed-over job still converges to its fault-free, bit-identical
    result.

    Parameters
    ----------
    seed:
        Chaos seed; the whole schedule is a pure function of it.
    crash_rate, blackhole_rate, stall_rate:
        Per-tick probability of each fault kind (their sum must be
        <= 1).
    max_fault_ticks:
        Probe ticks ``0 .. max_fault_ticks-1`` may draw a fault; later
        ticks never do.
    """

    seed: int = 0
    crash_rate: float = 0.0
    blackhole_rate: float = 0.0
    stall_rate: float = 0.0
    max_fault_ticks: int = 8

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise AnnealerError(f"chaos seed must be >= 0, got {self.seed}")
        rates = {
            "crash_rate": self.crash_rate,
            "blackhole_rate": self.blackhole_rate,
            "stall_rate": self.stall_rate,
        }
        for name, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise AnnealerError(f"{name} must be in [0, 1], got {rate}")
        if sum(rates.values()) > 1.0 + 1e-12:
            raise AnnealerError(
                f"fault rates must sum to <= 1, got {sum(rates.values())}"
            )
        if self.max_fault_ticks < 0:
            raise AnnealerError(
                f"max_fault_ticks must be >= 0, got {self.max_fault_ticks}"
            )

    @property
    def enabled(self) -> bool:
        """True when any fault kind has a non-zero rate."""
        return (
            self.crash_rate > 0
            or self.blackhole_rate > 0
            or self.stall_rate > 0
        )

    def fault_for(
        self, shard_index: int, tick: int
    ) -> Optional[ShardFaultKind]:
        """The fault scheduled for ``(shard_index, tick)``, if any.

        Pure: independent of call order — a test can enumerate the
        whole schedule up front and the live prober always agrees.
        """
        if tick >= self.max_fault_ticks or not self.enabled:
            return None
        stream = RandomState(self.seed).child(
            f"shard-fault/{int(shard_index)}/{int(tick)}"
        )
        draw = float(stream.random())
        edge = self.crash_rate
        if draw < edge:
            return ShardFaultKind.SHARD_CRASH
        edge += self.blackhole_rate
        if draw < edge:
            return ShardFaultKind.PROBE_BLACKHOLE
        edge += self.stall_rate
        if draw < edge:
            return ShardFaultKind.STREAM_STALL
        return None

    def faults_for_shard(
        self, shard_index: int, n_ticks: int
    ) -> Tuple[Tuple[int, str], ...]:
        """``(tick, kind)`` pairs scheduled over a shard's first
        ``n_ticks`` probe ticks, in tick order (test/seed-search
        helper)."""
        events = []
        for tick in range(n_ticks):
            kind = self.fault_for(shard_index, tick)
            if kind is not None:
                events.append((tick, kind.value))
        return tuple(events)


class FaultInjector:
    """Executes a :class:`FaultPlan` around one solve attempt.

    Lives worker-side: :func:`repro.runtime.executor._solve_one_injected`
    builds one per attempt from the (picklable) plan and calls
    :meth:`pre_solve` before and :meth:`post_solve` after the real
    solve.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def pre_solve(self, seed: int, attempt: int, *, in_pool: bool) -> None:
        """Inject any scheduled crash / hang / broken-pool fault."""
        kind = self.plan.fault_for(seed, attempt)
        if kind is FaultKind.CRASH:
            raise InjectedFault(
                f"injected crash (seed={seed}, attempt={attempt})"
            )
        if kind is FaultKind.BROKEN_POOL:
            if in_pool:
                # Dying hard (no cleanup, no exception) is what actually
                # breaks a ProcessPoolExecutor, exactly like an OOM kill.
                os._exit(3)
            raise InjectedFault(
                f"injected broken-pool fault (seed={seed}, "
                f"attempt={attempt}; in-process: raised instead)"
            )
        if kind is FaultKind.HANG:
            time.sleep(self.plan.hang_s)

    def post_solve(
        self, seed: int, attempt: int, result: ResultT
    ) -> ResultT:
        """Tamper the result when a corrupt fault is scheduled."""
        if self.plan.fault_for(seed, attempt) is not FaultKind.CORRUPT:
            return result
        bad = copy.copy(result)
        # Guaranteed to trip validate_result's length check.
        bad.length = float(result.length) + max(1.0, 0.01 * abs(result.length))
        return bad


def validate_result(instance: "TSPInstance", result: object) -> None:
    """Integrity gate for results crossing the worker boundary.

    Raises :class:`ResultIntegrityError` unless ``result`` is an
    :class:`~repro.annealer.result.AnnealResult` whose tour is a valid
    permutation of ``instance`` and whose reported length matches the
    recomputed tour length (same tolerance as
    ``AnnealResult.__post_init__``).
    """
    # Imported lazily: repro.annealer imports repro.runtime.
    from repro.annealer.result import AnnealResult
    from repro.errors import TSPError
    from repro.tsp.tour import tour_length, validate_tour

    if not isinstance(result, AnnealResult):
        raise ResultIntegrityError(
            f"worker returned {type(result).__name__!r}, not an AnnealResult"
        )
    try:
        validate_tour(result.tour, instance.n)
    except TSPError as exc:
        raise ResultIntegrityError(f"corrupted tour: {exc}") from exc
    recomputed = float(tour_length(instance, result.tour))
    if abs(recomputed - result.length) > max(1e-6, 1e-9 * abs(recomputed)):
        raise ResultIntegrityError(
            f"corrupted result: reported length {result.length} does not "
            f"match recomputed tour length {recomputed}"
        )


class Backoff:
    """Bounded exponential backoff with deterministic jitter.

    The sanctioned pacer for every retry loop in ``src/repro`` (lint
    rule RL007 flags bare ``time.sleep`` retry pacing and unbounded
    ``while True`` retries).  Delay for retry ``attempt`` (1-based) is
    ``min(cap_s, base_s * 2**(attempt-1))`` scaled into its upper half
    by a jitter drawn purely from ``(seed, attempt)`` — so two workers
    retrying the same seed never sleep in lockstep, yet a chaos run's
    recorded ``backoff_s`` is bit-reproducible.

    >>> b = Backoff(base_s=0.1, cap_s=1.0, seed=7)
    >>> 0.05 <= b.delay_s(1) <= 0.1
    True
    >>> b.delay_s(1) == Backoff(base_s=0.1, cap_s=1.0, seed=7).delay_s(1)
    True
    """

    def __init__(
        self,
        base_s: float = 0.05,
        cap_s: float = 1.0,
        *,
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if base_s < 0:
            raise AnnealerError(f"base_s must be >= 0, got {base_s}")
        if cap_s < base_s:
            raise AnnealerError(
                f"cap_s must be >= base_s, got cap_s={cap_s} base_s={base_s}"
            )
        self.base_s = float(base_s)
        self.cap_s = float(cap_s)
        self._state = RandomState(int(seed))
        self._sleep = sleep

    def delay_s(self, attempt: int) -> float:
        """The (pure, jittered) delay before retry ``attempt`` >= 1."""
        if attempt < 1:
            raise AnnealerError(f"attempt must be >= 1, got {attempt}")
        if self.base_s == 0:
            return 0.0
        span = min(self.cap_s, self.base_s * (2.0 ** (attempt - 1)))
        jitter = float(self._state.child(f"backoff/{attempt}").random())
        return span * (0.5 + 0.5 * jitter)

    def wait(self, attempt: int) -> float:
        """Sleep the delay for retry ``attempt``; returns the seconds
        slept (what the runtime adds to ``RunTelemetry.backoff_s``)."""
        delay = self.delay_s(attempt)
        if delay > 0:
            self._sleep(delay)
        return delay


class CircuitOpenError(AnnealerError):
    """Raised when a :class:`CircuitBreaker` is open: the run/job has
    accumulated too many consecutive terminal faults and fails fast
    instead of burning the rest of its seed budget."""


class CircuitBreaker:
    """Consecutive-terminal-failure circuit breaker.

    One per job (not shared, not thread-safe): the serving runtime
    builds one in :meth:`AnnealingService._execute` so a job whose runs
    keep failing terminally trips after ``threshold`` consecutive
    failures and fails fast — sibling jobs on the same pool have their
    own breakers and are untouched.  A single successful run closes it
    again (fault recovered — the analogue of a write-back refresh).
    """

    def __init__(self, threshold: Optional[int] = 8) -> None:
        if threshold is not None and threshold < 1:
            raise AnnealerError(
                f"breaker threshold must be >= 1 or None, got {threshold}"
            )
        self.threshold = threshold
        self._consecutive = 0
        self._total_failures = 0

    @property
    def consecutive_failures(self) -> int:
        """Terminal failures since the last success."""
        return self._consecutive

    @property
    def total_failures(self) -> int:
        """Terminal failures recorded over the breaker's lifetime."""
        return self._total_failures

    @property
    def is_open(self) -> bool:
        """True once ``threshold`` consecutive failures accumulated."""
        return (
            self.threshold is not None
            and self._consecutive >= self.threshold
        )

    def record_success(self) -> None:
        """A run completed: close the breaker."""
        self._consecutive = 0

    def record_failure(self) -> None:
        """A run failed terminally (retries exhausted)."""
        self._consecutive += 1
        self._total_failures += 1

    def check(self, context: str = "") -> None:
        """Raise :class:`CircuitOpenError` when open."""
        if self.is_open:
            where = f" before {context}" if context else ""
            raise CircuitOpenError(
                f"circuit breaker open{where}: {self._consecutive} "
                f"consecutive run failures (threshold "
                f"{self.threshold}); failing fast instead of retrying "
                "the remaining seeds"
            )
