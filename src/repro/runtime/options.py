"""Keyword-only tuning surface of the solve APIs.

Two frozen value types define every knob of the ensemble/serving
stack:

* :class:`EnsembleOptions` — the tuning parameters shared by
  :class:`repro.runtime.EnsembleExecutor`,
  :class:`repro.runtime.AnnealingService`, and
  :func:`repro.annealer.batch.solve_ensemble` (pool width, per-run
  timeout/retry budget, chunked dispatch, and the serving-side
  admission-control knobs);
* :class:`SolveRequest` — *the* input type of a solve: instance +
  seeds + base config + options.  The same object is accepted by
  ``solve_ensemble``, ``AnnealingService.submit``, and built by the
  CLI, so every entry point validates seeds exactly once, the same
  way.

Both are frozen: a request enqueued into the serving runtime must not
be mutable while worker processes and telemetry streams still refer to
it.  (The pre-1.1 positional/keyword forms of the old APIs were
shimmed for one release and removed in 1.2; see ``docs/serving.md``.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.errors import AnnealerError
from repro.runtime.faults import FaultPlan

if TYPE_CHECKING:  # import cycle: repro.annealer.batch uses this module
    from repro.annealer.config import AnnealerConfig
    from repro.backends.base import ProblemLike


@dataclass(frozen=True)
class EnsembleOptions:
    """Tuning parameters of the ensemble/serving runtime (keyword-only
    by convention: construct with explicit field names).

    Parameters
    ----------
    max_workers:
        Worker processes; ``1`` (default) runs serially in-process.
        For an :class:`~repro.runtime.AnnealingService` this is the
        width of the *shared* pool all jobs multiplex onto.
    timeout_s:
        Per-run wall-clock budget in pool mode (None = unbounded).
    max_retries:
        Extra in-process attempts for a failed/timed-out run
        (0 = fail fast).
    chunk_size:
        Seeds submitted per dispatch wave (None = ``2 × max_workers``).
    strict:
        If True, a run that exhausts its retries raises
        :class:`~repro.errors.AnnealerError` instead of being reported
        as ``ok=False`` telemetry.
    max_inflight_per_job:
        Admission control: at most this many of one job's seeds may be
        in flight at once, so a single huge ensemble cannot starve
        sibling jobs sharing the pool (None = ``2 × max_workers``).
    max_pending_jobs:
        Admission control: bound on jobs admitted (queued or running)
        per service; further ``submit()`` calls apply backpressure by
        awaiting a free slot.
    backoff_base_s, backoff_cap_s:
        Retry pacing: a failed/timed-out run's in-process retries are
        spaced by a bounded exponential backoff with deterministic
        jitter (:class:`repro.runtime.faults.Backoff`) starting at
        ``backoff_base_s`` and capped at ``backoff_cap_s``.
        ``backoff_base_s=0`` disables the pacing (tests).
    self_heal_budget:
        How many times a broken (or hang-starved) worker pool may be
        rebuilt before the runtime degrades to the serial path.  For
        an :class:`~repro.runtime.AnnealingService` this bounds
        rebuilds of the *shared* pool over the service's lifetime.
    breaker_threshold:
        Per-job circuit breaker: after this many *consecutive*
        terminal run failures the job fails fast with
        :class:`~repro.runtime.faults.CircuitOpenError` instead of
        burning the rest of its seeds (``None`` disables).
    fault_plan:
        Deterministic chaos layer (:class:`repro.runtime.faults.
        FaultPlan`): injects worker crash / hang / corrupted-result /
        broken-pool faults at seeded per-attempt probabilities.
        ``None`` (default) injects nothing.
    batch_size:
        Seeds a worker claims and anneals per dispatch via the batched
        replica engine (:func:`repro.annealer.batched.solve_batch`).
        ``1`` (default) keeps the serial path — the bit-exactness
        oracle.  Batching changes throughput only: every replica's
        result and telemetry counters are bit-identical to its serial
        run, one ``RunTelemetry`` is still emitted per seed, and
        configurations the batched kernel cannot represent exactly
        (LFSR/Metropolis ablations, spin-noise targets, trace
        recording, active fault plans) transparently run serially.
    """

    max_workers: int = 1
    timeout_s: Optional[float] = None
    max_retries: int = 1
    chunk_size: Optional[int] = None
    strict: bool = False
    max_inflight_per_job: Optional[int] = None
    max_pending_jobs: int = 16
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    self_heal_budget: int = 2
    breaker_threshold: Optional[int] = 8
    fault_plan: Optional[FaultPlan] = None
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise AnnealerError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.max_workers < 1:
            raise AnnealerError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.max_retries < 0:
            raise AnnealerError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise AnnealerError(
                f"timeout_s must be > 0, got {self.timeout_s}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise AnnealerError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if (
            self.max_inflight_per_job is not None
            and self.max_inflight_per_job < 1
        ):
            raise AnnealerError(
                "max_inflight_per_job must be >= 1, got "
                f"{self.max_inflight_per_job}"
            )
        if self.max_pending_jobs < 1:
            raise AnnealerError(
                f"max_pending_jobs must be >= 1, got {self.max_pending_jobs}"
            )
        if self.backoff_base_s < 0:
            raise AnnealerError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_cap_s < self.backoff_base_s:
            raise AnnealerError(
                "backoff_cap_s must be >= backoff_base_s, got "
                f"cap={self.backoff_cap_s} base={self.backoff_base_s}"
            )
        if self.self_heal_budget < 0:
            raise AnnealerError(
                f"self_heal_budget must be >= 0, got {self.self_heal_budget}"
            )
        if self.breaker_threshold is not None and self.breaker_threshold < 1:
            raise AnnealerError(
                "breaker_threshold must be >= 1 or None, got "
                f"{self.breaker_threshold}"
            )
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            raise AnnealerError(
                "fault_plan must be a repro.runtime.faults.FaultPlan, got "
                f"{type(self.fault_plan).__name__}"
            )

    @property
    def effective_inflight_per_job(self) -> int:
        """The per-job in-flight seed cap actually enforced."""
        if self.max_inflight_per_job is not None:
            return self.max_inflight_per_job
        return max(1, 2 * self.max_workers)


@dataclass(frozen=True)
class SolveRequest:
    """One solve: problem + seeds + base config + options + backend.

    The single input type shared by
    :func:`repro.annealer.batch.solve_ensemble`,
    :meth:`repro.runtime.AnnealingService.submit`, and the CLI.

    Parameters
    ----------
    instance:
        The problem payload: a :class:`~repro.tsp.instance.TSPInstance`
        for the TSP backends, an :class:`~repro.ising.model.IsingModel`
        for ``simcim``, or a :class:`~repro.maxcut.problem.
        MaxCutProblem` for ``maxcut-sb``.  Validated here against the
        selected backend's declared
        :meth:`~repro.backends.base.SolverBackend.capabilities`.
    seeds:
        Seeds; each produces an independent fabrication + anneal.
        Normalised to a tuple of ints; duplicates and empty sequences
        are rejected here, once, for every entry point.
    config:
        Base :class:`~repro.annealer.config.AnnealerConfig`; its
        ``seed`` field is replaced per run.  Only backends that declare
        ``accepts_config`` (the default ``cluster-cim``) take one.
    reference:
        Reference objective for optimal ratios (computed by the
        backend from the first seed when omitted).
    options:
        Runtime tuning (see :class:`EnsembleOptions`).
    tag:
        Optional human label; the serving runtime folds it into the
        generated job id (and thus each record's ``worker`` field).
    backend:
        Registry name of the solver backend to dispatch to
        (:func:`repro.backends.list_backends` enumerates them);
        defaults to the clustered CIM annealer.
    deadline_s:
        End-to-end wall-clock budget for the whole request, measured
        from admission.  ``None`` (default) means unbounded.  The
        serving runtime rejects the request up front when the budget is
        already spent, cancels the solve cooperatively when it expires
        mid-run, and — across gateway failovers — re-dispatches with
        only the *remaining* budget, so retries can never extend the
        total wall time (:class:`~repro.errors.DeadlineExceededError`).
    """

    instance: "ProblemLike"
    seeds: Tuple[int, ...]
    config: Optional["AnnealerConfig"] = None
    reference: Optional[float] = None
    options: EnsembleOptions = field(default_factory=EnsembleOptions)
    tag: str = ""
    backend: str = "cluster-cim"
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        seeds = tuple(int(s) for s in self.seeds)
        object.__setattr__(self, "seeds", seeds)
        if not seeds:
            raise AnnealerError("need at least one seed")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise AnnealerError(
                f"deadline_s must be > 0, got {self.deadline_s}"
            )
        if len(set(seeds)) != len(seeds):
            dupes = sorted({s for s in seeds if seeds.count(s) > 1})
            raise AnnealerError(
                f"duplicate seeds {dupes} would skew ensemble statistics; "
                "pass distinct seeds"
            )
        # Imported lazily: repro.backends sits above this module.
        from repro.backends import problem_kind, resolve_backend

        caps = resolve_backend(self.backend).capabilities()
        kind = problem_kind(self.instance)
        if kind not in caps.problem_kinds:
            raise AnnealerError(
                f"backend {self.backend!r} solves "
                f"{sorted(caps.problem_kinds)} problems, got {kind!r}"
            )
        if self.config is not None and not caps.accepts_config:
            raise AnnealerError(
                f"backend {self.backend!r} does not take an AnnealerConfig"
            )
        # The AnnealerConfig describes the clustered TSP pipeline; QUBO
        # plans anneal with their own kernels, so reject early rather
        # than silently ignoring the config worker-side.
        if self.config is not None and kind == "qubo":
            raise AnnealerError(
                "qubo problems do not take an AnnealerConfig"
            )

    @classmethod
    def build(
        cls,
        instance: "ProblemLike",
        seeds: Sequence[int],
        *,
        config: Optional["AnnealerConfig"] = None,
        reference: Optional[float] = None,
        options: Optional[EnsembleOptions] = None,
        tag: str = "",
        backend: str = "cluster-cim",
        deadline_s: Optional[float] = None,
    ) -> "SolveRequest":
        """Keyword-only constructor accepting any seed sequence."""
        return cls(
            instance=instance,
            seeds=tuple(int(s) for s in seeds),
            config=config,
            reference=reference,
            options=options or EnsembleOptions(),
            tag=tag,
            backend=backend,
            deadline_s=deadline_s,
        )
