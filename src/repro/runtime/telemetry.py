"""Structured per-run and per-ensemble telemetry.

The ensemble runtime (:mod:`repro.runtime.executor`) produces one
:class:`RunTelemetry` record per seed — wall time, per-level solve
times, trial counters, write-back counts, and the chip MAC/energy
counters — and aggregates them into an :class:`EnsembleTelemetry`
summary.  Both are plain dataclasses of JSON-native values so they can
be serialised (``to_dict`` / ``to_json``) and shipped to dashboards or
the ``BENCH_ensemble.json`` artifact without any custom encoders.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Union,
)

from repro.errors import AnnealerError

if TYPE_CHECKING:  # import cycle: repro.annealer.batch uses this module
    from pathlib import Path

    import numpy as np

    from repro.annealer.result import LevelReport
    from repro.cim.macro import CIMChip


class RunResultLike(Protocol):
    """Structural interface of one solve result, any backend.

    :class:`~repro.annealer.result.AnnealResult` (the clustered CIM
    annealer) and :class:`~repro.backends.base.BackendRunResult` (every
    other registered backend) both satisfy it; the ensemble runtime,
    telemetry extraction, and the wire codecs are written against this
    protocol so they never need to know which backend produced a
    result.  ``tour`` is the solution state vector — a city permutation
    for TSP backends, a ±1 spin vector for Ising/Max-Cut backends —
    and ``length`` is the minimised objective (tour length, Ising
    energy, or negated cut value).
    """

    # Mutable attributes (the chaos layer's corrupt fault tampers with
    # ``length`` on a copy to prove the integrity gate catches it).
    tour: "np.ndarray"
    length: float
    wall_time_s: float

    @property
    def chip(self) -> Optional["CIMChip"]:
        """Hardware event counters, or ``None`` for non-CIM backends."""
        ...

    @property
    def levels(self) -> Sequence["LevelReport"]:
        """Per-level solve reports (empty for flat, non-hierarchical backends)."""
        ...

    def optimal_ratio(self, reference_length: float) -> float:
        """Objective relative to a reference value (0.0 when no reference)."""
        ...


class Stopwatch:
    """Telemetry-layer wall-clock span timer.

    The single sanctioned way to measure wall time inside solver
    kernels: every duration that ends up in :class:`RunTelemetry`
    (``wall_time_s``, ``level_times_s``) comes from one of these, so
    per-level numbers are measured identically everywhere and the
    RL006 lint rule can flag ad-hoc ``time.*`` reads.

    >>> watch = Stopwatch()
    >>> watch.elapsed_s() >= 0.0
    True
    """

    __slots__ = ("_start",)

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed_s(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return time.perf_counter() - self._start

    def restart(self) -> float:
        """Reset the origin; return the span that just ended."""
        now = time.perf_counter()
        elapsed = now - self._start
        self._start = now
        return elapsed


@dataclass
class RunTelemetry:
    """Everything observable about one ensemble run.

    Attributes
    ----------
    seed:
        The run's seed (also its identity inside the ensemble).
    ok:
        False when the run failed and exhausted its retries; all other
        fields except ``error`` are then zero/empty.
    wall_time_s:
        Host wall-clock of the solve (includes scheduling overhead in
        the worker, excludes queue wait).
    length, optimal_ratio:
        Solution quality (ratio is 0.0 when no reference was available).
    level_times_s:
        Per-level solve wall times, in solve order (top level first).
    trials_proposed, trials_accepted:
        Swap trials summed over all hierarchy levels.
    writeback_events, mac_cycles, macs_performed, weight_bits_written:
        Chip hardware-event counters for the run.
    retries:
        How many extra attempts this run needed (0 = first try).
    faults_injected:
        Chaos accounting: the fault kinds the active
        :class:`~repro.runtime.faults.FaultPlan` injected into this
        run's attempts, in attempt order (empty without a plan — real
        faults show up in ``first_error``/``error`` instead).
    backoff_s:
        Total seconds this run spent in retry backoff
        (:class:`~repro.runtime.faults.Backoff`); deterministic for a
        given seed.
    first_error:
        Repr of the *first* failure this run hit, preserved even when
        a later attempt recovered (``ok=True``); empty for clean runs.
        ``error`` keeps the terminal failure of unrecovered runs.
    worker:
        ``"pool"`` when solved in a pool worker, ``"serial"`` when
        solved in-process (serial path or retry fallback).  The
        serving runtime (:mod:`repro.runtime.service`) threads the job
        id through as a suffix — ``"pool@job-0001"`` — so records from
        jobs multiplexed onto one shared pool stay attributable; a
        *named* service (a gateway shard) additionally prepends its
        shard segment — ``"shard0/pool@job-0001"`` — so records from
        sharded gateways stay attributable too.  Parse the pieces back
        with :attr:`job_id` and :attr:`shard`.
    error:
        Repr of the terminal failure, empty on success.
    backend:
        Registry name of the solver backend that produced this run
        (``"cluster-cim"``, ``"maxcut-sb"``, ...), stamped by the
        ensemble executor on every record it emits.  Empty only for
        records built by hand outside the runtime; the field is a real
        dataclass field (not parsed out of ``worker``) so framed and
        unframed records round-trip identically through
        :meth:`to_json_line`.
    ops:
        Algorithmic operation counts of the solve (``spin_flips``,
        ``macs``, ``rng_draws``) when the backend ran an op-counted
        kernel (:mod:`repro.problems.opcount`); empty otherwise.
        Complements the hardware-event counters above: those count
        simulated chip cycles, these count solver operations.
    """

    seed: int
    ok: bool = True
    wall_time_s: float = 0.0
    length: float = 0.0
    optimal_ratio: float = 0.0
    level_times_s: List[float] = field(default_factory=list)
    trials_proposed: int = 0
    trials_accepted: int = 0
    writeback_events: int = 0
    mac_cycles: int = 0
    macs_performed: int = 0
    weight_bits_written: int = 0
    retries: int = 0
    worker: str = "serial"
    error: str = ""
    faults_injected: List[str] = field(default_factory=list)
    backoff_s: float = 0.0
    first_error: str = ""
    backend: str = ""
    ops: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_result(
        cls,
        seed: int,
        result: RunResultLike,
        reference: Optional[float] = None,
        retries: int = 0,
        worker: str = "serial",
        faults_injected: Optional[List[str]] = None,
        backoff_s: float = 0.0,
        first_error: str = "",
    ) -> "RunTelemetry":
        """Extract the telemetry of a completed solve."""
        chip = result.chip
        return cls(
            seed=int(seed),
            ok=True,
            wall_time_s=float(result.wall_time_s),
            length=float(result.length),
            optimal_ratio=(
                float(result.optimal_ratio(reference)) if reference else 0.0
            ),
            level_times_s=[float(lv.wall_time_s) for lv in result.levels],
            trials_proposed=sum(lv.swaps_proposed for lv in result.levels),
            trials_accepted=sum(lv.swaps_accepted for lv in result.levels),
            writeback_events=int(chip.writeback_events) if chip else 0,
            mac_cycles=int(chip.mac_cycles) if chip else 0,
            macs_performed=int(chip.macs_performed) if chip else 0,
            weight_bits_written=int(chip.weight_bits_written) if chip else 0,
            retries=int(retries),
            worker=worker,
            faults_injected=list(faults_injected or []),
            backoff_s=float(backoff_s),
            first_error=first_error,
            ops={
                str(k): int(v)
                for k, v in (getattr(result, "ops", None) or {}).items()
            },
        )

    @classmethod
    def from_failure(
        cls,
        seed: int,
        error: BaseException,
        retries: int = 0,
        worker: str = "serial",
        faults_injected: Optional[List[str]] = None,
        backoff_s: float = 0.0,
        first_error: str = "",
    ) -> "RunTelemetry":
        """Record a run that exhausted its retries."""
        return cls(
            seed=int(seed),
            ok=False,
            retries=int(retries),
            worker=worker,
            error=repr(error),
            faults_injected=list(faults_injected or []),
            backoff_s=float(backoff_s),
            first_error=first_error or repr(error),
        )

    @property
    def job_id(self) -> str:
        """Job id threaded into ``worker`` by the serving runtime.

        Empty for records produced outside a service (plain
        ``"serial"`` / ``"pool"`` workers).
        """
        _, sep, job = self.worker.partition("@")
        return job if sep else ""

    @property
    def shard(self) -> str:
        """Shard segment of ``worker`` (``"shard0"`` of
        ``"shard0/pool@job-0001"``).

        Empty for records produced outside a named service (a plain
        service or a direct executor run).
        """
        head, sep, _ = self.worker.partition("/")
        return head if sep else ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native dict view."""
        return asdict(self)

    def to_json_line(self) -> str:
        """One-record stream frame: compact JSON, no embedded newlines.

        The serving runtime's streaming surfaces (``job.stream()``
        consumers, ``repro solve --stream``) emit one frame per line so
        downstream collectors can tail them without buffering whole
        ensembles.
        """
        return json.dumps(
            {"schema": "repro.run_telemetry/v1", **self.to_dict()},
            separators=(",", ":"),
        )


@dataclass
class EnsembleTelemetry:
    """Aggregated telemetry of one ensemble invocation.

    ``wall_time_s`` is the end-to-end ensemble wall-clock (what a user
    waits for); ``total_run_time_s`` sums the individual runs' solve
    times — their ratio is the effective parallel speedup.
    ``job_id`` is set by the serving runtime when the ensemble ran as a
    service job; empty for direct :func:`solve_ensemble`-style calls.
    ``backend`` is the registry name of the solver backend the ensemble
    dispatched to (``"cluster-cim"`` by default).  ``pool_rebuilds``
    counts worker-pool replacements the self-healing supervisor
    performed while this ensemble ran (broken or hang-starved pools;
    see ``docs/robustness.md``).
    """

    runs: List[RunTelemetry] = field(default_factory=list)
    max_workers: int = 1
    mode: str = "serial"
    wall_time_s: float = 0.0
    job_id: str = ""
    pool_rebuilds: int = 0
    backend: str = ""

    @property
    def n_runs(self) -> int:
        """Total runs, including failed ones."""
        return len(self.runs)

    @property
    def n_failed(self) -> int:
        """Runs that exhausted their retries."""
        return sum(1 for r in self.runs if not r.ok)

    @property
    def total_run_time_s(self) -> float:
        """Sum of the per-run solve wall times."""
        return float(sum(r.wall_time_s for r in self.runs))

    @property
    def throughput_runs_per_s(self) -> float:
        """Completed runs per second of ensemble wall-clock."""
        if self.wall_time_s <= 0:
            return 0.0
        return (self.n_runs - self.n_failed) / self.wall_time_s

    @property
    def parallel_speedup(self) -> float:
        """``total_run_time_s / wall_time_s`` — 1.0 means no overlap."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.total_run_time_s / self.wall_time_s

    @property
    def total_trials_proposed(self) -> int:
        """Swap trials proposed across all runs."""
        return sum(r.trials_proposed for r in self.runs)

    @property
    def total_trials_accepted(self) -> int:
        """Swap trials accepted across all runs."""
        return sum(r.trials_accepted for r in self.runs)

    @property
    def total_retries(self) -> int:
        """Extra attempts spent across all runs."""
        return sum(r.retries for r in self.runs)

    @property
    def total_backoff_s(self) -> float:
        """Seconds spent in retry backoff across all runs."""
        return float(sum(r.backoff_s for r in self.runs))

    @property
    def total_faults_injected(self) -> int:
        """Chaos faults injected across all runs (0 without a plan)."""
        return sum(len(r.faults_injected) for r in self.runs)

    @property
    def faults_by_kind(self) -> Dict[str, int]:
        """Injected-fault counts keyed by kind, for chaos reports."""
        counts: Dict[str, int] = {}
        for run in self.runs:
            for kind in run.faults_injected:
                counts[kind] = counts.get(kind, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native dict view (runs plus the derived aggregates)."""
        return {
            "schema": "repro.ensemble_telemetry/v1",
            "mode": self.mode,
            "job_id": self.job_id,
            "backend": self.backend,
            "max_workers": self.max_workers,
            "n_runs": self.n_runs,
            "n_failed": self.n_failed,
            "pool_rebuilds": self.pool_rebuilds,
            "total_retries": self.total_retries,
            "total_backoff_s": self.total_backoff_s,
            "total_faults_injected": self.total_faults_injected,
            "faults_by_kind": self.faults_by_kind,
            "wall_time_s": self.wall_time_s,
            "total_run_time_s": self.total_run_time_s,
            "throughput_runs_per_s": self.throughput_runs_per_s,
            "parallel_speedup": self.parallel_speedup,
            "total_trials_proposed": self.total_trials_proposed,
            "total_trials_accepted": self.total_trials_accepted,
            "runs": [r.to_dict() for r in self.runs],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialise to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, path: Union[str, "Path"]) -> None:
        """Write the JSON document to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EnsembleTelemetry":
        """Rebuild from a ``to_dict`` payload (derived fields ignored)."""
        if "runs" not in data:
            raise AnnealerError("telemetry payload has no 'runs' list")
        runs = [RunTelemetry(**r) for r in data["runs"]]
        return cls(
            runs=runs,
            max_workers=int(data.get("max_workers", 1)),
            mode=str(data.get("mode", "serial")),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            job_id=str(data.get("job_id", "")),
            pool_rebuilds=int(data.get("pool_rebuilds", 0)),
            backend=str(data.get("backend", "")),
        )
