"""Process-pool ensemble executor.

Fans :meth:`repro.annealer.hierarchical.ClusteredCIMAnnealer.solve`
out across worker processes, one run per seed:

* **Deterministic ordering** — results come back keyed by seed and are
  reassembled in the caller's seed order, so the output is bit-identical
  to the serial path no matter which worker finishes first (each run is
  fully determined by its seed).
* **Chunked dispatch** — seeds are submitted in bounded waves
  (``chunk_size``, default ``2 × max_workers``) so a 10 000-seed
  ensemble never materialises 10 000 pickled instances at once.
* **Failure isolation** — a run that raises or exceeds ``timeout_s``
  is retried (in-process, up to ``max_retries`` extra attempts) without
  disturbing its siblings; terminal failures surface as structured
  :class:`~repro.runtime.telemetry.RunTelemetry` records with
  ``ok=False`` instead of poisoning the whole ensemble, unless
  ``strict`` asks for an :class:`~repro.errors.AnnealerError`.
* **Graceful degradation** — ``max_workers=1``, a missing
  ``concurrent.futures`` pool, or a broken pool (e.g. a sandbox that
  forbids ``fork``) all fall back to the plain serial loop; callers
  never have to care.

The executor is deliberately solver-agnostic about aggregation: it
returns the ordered :class:`~repro.annealer.result.AnnealResult` list
plus an :class:`~repro.runtime.telemetry.EnsembleTelemetry`;
:func:`repro.annealer.batch.solve_ensemble` layers the quality
statistics on top.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.errors import AnnealerError
from repro.runtime.telemetry import (
    EnsembleTelemetry,
    RunTelemetry,
    Stopwatch,
)

if TYPE_CHECKING:  # import cycle: repro.annealer.batch uses this module
    from repro.annealer.config import AnnealerConfig
    from repro.annealer.result import AnnealResult
    from repro.tsp.instance import TSPInstance


def _solve_one(
    instance: TSPInstance, config: AnnealerConfig, seed: int
) -> AnnealResult:
    """Worker entry point: one full solve for one seed.

    Module-level (not a closure) so it pickles into pool workers.
    """
    # Imported here so a worker process only pays for what it uses.
    from repro.annealer.hierarchical import ClusteredCIMAnnealer

    cfg = replace(config, seed=int(seed))
    return ClusteredCIMAnnealer(cfg).solve(instance)


@dataclass
class EnsembleExecutor:
    """Configurable parallel runner for seed ensembles.

    Parameters
    ----------
    max_workers:
        Worker processes; ``1`` (default) runs serially in-process.
    timeout_s:
        Per-run wall-clock budget in pool mode (None = unbounded).  A
        timed-out run is retried in-process; the stuck worker slot is
        reclaimed when its task eventually finishes or the pool closes.
    max_retries:
        Extra attempts for a failed/timed-out run (0 = fail fast).
        Retries run in-process, isolating them from pool flakiness.
    chunk_size:
        Seeds submitted per dispatch wave (None = ``2 × max_workers``).
    strict:
        If True, a run that exhausts its retries raises
        :class:`AnnealerError`; if False (default) it is reported in
        the telemetry with ``ok=False`` and skipped in the results.
    """

    max_workers: int = 1
    timeout_s: Optional[float] = None
    max_retries: int = 1
    chunk_size: Optional[int] = None
    strict: bool = False

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise AnnealerError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )
        if self.max_retries < 0:
            raise AnnealerError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise AnnealerError(
                f"timeout_s must be > 0, got {self.timeout_s}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise AnnealerError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )

    # ------------------------------------------------------------------
    def run(
        self,
        instance: TSPInstance,
        seeds: Sequence[int],
        config: Optional[AnnealerConfig] = None,
        reference: Optional[float] = None,
    ) -> Tuple[List[AnnealResult], EnsembleTelemetry]:
        """Solve ``instance`` once per seed.

        Returns the successful results **in input-seed order** plus the
        full telemetry (which also lists failed runs).
        """
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise AnnealerError("need at least one seed")
        if len(set(seeds)) != len(seeds):
            dupes = sorted({s for s in seeds if seeds.count(s) > 1})
            raise AnnealerError(
                f"duplicate seeds {dupes} would skew ensemble statistics; "
                "pass distinct seeds"
            )
        if config is None:
            from repro.annealer.config import AnnealerConfig

            config = AnnealerConfig()

        watch = Stopwatch()
        if self.max_workers == 1:
            by_seed, mode = self._run_serial(instance, seeds, config, reference)
        else:
            by_seed, mode = self._run_pool(instance, seeds, config, reference)
        wall = watch.elapsed_s()

        telemetry = EnsembleTelemetry(
            runs=[by_seed[s][1] for s in seeds],
            max_workers=self.max_workers,
            mode=mode,
            wall_time_s=wall,
        )
        results = [by_seed[s][0] for s in seeds if by_seed[s][0] is not None]
        return results, telemetry

    # ------------------------------------------------------------------
    def _attempt_serial(
        self,
        instance: TSPInstance,
        seed: int,
        config: AnnealerConfig,
        reference: Optional[float],
        first_error: Optional[BaseException] = None,
        attempts_used: int = 0,
    ) -> Tuple[Optional[AnnealResult], RunTelemetry]:
        """Run one seed in-process with the retry budget that is left."""
        error = first_error
        attempt = attempts_used
        while attempt <= self.max_retries:
            try:
                result = _solve_one(instance, config, seed)
                return result, RunTelemetry.from_result(
                    seed, result, reference, retries=attempt, worker="serial"
                )
            except AnnealerError:
                raise  # configuration errors are not transient: fail loud
            except Exception as exc:  # noqa: BLE001 — isolate worker faults
                error = exc
                attempt += 1
        if self.strict:
            raise AnnealerError(
                f"run for seed {seed} failed after "
                f"{self.max_retries + 1} attempts: {error!r}"
            )
        return None, RunTelemetry.from_failure(
            seed, error or RuntimeError("unknown failure"), retries=attempt
        )

    def _run_serial(
        self,
        instance: TSPInstance,
        seeds: List[int],
        config: AnnealerConfig,
        reference: Optional[float],
        mode: str = "serial",
    ) -> Tuple[Dict[int, Tuple[Optional[AnnealResult], RunTelemetry]], str]:
        by_seed: Dict[int, Tuple[Optional[AnnealResult], RunTelemetry]] = {}
        for seed in seeds:
            by_seed[seed] = self._attempt_serial(
                instance, seed, config, reference
            )
        return by_seed, mode

    # ------------------------------------------------------------------
    def _run_pool(
        self,
        instance: TSPInstance,
        seeds: List[int],
        config: AnnealerConfig,
        reference: Optional[float],
    ) -> Tuple[Dict[int, Tuple[Optional[AnnealResult], RunTelemetry]], str]:
        try:
            from concurrent.futures import (
                ProcessPoolExecutor,
                TimeoutError as FuturesTimeout,
            )

            pool = ProcessPoolExecutor(max_workers=self.max_workers)
        # Pool construction cannot raise AnnealerError, and any failure
        # here (sandbox, no fork, ...) must degrade to the serial path.
        except Exception:  # repro-lint: ignore[RL005]
            return self._run_serial(
                instance, seeds, config, reference, mode="serial-fallback"
            )

        by_seed: Dict[int, Tuple[Optional[AnnealResult], RunTelemetry]] = {}
        chunk = self.chunk_size or max(1, 2 * self.max_workers)
        degraded = False
        try:
            for lo in range(0, len(seeds), chunk):
                wave = seeds[lo : lo + chunk]
                if degraded:
                    for seed in wave:
                        by_seed[seed] = self._attempt_serial(
                            instance, seed, config, reference
                        )
                    continue
                futures = {
                    seed: pool.submit(_solve_one, instance, config, seed)
                    for seed in wave
                }
                for seed, fut in futures.items():
                    try:
                        result = fut.result(timeout=self.timeout_s)
                        by_seed[seed] = (
                            result,
                            RunTelemetry.from_result(
                                seed, result, reference, worker="pool"
                            ),
                        )
                    except FuturesTimeout:
                        fut.cancel()
                        by_seed[seed] = self._attempt_serial(
                            instance,
                            seed,
                            config,
                            reference,
                            first_error=TimeoutError(
                                f"run exceeded {self.timeout_s}s in pool"
                            ),
                            attempts_used=1,
                        )
                    except AnnealerError:
                        raise
                    except Exception as exc:  # worker crash / broken pool
                        from concurrent.futures.process import (
                            BrokenProcessPool,
                        )

                        if isinstance(exc, BrokenProcessPool):
                            degraded = True
                        by_seed[seed] = self._attempt_serial(
                            instance,
                            seed,
                            config,
                            reference,
                            first_error=exc,
                            attempts_used=1,
                        )
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return by_seed, "serial-fallback" if degraded else "parallel"
