"""Process-pool ensemble executor.

Fans :meth:`repro.annealer.hierarchical.ClusteredCIMAnnealer.solve`
out across worker processes, one run per seed (or, with
``options.batch_size > 1``, one *batched* vectorised solve per group
of seeds via :func:`repro.annealer.batched.solve_batch` — bit-identical
results, one :class:`RunTelemetry` per seed either way):

* **Deterministic ordering** — results come back keyed by seed and are
  reassembled in the caller's seed order, so the output is bit-identical
  to the serial path no matter which worker finishes first (each run is
  fully determined by its seed).
* **Chunked dispatch** — seeds are submitted in bounded waves
  (``chunk_size``, default ``2 × max_workers``) so a 10 000-seed
  ensemble never materialises 10 000 pickled instances at once.
* **Failure isolation** — a run that raises, times out
  (``timeout_s``), or returns a corrupted payload (integrity-checked
  at the pool boundary by :func:`repro.runtime.faults.validate_result`)
  is retried in-process, up to ``max_retries`` extra attempts paced by
  a bounded, jittered :class:`~repro.runtime.faults.Backoff`, without
  disturbing its siblings; terminal failures surface as structured
  :class:`~repro.runtime.telemetry.RunTelemetry` records with
  ``ok=False`` instead of poisoning the whole ensemble, unless
  ``strict`` asks for an :class:`~repro.errors.AnnealerError`.
* **Self-healing pools** — a broken ``ProcessPoolExecutor``
  (``BrokenProcessPool``), or one whose worker slots are all occupied
  by hung runs, is rebuilt within a bounded ``self_heal_budget``
  (:class:`_PoolSupervisor`) instead of permanently degrading to the
  serial path; a *borrowed* shared pool is healed through the owner's
  ``on_pool_broken`` callback (the serving runtime's budget applies).
  Hung pool futures are cancelled when possible; an uncancellable one
  is accounted as an occupied slot until its worker finishes.
* **Graceful degradation** — ``max_workers=1``, a missing
  ``concurrent.futures`` pool, or an exhausted self-heal budget all
  fall back to the plain serial loop; callers never have to care.
* **Chaos injection** — an :class:`~repro.runtime.faults.FaultPlan` in
  the options routes every attempt through
  :func:`_solve_one_injected`, which injects seeded worker-crash /
  hang / corrupted-result / broken-pool faults; the dispatch side
  accounts each observed injection in ``RunTelemetry.faults_injected``
  (see ``docs/robustness.md``).
* **Incremental surfacing** — an ``on_run_complete`` callback fires
  with each :class:`RunTelemetry` record as it lands, which is how the
  serving runtime (:mod:`repro.runtime.service`) streams telemetry
  while an ensemble is still in flight.  A *borrowed* pool (``pool=``)
  lets many concurrent ensembles multiplex one set of worker
  processes.

Tuning lives in a frozen
:class:`~repro.runtime.options.EnsembleOptions`; the pre-1.1 per-field
keyword form (``EnsembleExecutor(max_workers=4)``) was removed in 1.2
after its one-release deprecation window.

The executor is also solver-agnostic about *which* solver runs:
``run(backend="...")`` dispatches every attempt through the named
:class:`~repro.backends.base.SolverBackend` (resolved worker-side from
its registry name, so only strings and picklable problem payloads
cross the pool boundary), while the default ``"cluster-cim"`` backend
keeps the exact pre-registry path — bit-identical results.  It is
deliberately agnostic about aggregation too: it returns the ordered
:class:`~repro.runtime.telemetry.RunResultLike` list plus an
:class:`~repro.runtime.telemetry.EnsembleTelemetry`;
:func:`repro.annealer.batch.solve_ensemble` layers the quality
statistics on top.  ``_solve_one`` and the dispatch helpers
(``_run_serial`` / ``_run_pool`` / ``_attempt_serial``) are internal:
only :meth:`EnsembleExecutor.run` is supported API.
"""

from __future__ import annotations

import threading
from dataclasses import replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import AnnealerError
from repro.runtime.faults import (
    Backoff,
    CircuitBreaker,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InjectedFault,
    ResultIntegrityError,
    validate_result,
)
from repro.runtime.options import EnsembleOptions, SolveRequest
from repro.runtime.telemetry import (
    EnsembleTelemetry,
    RunResultLike,
    RunTelemetry,
    Stopwatch,
)

if TYPE_CHECKING:  # import cycle: repro.annealer.batch uses this module
    from concurrent.futures import Executor, Future
    from threading import Event

    from repro.annealer.config import AnnealerConfig
    from repro.annealer.result import AnnealResult
    from repro.backends.base import ProblemLike
    from repro.tsp.instance import TSPInstance

#: Mirrors :data:`repro.backends.DEFAULT_BACKEND`.  Kept as a literal:
#: this module must not import :mod:`repro.backends` at import time
#: (the registrant modules sit above the runtime layer).
_DEFAULT_BACKEND = "cluster-cim"

def _default_path(instance: object, backend: str) -> bool:
    """Does the pre-registry clustered-TSP dispatch path apply?

    The default backend's original ``_solve_one`` worker path (and the
    batched replica engine) only speaks TSP; a ``cluster-cim`` request
    carrying any other payload kind (e.g. a compiled QUBO plan) routes
    through the registry like a named backend would.
    """
    if backend != _DEFAULT_BACKEND:
        return False
    from repro.tsp.instance import TSPInstance

    return isinstance(instance, TSPInstance)


#: Fires with each run's telemetry record the moment it is final.
RunCallback = Callable[[RunTelemetry], None]

#: Asked to replace a broken borrowed pool; returns the healed pool or
#: None when the owner's self-heal budget is spent (degrade serially).
PoolHealer = Callable[["Executor"], Optional["Executor"]]


def _solve_one(
    instance: TSPInstance, config: AnnealerConfig, seed: int
) -> RunResultLike:
    """Worker entry point: one full solve for one seed.

    Module-level (not a closure) so it pickles into pool workers.
    """
    # Imported here so a worker process only pays for what it uses.
    from repro.annealer.hierarchical import ClusteredCIMAnnealer

    cfg = replace(config, seed=int(seed))
    return ClusteredCIMAnnealer(cfg).solve(instance)


def _solve_backend_one(
    backend: str,
    problem: "ProblemLike",
    config: Optional[AnnealerConfig],
    seed: int,
) -> RunResultLike:
    """Worker entry point: one named-backend solve for one seed.

    Module-level (not a closure) so it pickles into pool workers; the
    backend is resolved by registry name *inside* the worker, so only
    the name string and the picklable problem payload ever cross the
    process boundary.
    """
    from repro.backends import resolve_backend

    impl = resolve_backend(backend)
    return impl.solve(impl.compile(problem, config), int(seed))


def _solve_batch(
    instance: TSPInstance, config: AnnealerConfig, seeds: List[int]
) -> List[AnnealResult]:
    """Worker entry point: one batched solve for a group of seeds.

    Module-level (not a closure) so it pickles into pool workers; the
    batched replica engine guarantees each returned result is
    bit-identical to :func:`_solve_one` for the same seed.
    """
    from repro.annealer.batched import solve_batch

    return solve_batch(instance, config, seeds)


def _solve_one_injected(
    instance: TSPInstance,
    config: AnnealerConfig,
    seed: int,
    plan: FaultPlan,
    attempt: int,
    in_pool: bool,
) -> RunResultLike:
    """Worker entry point under an active chaos :class:`FaultPlan`.

    Module-level and fed only picklable arguments, like
    :func:`_solve_one` (which it wraps, so test monkeypatching of the
    real solve still applies under chaos).
    """
    injector = FaultInjector(plan)
    injector.pre_solve(seed, attempt, in_pool=in_pool)
    result = _solve_one(instance, config, seed)
    return injector.post_solve(seed, attempt, result)


def _solve_backend_injected(
    backend: str,
    problem: "ProblemLike",
    config: Optional[AnnealerConfig],
    seed: int,
    plan: FaultPlan,
    attempt: int,
    in_pool: bool,
) -> RunResultLike:
    """Named-backend worker entry point under an active chaos plan.

    The chaos layer is backend-agnostic: crash/hang/broken-pool faults
    fire before the solve, and the corrupt fault tampers the returned
    result through the :class:`~repro.runtime.telemetry.RunResultLike`
    surface, so each backend's ``validate_result`` gate is exercised
    exactly like the default path's.
    """
    injector = FaultInjector(plan)
    injector.pre_solve(seed, attempt, in_pool=in_pool)
    result = _solve_backend_one(backend, problem, config, seed)
    return injector.post_solve(seed, attempt, result)


class _PoolSupervisor:
    """Owns the pool handle for one :meth:`EnsembleExecutor.run`.

    Centralises the self-healing state: (re)builds owned pools within
    a bounded rebuild budget, routes borrowed-pool breakage to the
    owner's ``on_pool_broken`` callback, and accounts worker slots
    occupied by hung (timed-out but uncancellable) runs so a starved
    pool is healed like a broken one.
    """

    def __init__(
        self,
        pool: Optional["Executor"],
        max_workers: int,
        budget: int,
        on_pool_broken: Optional[PoolHealer] = None,
    ) -> None:
        self.pool = pool
        self.owns_pool = pool is None
        self.max_workers = max_workers
        self.budget_left = budget
        self.rebuilds = 0
        self._on_pool_broken = on_pool_broken
        self._hung = 0
        self._lock = threading.Lock()

    def build(self) -> bool:
        """Create the initial owned pool; False → degrade serially."""
        try:
            from concurrent.futures import ProcessPoolExecutor

            self.pool = ProcessPoolExecutor(max_workers=self.max_workers)
            return True
        # Pool construction cannot raise AnnealerError, and any failure
        # here (sandbox, no fork, ...) must degrade to the serial path.
        except Exception:  # repro-lint: ignore[RL005]
            self.pool = None
            return False

    def note_hung(self, fut: "Future[Any]") -> None:
        """A timed-out future could not be cancelled: its worker slot
        stays occupied until the hung run finishes on its own."""
        with self._lock:
            self._hung += 1

        def _reclaim(_done: "Future[Any]") -> None:
            with self._lock:
                self._hung = max(0, self._hung - 1)

        fut.add_done_callback(_reclaim)

    @property
    def hung_slots(self) -> int:
        """Worker slots currently occupied by hung runs."""
        with self._lock:
            return self._hung

    def starved(self) -> bool:
        """True when hung runs occupy every worker slot."""
        return self.hung_slots >= self.max_workers

    def heal(self) -> bool:
        """Replace a broken or starved pool; False → degrade serially.

        Owned pools are rebuilt directly (``budget_left`` bounded);
        borrowed pools defer to the owner's ``on_pool_broken`` (the
        owner enforces its own budget, and may hand back a pool a
        sibling already healed).
        """
        old = self.pool
        if self.owns_pool:
            if self.budget_left <= 0:
                return False
            self.budget_left -= 1
            if old is not None:
                # Abandon, don't wait: hung workers finish their sleep
                # and exit on their own; queued tasks are cancelled.
                old.shutdown(wait=False, cancel_futures=True)
            if not self.build():
                return False
        else:
            if self._on_pool_broken is None:
                return False
            healed = self._on_pool_broken(old) if old is not None else None
            if healed is None:
                return False
            self.pool = healed
        with self._lock:
            self._hung = 0
        self.rebuilds += 1
        return True

    def shutdown(self) -> None:
        """Release an owned pool (borrowed pools stay with the owner)."""
        if self.owns_pool and self.pool is not None:
            self.pool.shutdown(wait=False, cancel_futures=True)


class EnsembleExecutor:
    """Configurable parallel runner for seed ensembles.

    Construct with a frozen :class:`EnsembleOptions`::

        EnsembleExecutor(EnsembleOptions(max_workers=4, timeout_s=30))

    The pre-1.1 per-field keyword form
    (``EnsembleExecutor(max_workers=4)``) was removed in 1.2 after its
    one-release deprecation window (see ``docs/serving.md``).
    """

    def __init__(self, options: Optional[EnsembleOptions] = None) -> None:
        self.options = options if options is not None else EnsembleOptions()

    # -- legacy read access (the pre-1.1 dataclass exposed the fields) --
    @property
    def max_workers(self) -> int:
        """Pool width (see :class:`EnsembleOptions`)."""
        return self.options.max_workers

    @property
    def timeout_s(self) -> Optional[float]:
        """Per-run wall-clock budget (see :class:`EnsembleOptions`)."""
        return self.options.timeout_s

    @property
    def max_retries(self) -> int:
        """Retry budget (see :class:`EnsembleOptions`)."""
        return self.options.max_retries

    @property
    def chunk_size(self) -> Optional[int]:
        """Dispatch wave size (see :class:`EnsembleOptions`)."""
        return self.options.chunk_size

    @property
    def strict(self) -> bool:
        """Raise on terminal run failure (see :class:`EnsembleOptions`)."""
        return self.options.strict

    @property
    def _plan(self) -> Optional[FaultPlan]:
        """The active chaos plan, or None."""
        plan = self.options.fault_plan
        return plan if plan is not None and plan.enabled else None

    # ------------------------------------------------------------------
    def run(
        self,
        instance: "ProblemLike",
        seeds: Sequence[int],
        config: Optional[AnnealerConfig] = None,
        reference: Optional[float] = None,
        *,
        backend: str = _DEFAULT_BACKEND,
        on_run_complete: Optional[RunCallback] = None,
        pool: Optional["Executor"] = None,
        worker_prefix: str = "",
        worker_suffix: str = "",
        cancel: Optional["Event"] = None,
        breaker: Optional[CircuitBreaker] = None,
        on_pool_broken: Optional[PoolHealer] = None,
    ) -> Tuple[List[RunResultLike], EnsembleTelemetry]:
        """Solve ``instance`` once per seed.

        Returns the successful results **in input-seed order** plus the
        full telemetry (which also lists failed runs).

        Parameters
        ----------
        backend:
            Registry name of the solver backend to dispatch to
            (:func:`repro.backends.list_backends`).  The default
            clustered CIM annealer keeps the exact pre-registry
            dispatch path — bit-identical results — while named
            backends route every attempt through
            :func:`_solve_backend_one` and their own
            ``validate_result`` integrity gate.  Every emitted
            :class:`RunTelemetry` record is stamped with this name.
        on_run_complete:
            Called with each run's final :class:`RunTelemetry` as it is
            produced (in collection order), while later seeds are still
            in flight.  Must be cheap and must not raise.
        pool:
            A *borrowed* ``concurrent.futures`` executor to dispatch
            into instead of creating (and tearing down) a private pool.
            The caller owns its lifecycle; used by the serving runtime
            to share one pool across concurrent jobs.
        worker_prefix:
            Prepended to each record's ``worker`` field: the shard
            segment.  A named :class:`~repro.runtime.AnnealingService`
            (e.g. a gateway shard) threads ``"<name>/"`` through here
            so records read ``shard0/pool@job-0001`` and telemetry
            spans multi-backend dispatch.
        worker_suffix:
            Appended to each record's ``worker`` field (the serving
            runtime threads ``@<job_id>`` through here so multiplexed
            telemetry streams stay attributable).
        cancel:
            A ``threading.Event``; once set, no further seeds are
            dispatched and the run raises
            :class:`~repro.errors.AnnealerError`.  In-flight seeds
            finish first (cancellation is cooperative).
        breaker:
            A per-ensemble :class:`~repro.runtime.faults.CircuitBreaker`;
            consulted before each seed dispatch and fed every terminal
            run outcome.  Once open, the run raises
            :class:`~repro.runtime.faults.CircuitOpenError` instead of
            burning the remaining seeds.
        on_pool_broken:
            Self-heal hook for *borrowed* pools: called with the broken
            pool, must return a replacement (possibly one a sibling
            already healed) or None to decline, at which point this
            ensemble degrades to the serial path.  Owned pools heal
            themselves within ``options.self_heal_budget`` instead.
        """
        request = SolveRequest.build(
            instance,
            seeds,
            config=config,
            reference=reference,
            options=self.options,
            backend=backend,
        )
        ordered = list(request.seeds)
        if config is None and _default_path(instance, backend):
            from repro.annealer.config import AnnealerConfig

            config = AnnealerConfig()

        # Every record funnels through _emit exactly once; stamping in
        # the callback keeps the executor free of per-run mutable state
        # (one instance may serve concurrent run() calls).
        user_callback = on_run_complete

        def stamp_backend(record: RunTelemetry) -> None:
            record.backend = backend
            if user_callback is not None:
                user_callback(record)

        on_run_complete = stamp_backend

        watch = Stopwatch()
        rebuilds = 0
        # Batched dispatch is a pure throughput path: an active fault
        # plan needs per-seed attempt accounting, so it pins batch=1;
        # only the default backend speaks the batched replica engine.
        batching = (
            self.options.batch_size > 1
            and self._plan is None
            and _default_path(instance, backend)
        )
        if batching:
            from repro.tsp.instance import TSPInstance

            assert isinstance(instance, TSPInstance)
            assert config is not None
            if self.max_workers == 1 and pool is None:
                by_seed, mode = self._run_serial_batched(
                    instance,
                    ordered,
                    config,
                    reference,
                    on_run_complete=on_run_complete,
                    worker_prefix=worker_prefix,
                    worker_suffix=worker_suffix,
                    cancel=cancel,
                    breaker=breaker,
                )
            else:
                by_seed, mode, rebuilds = self._run_pool_batched(
                    instance,
                    ordered,
                    config,
                    reference,
                    on_run_complete=on_run_complete,
                    pool=pool,
                    worker_prefix=worker_prefix,
                    worker_suffix=worker_suffix,
                    cancel=cancel,
                    breaker=breaker,
                    on_pool_broken=on_pool_broken,
                )
        elif self.max_workers == 1 and pool is None:
            by_seed, mode = self._run_serial(
                instance,
                ordered,
                config,
                reference,
                on_run_complete=on_run_complete,
                worker_prefix=worker_prefix,
                worker_suffix=worker_suffix,
                cancel=cancel,
                breaker=breaker,
                backend=backend,
            )
        else:
            by_seed, mode, rebuilds = self._run_pool(
                instance,
                ordered,
                config,
                reference,
                on_run_complete=on_run_complete,
                pool=pool,
                worker_prefix=worker_prefix,
                worker_suffix=worker_suffix,
                cancel=cancel,
                breaker=breaker,
                on_pool_broken=on_pool_broken,
                backend=backend,
            )
        wall = watch.elapsed_s()

        telemetry = EnsembleTelemetry(
            runs=[by_seed[s][1] for s in ordered],
            max_workers=self.max_workers,
            mode=mode,
            wall_time_s=wall,
            pool_rebuilds=rebuilds,
            backend=backend,
        )
        results = [
            by_seed[s][0] for s in ordered if by_seed[s][0] is not None
        ]
        return results, telemetry

    # ------------------------------------------------------------------
    @staticmethod
    def _check_cancel(cancel: Optional["Event"], done: int, total: int) -> None:
        if cancel is not None and cancel.is_set():
            raise AnnealerError(
                f"ensemble cancelled after {done}/{total} runs"
            )

    @staticmethod
    def _check_breaker(
        breaker: Optional[CircuitBreaker], seed: int
    ) -> None:
        if breaker is not None:
            breaker.check(f"run for seed {seed}")

    @staticmethod
    def _emit(
        on_run_complete: Optional[RunCallback], record: RunTelemetry
    ) -> None:
        if on_run_complete is not None:
            on_run_complete(record)

    def _invoke(
        self,
        instance: "ProblemLike",
        config: Optional[AnnealerConfig],
        seed: int,
        attempt: int,
        backend: str = _DEFAULT_BACKEND,
    ) -> RunResultLike:
        """One in-process solve attempt (chaos-wrapped when planned)."""
        plan = self._plan
        if not _default_path(instance, backend):
            if plan is not None:
                return _solve_backend_injected(
                    backend, instance, config, seed, plan, attempt, False
                )
            return _solve_backend_one(backend, instance, config, seed)
        from repro.tsp.instance import TSPInstance

        assert isinstance(instance, TSPInstance)
        assert config is not None
        if plan is not None:
            return _solve_one_injected(
                instance, config, seed, plan, attempt, False
            )
        return _solve_one(instance, config, seed)

    @staticmethod
    def _validate(
        instance: "ProblemLike", result: RunResultLike, backend: str
    ) -> None:
        """Integrity-check one result at the dispatch boundary.

        The default backend keeps the exact pre-registry gate
        (:func:`repro.runtime.faults.validate_result`); named backends
        supply their own recomputation via
        :meth:`~repro.backends.base.SolverBackend.validate_result`.
        """
        if _default_path(instance, backend):
            from repro.tsp.instance import TSPInstance

            assert isinstance(instance, TSPInstance)
            validate_result(instance, result)
            return
        from repro.backends import resolve_backend

        resolve_backend(backend).validate_result(instance, result)

    def _attempt_serial(
        self,
        instance: "ProblemLike",
        seed: int,
        config: Optional[AnnealerConfig],
        reference: Optional[float],
        first_error: Optional[BaseException] = None,
        attempts_used: int = 0,
        worker_prefix: str = "",
        worker_suffix: str = "",
        faults: Optional[List[str]] = None,
        breaker: Optional[CircuitBreaker] = None,
        backend: str = _DEFAULT_BACKEND,
    ) -> Tuple[Optional[RunResultLike], RunTelemetry]:
        """Run one seed in-process with the retry budget that is left.

        Retries are paced by a bounded, deterministically jittered
        :class:`Backoff`; the first failure (possibly handed in from a
        pool attempt via ``first_error``) is preserved in the record's
        ``first_error`` field even when a later attempt recovers.
        """
        plan = self._plan
        backoff = Backoff(
            self.options.backoff_base_s,
            self.options.backoff_cap_s,
            seed=seed,
        )
        faults = list(faults or [])
        backoff_s = 0.0
        first = first_error
        last = first_error
        attempt = attempts_used
        while attempt <= self.max_retries:
            if attempt > 0:
                backoff_s += backoff.wait(attempt)
            kind = plan.fault_for(seed, attempt) if plan is not None else None
            try:
                result = self._invoke(instance, config, seed, attempt, backend)
                self._validate(instance, result, backend)
                if kind is not None:
                    # In-process execution is certain: the scheduled
                    # fault ran (a hang slept, then solved clean).
                    faults.append(kind.value)
                if breaker is not None:
                    breaker.record_success()
                return result, RunTelemetry.from_result(
                    seed,
                    result,
                    reference,
                    retries=attempt,
                    worker=f"{worker_prefix}serial{worker_suffix}",
                    faults_injected=faults,
                    backoff_s=backoff_s,
                    first_error=repr(first) if first is not None else "",
                )
            except AnnealerError:
                raise  # configuration errors are not transient: fail loud
            except Exception as exc:  # noqa: BLE001 — isolate worker faults
                if kind is not None:
                    faults.append(kind.value)
                first = first if first is not None else exc
                last = exc
                attempt += 1
        if breaker is not None:
            breaker.record_failure()
        if self.strict:
            raise AnnealerError(
                f"run for seed {seed} failed after "
                f"{self.max_retries + 1} attempts: {last!r}"
            )
        return None, RunTelemetry.from_failure(
            seed,
            last or RuntimeError("unknown failure"),
            retries=attempt,
            worker=f"{worker_prefix}serial{worker_suffix}",
            faults_injected=faults,
            backoff_s=backoff_s,
            first_error=repr(first) if first is not None else "",
        )

    def _run_serial(
        self,
        instance: "ProblemLike",
        seeds: List[int],
        config: Optional[AnnealerConfig],
        reference: Optional[float],
        mode: str = "serial",
        *,
        on_run_complete: Optional[RunCallback] = None,
        worker_prefix: str = "",
        worker_suffix: str = "",
        cancel: Optional["Event"] = None,
        breaker: Optional[CircuitBreaker] = None,
        backend: str = _DEFAULT_BACKEND,
    ) -> Tuple[Dict[int, Tuple[Optional[RunResultLike], RunTelemetry]], str]:
        by_seed: Dict[int, Tuple[Optional[RunResultLike], RunTelemetry]] = {}
        for done, seed in enumerate(seeds):
            self._check_cancel(cancel, done, len(seeds))
            self._check_breaker(breaker, seed)
            by_seed[seed] = self._attempt_serial(
                instance,
                seed,
                config,
                reference,
                worker_prefix=worker_prefix,
                worker_suffix=worker_suffix,
                breaker=breaker,
                backend=backend,
            )
            self._emit(on_run_complete, by_seed[seed][1])
        return by_seed, mode

    # -- batched dispatch ----------------------------------------------
    def _batch_groups(self, seeds: List[int]) -> List[List[int]]:
        """Slice the ordered seeds into ``batch_size`` worker claims."""
        batch = self.options.batch_size
        return [seeds[i : i + batch] for i in range(0, len(seeds), batch)]

    def _settle_batch(
        self,
        instance: TSPInstance,
        group: List[int],
        results: List[AnnealResult],
        config: AnnealerConfig,
        reference: Optional[float],
        worker: str,
        *,
        on_run_complete: Optional[RunCallback],
        worker_prefix: str,
        worker_suffix: str,
        breaker: Optional[CircuitBreaker],
    ) -> Dict[int, Tuple[Optional[RunResultLike], RunTelemetry]]:
        """Per-seed validation + telemetry for one batched solve.

        One :class:`RunTelemetry` per seed, exactly like the unbatched
        paths; a seed whose payload fails integrity validation is
        retried through the ordinary serial path.
        """
        settled: Dict[int, Tuple[Optional[RunResultLike], RunTelemetry]] = {}
        for seed, result in zip(group, results):
            try:
                validate_result(instance, result)
            except AnnealerError:
                raise
            except Exception as exc:  # noqa: BLE001 — isolate worker faults
                settled[seed] = self._attempt_serial(
                    instance,
                    seed,
                    config,
                    reference,
                    first_error=exc,
                    attempts_used=1,
                    worker_prefix=worker_prefix,
                    worker_suffix=worker_suffix,
                    breaker=breaker,
                )
            else:
                if breaker is not None:
                    breaker.record_success()
                settled[seed] = (
                    result,
                    RunTelemetry.from_result(
                        seed,
                        result,
                        reference,
                        worker=f"{worker_prefix}{worker}{worker_suffix}",
                    ),
                )
            self._emit(on_run_complete, settled[seed][1])
        return settled

    def _run_serial_batched(
        self,
        instance: TSPInstance,
        seeds: List[int],
        config: AnnealerConfig,
        reference: Optional[float],
        mode: str = "serial",
        *,
        on_run_complete: Optional[RunCallback] = None,
        worker_prefix: str = "",
        worker_suffix: str = "",
        cancel: Optional["Event"] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> Tuple[Dict[int, Tuple[Optional[RunResultLike], RunTelemetry]], str]:
        """In-process batched loop: one ``solve_batch`` per seed group."""
        by_seed: Dict[int, Tuple[Optional[RunResultLike], RunTelemetry]] = {}
        done = 0
        for group in self._batch_groups(seeds):
            self._check_cancel(cancel, done, len(seeds))
            for seed in group:
                self._check_breaker(breaker, seed)
            try:
                results = _solve_batch(instance, config, group)
            except AnnealerError:
                raise  # configuration errors are not transient: fail loud
            except Exception as exc:  # noqa: BLE001 — isolate worker faults
                for seed in group:
                    by_seed[seed] = self._attempt_serial(
                        instance,
                        seed,
                        config,
                        reference,
                        first_error=exc,
                        attempts_used=1,
                        worker_prefix=worker_prefix,
                        worker_suffix=worker_suffix,
                        breaker=breaker,
                    )
                    self._emit(on_run_complete, by_seed[seed][1])
            else:
                by_seed.update(
                    self._settle_batch(
                        instance,
                        group,
                        results,
                        config,
                        reference,
                        "serial",
                        on_run_complete=on_run_complete,
                        worker_prefix=worker_prefix,
                        worker_suffix=worker_suffix,
                        breaker=breaker,
                    )
                )
            done += len(group)
        return by_seed, mode

    def _run_pool_batched(
        self,
        instance: TSPInstance,
        seeds: List[int],
        config: AnnealerConfig,
        reference: Optional[float],
        *,
        on_run_complete: Optional[RunCallback] = None,
        pool: Optional["Executor"] = None,
        worker_prefix: str = "",
        worker_suffix: str = "",
        cancel: Optional["Event"] = None,
        breaker: Optional[CircuitBreaker] = None,
        on_pool_broken: Optional[PoolHealer] = None,
    ) -> Tuple[
        Dict[int, Tuple[Optional[RunResultLike], RunTelemetry]], str, int
    ]:
        """Pool dispatch where each worker claims a batch of seeds.

        One future per seed group; a group whose future times out,
        crashes, or is refused falls back to the ordinary per-seed
        serial retry path, so failure isolation and telemetry framing
        are unchanged — only the happy path is batched.  The per-run
        ``timeout_s`` budget scales by the group size.
        """
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures.process import BrokenProcessPool

        supervisor = _PoolSupervisor(
            pool,
            max_workers=self.max_workers,
            budget=self.options.self_heal_budget,
            on_pool_broken=on_pool_broken,
        )
        if supervisor.owns_pool and not supervisor.build():
            by_seed, mode = self._run_serial_batched(
                instance,
                seeds,
                config,
                reference,
                mode="serial-fallback",
                on_run_complete=on_run_complete,
                worker_prefix=worker_prefix,
                worker_suffix=worker_suffix,
                cancel=cancel,
                breaker=breaker,
            )
            return by_seed, mode, supervisor.rebuilds

        groups = self._batch_groups(seeds)
        chunk = self.chunk_size or max(1, 2 * self.max_workers)
        by_seed: Dict[int, Tuple[Optional[RunResultLike], RunTelemetry]] = {}
        degraded = False
        done = 0

        def run_group_serially(group: List[int]) -> None:
            nonlocal done
            for seed in group:
                self._check_cancel(cancel, done, len(seeds))
                self._check_breaker(breaker, seed)
                by_seed[seed] = self._attempt_serial(
                    instance,
                    seed,
                    config,
                    reference,
                    worker_prefix=worker_prefix,
                    worker_suffix=worker_suffix,
                    breaker=breaker,
                )
                self._emit(on_run_complete, by_seed[seed][1])
                done += 1

        def fail_group(group: List[int], exc: BaseException) -> None:
            nonlocal done
            for seed in group:
                by_seed[seed] = self._attempt_serial(
                    instance,
                    seed,
                    config,
                    reference,
                    first_error=exc,
                    attempts_used=1,
                    worker_prefix=worker_prefix,
                    worker_suffix=worker_suffix,
                    breaker=breaker,
                )
                self._emit(on_run_complete, by_seed[seed][1])
                done += 1

        try:
            for lo in range(0, len(groups), chunk):
                self._check_cancel(cancel, done, len(seeds))
                wave = groups[lo : lo + chunk]
                if degraded:
                    for group in wave:
                        run_group_serially(group)
                    continue
                wave_pool = supervisor.pool
                assert wave_pool is not None
                futures: Dict[int, "Future[List[AnnealResult]]"] = {}
                try:
                    for gi, group in enumerate(wave):
                        futures[gi] = wave_pool.submit(
                            _solve_batch, instance, config, list(group)
                        )
                    refused = False
                # A borrowed pool can be shut down or broken by a
                # sibling job mid-flight; heal or degrade, then finish
                # the wave serially (already-submitted futures are
                # abandoned: reruns are deterministic per seed).
                except Exception:  # repro-lint: ignore[RL005]
                    refused = True
                if refused:
                    if not supervisor.heal():
                        degraded = True
                    for group in wave:
                        run_group_serially(group)
                    continue
                pool_broke = False
                for gi, fut in futures.items():
                    group = wave[gi]
                    for seed in group:
                        self._check_breaker(breaker, seed)
                    budget = (
                        None
                        if self.timeout_s is None
                        else self.timeout_s * len(group)
                    )
                    try:
                        results = fut.result(timeout=budget)
                    except FuturesTimeout:
                        hung = not fut.cancel()
                        if hung:
                            supervisor.note_hung(fut)
                        fail_group(
                            group,
                            TimeoutError(
                                f"batch of {len(group)} runs exceeded "
                                f"{budget}s in pool"
                            ),
                        )
                        continue
                    except AnnealerError:
                        raise
                    except Exception as exc:  # worker crash / broken pool
                        if isinstance(exc, BrokenProcessPool):
                            pool_broke = True
                        fail_group(group, exc)
                        continue
                    by_seed.update(
                        self._settle_batch(
                            instance,
                            group,
                            results,
                            config,
                            reference,
                            "pool",
                            on_run_complete=on_run_complete,
                            worker_prefix=worker_prefix,
                            worker_suffix=worker_suffix,
                            breaker=breaker,
                        )
                    )
                    done += len(group)
                if pool_broke or supervisor.starved():
                    if not supervisor.heal():
                        degraded = True
        finally:
            supervisor.shutdown()
        mode = "serial-fallback" if degraded else "parallel"
        return by_seed, mode, supervisor.rebuilds

    # ------------------------------------------------------------------
    def _submit_wave(
        self,
        supervisor: _PoolSupervisor,
        wave: List[int],
        instance: "ProblemLike",
        config: Optional[AnnealerConfig],
        backend: str = _DEFAULT_BACKEND,
    ) -> Optional[Dict[int, "Future[RunResultLike]"]]:
        """Submit one dispatch wave; None when the pool refuses.

        A partial submission (pool breaking mid-wave) abandons the
        already-submitted futures — their seeds are re-run serially by
        the caller, which is deterministic because every run is a pure
        function of its seed.
        """
        pool = supervisor.pool
        assert pool is not None
        plan = self._plan
        try:
            if not _default_path(instance, backend):
                if plan is not None:
                    return {
                        seed: pool.submit(
                            _solve_backend_injected,
                            backend,
                            instance,
                            config,
                            seed,
                            plan,
                            0,
                            True,
                        )
                        for seed in wave
                    }
                return {
                    seed: pool.submit(
                        _solve_backend_one, backend, instance, config, seed
                    )
                    for seed in wave
                }
            from repro.tsp.instance import TSPInstance

            assert isinstance(instance, TSPInstance)
            assert config is not None
            if plan is not None:
                return {
                    seed: pool.submit(
                        _solve_one_injected,
                        instance,
                        config,
                        seed,
                        plan,
                        0,
                        True,
                    )
                    for seed in wave
                }
            return {
                seed: pool.submit(_solve_one, instance, config, seed)
                for seed in wave
            }
        # A borrowed pool can be shut down or broken by a sibling job
        # mid-flight; the caller heals or degrades.
        except Exception:  # repro-lint: ignore[RL005]
            return None

    @staticmethod
    def _fault_observed(
        kind: Optional[FaultKind],
        exc: Optional[BaseException],
        hung: bool,
    ) -> bool:
        """Did the fault scheduled for a *pool* attempt actually run?

        Pool execution is not certain (a queued task can be cancelled
        or killed by a sibling's pool breakage before its own fault
        fires), so injected-fault accounting for pool attempts goes by
        the observed outcome instead of the schedule alone.
        """
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures.process import BrokenProcessPool

        if kind is None:
            return False
        if exc is None:
            # Ran to completion: only a hang (slept, then solved) or a
            # corrupt fault (caught by validation, so not here) can
            # coexist with success.
            return True
        if isinstance(exc, InjectedFault):
            return True
        if isinstance(exc, ResultIntegrityError):
            return kind is FaultKind.CORRUPT
        if isinstance(exc, FuturesTimeout):
            # Only a *running* worker has executed its injected sleep;
            # a still-queued future timed out on queue wait instead.
            return kind is FaultKind.HANG and hung
        if isinstance(exc, BrokenProcessPool):
            return kind is FaultKind.BROKEN_POOL
        return False

    def _run_pool(
        self,
        instance: "ProblemLike",
        seeds: List[int],
        config: Optional[AnnealerConfig],
        reference: Optional[float],
        *,
        on_run_complete: Optional[RunCallback] = None,
        pool: Optional["Executor"] = None,
        worker_prefix: str = "",
        worker_suffix: str = "",
        cancel: Optional["Event"] = None,
        breaker: Optional[CircuitBreaker] = None,
        on_pool_broken: Optional[PoolHealer] = None,
        backend: str = _DEFAULT_BACKEND,
    ) -> Tuple[
        Dict[int, Tuple[Optional[RunResultLike], RunTelemetry]], str, int
    ]:
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures.process import BrokenProcessPool

        supervisor = _PoolSupervisor(
            pool,
            max_workers=self.max_workers,
            budget=self.options.self_heal_budget,
            on_pool_broken=on_pool_broken,
        )
        if supervisor.owns_pool and not supervisor.build():
            by_seed, mode = self._run_serial(
                instance,
                seeds,
                config,
                reference,
                mode="serial-fallback",
                on_run_complete=on_run_complete,
                worker_prefix=worker_prefix,
                worker_suffix=worker_suffix,
                cancel=cancel,
                breaker=breaker,
                backend=backend,
            )
            return by_seed, mode, supervisor.rebuilds

        plan = self._plan
        by_seed: Dict[int, Tuple[Optional[RunResultLike], RunTelemetry]] = {}
        chunk = self.chunk_size or max(1, 2 * self.max_workers)
        degraded = False

        def run_wave_serially(lo: int, wave: List[int]) -> None:
            for offset, seed in enumerate(wave):
                self._check_cancel(cancel, lo + offset, len(seeds))
                self._check_breaker(breaker, seed)
                by_seed[seed] = self._attempt_serial(
                    instance,
                    seed,
                    config,
                    reference,
                    worker_prefix=worker_prefix,
                    worker_suffix=worker_suffix,
                    breaker=breaker,
                    backend=backend,
                )
                self._emit(on_run_complete, by_seed[seed][1])

        try:
            for lo in range(0, len(seeds), chunk):
                self._check_cancel(cancel, lo, len(seeds))
                wave = seeds[lo : lo + chunk]
                if degraded:
                    run_wave_serially(lo, wave)
                    continue
                futures = self._submit_wave(
                    supervisor, wave, instance, config, backend
                )
                if futures is None:
                    # The pool refused the wave (broken / shut down by a
                    # sibling): heal it for the *next* wave if the
                    # budget allows, and finish this one serially.
                    if not supervisor.heal():
                        degraded = True
                    run_wave_serially(lo, wave)
                    continue
                pool_broke = False
                for seed, fut in futures.items():
                    self._check_breaker(breaker, seed)
                    kind = plan.fault_for(seed, 0) if plan is not None else None
                    try:
                        result = fut.result(timeout=self.timeout_s)
                        self._validate(instance, result, backend)
                        if breaker is not None:
                            breaker.record_success()
                        by_seed[seed] = (
                            result,
                            RunTelemetry.from_result(
                                seed,
                                result,
                                reference,
                                worker=f"{worker_prefix}pool{worker_suffix}",
                                faults_injected=(
                                    [kind.value]
                                    if self._fault_observed(kind, None, False)
                                    else []
                                ),
                            ),
                        )
                    except FuturesTimeout as exc:
                        # Reclaim the worker slot if the run never
                        # started; a running (hung) worker cannot be
                        # cancelled and occupies its slot until done.
                        hung = not fut.cancel()
                        if hung:
                            supervisor.note_hung(fut)
                        by_seed[seed] = self._attempt_serial(
                            instance,
                            seed,
                            config,
                            reference,
                            first_error=TimeoutError(
                                f"run exceeded {self.timeout_s}s in pool"
                            ),
                            attempts_used=1,
                            worker_prefix=worker_prefix,
                            worker_suffix=worker_suffix,
                            faults=(
                                [kind.value]
                                if self._fault_observed(kind, exc, hung)
                                else []
                            ),
                            breaker=breaker,
                            backend=backend,
                        )
                    except AnnealerError:
                        raise
                    except Exception as exc:  # worker crash / broken pool
                        if isinstance(exc, BrokenProcessPool):
                            pool_broke = True
                        by_seed[seed] = self._attempt_serial(
                            instance,
                            seed,
                            config,
                            reference,
                            first_error=exc,
                            attempts_used=1,
                            worker_prefix=worker_prefix,
                            worker_suffix=worker_suffix,
                            faults=(
                                [kind.value]
                                if self._fault_observed(kind, exc, False)
                                else []
                            ),
                            breaker=breaker,
                            backend=backend,
                        )
                    self._emit(on_run_complete, by_seed[seed][1])
                if pool_broke or supervisor.starved():
                    # Self-heal: replace the broken/starved pool within
                    # the budget instead of degrading for good.
                    if not supervisor.heal():
                        degraded = True
        finally:
            supervisor.shutdown()
        mode = "serial-fallback" if degraded else "parallel"
        return by_seed, mode, supervisor.rebuilds
