"""Process-pool ensemble executor.

Fans :meth:`repro.annealer.hierarchical.ClusteredCIMAnnealer.solve`
out across worker processes, one run per seed:

* **Deterministic ordering** — results come back keyed by seed and are
  reassembled in the caller's seed order, so the output is bit-identical
  to the serial path no matter which worker finishes first (each run is
  fully determined by its seed).
* **Chunked dispatch** — seeds are submitted in bounded waves
  (``chunk_size``, default ``2 × max_workers``) so a 10 000-seed
  ensemble never materialises 10 000 pickled instances at once.
* **Failure isolation** — a run that raises or exceeds ``timeout_s``
  is retried (in-process, up to ``max_retries`` extra attempts) without
  disturbing its siblings; terminal failures surface as structured
  :class:`~repro.runtime.telemetry.RunTelemetry` records with
  ``ok=False`` instead of poisoning the whole ensemble, unless
  ``strict`` asks for an :class:`~repro.errors.AnnealerError`.
* **Graceful degradation** — ``max_workers=1``, a missing
  ``concurrent.futures`` pool, or a broken pool (e.g. a sandbox that
  forbids ``fork``) all fall back to the plain serial loop; callers
  never have to care.
* **Incremental surfacing** — an ``on_run_complete`` callback fires
  with each :class:`RunTelemetry` record as it lands, which is how the
  serving runtime (:mod:`repro.runtime.service`) streams telemetry
  while an ensemble is still in flight.  A *borrowed* pool (``pool=``)
  lets many concurrent ensembles multiplex one set of worker
  processes.

Tuning lives in a frozen
:class:`~repro.runtime.options.EnsembleOptions`; the old per-field
keyword form (``EnsembleExecutor(max_workers=4)``) still works for one
release but emits a :class:`DeprecationWarning`.

The executor is deliberately solver-agnostic about aggregation: it
returns the ordered :class:`~repro.annealer.result.AnnealResult` list
plus an :class:`~repro.runtime.telemetry.EnsembleTelemetry`;
:func:`repro.annealer.batch.solve_ensemble` layers the quality
statistics on top.  ``_solve_one`` and the dispatch helpers
(``_run_serial`` / ``_run_pool`` / ``_attempt_serial``) are internal:
only :meth:`EnsembleExecutor.run` is supported API.
"""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import AnnealerError
from repro.runtime.options import EnsembleOptions, SolveRequest
from repro.runtime.telemetry import (
    EnsembleTelemetry,
    RunTelemetry,
    Stopwatch,
)

if TYPE_CHECKING:  # import cycle: repro.annealer.batch uses this module
    from concurrent.futures import Executor
    from threading import Event

    from repro.annealer.config import AnnealerConfig
    from repro.annealer.result import AnnealResult
    from repro.tsp.instance import TSPInstance

#: Fires with each run's telemetry record the moment it is final.
RunCallback = Callable[[RunTelemetry], None]

_LEGACY_FIELDS = (
    "max_workers",
    "timeout_s",
    "max_retries",
    "chunk_size",
    "strict",
)


def _solve_one(
    instance: TSPInstance, config: AnnealerConfig, seed: int
) -> AnnealResult:
    """Worker entry point: one full solve for one seed.

    Module-level (not a closure) so it pickles into pool workers.
    """
    # Imported here so a worker process only pays for what it uses.
    from repro.annealer.hierarchical import ClusteredCIMAnnealer

    cfg = replace(config, seed=int(seed))
    return ClusteredCIMAnnealer(cfg).solve(instance)


class EnsembleExecutor:
    """Configurable parallel runner for seed ensembles.

    Construct with a frozen :class:`EnsembleOptions`::

        EnsembleExecutor(EnsembleOptions(max_workers=4, timeout_s=30))

    The pre-1.1 per-field keyword form
    (``EnsembleExecutor(max_workers=4)``) is still accepted but emits a
    :class:`DeprecationWarning`; it will be removed one release after
    1.1 (see ``docs/serving.md``).
    """

    def __init__(
        self, options: Optional[EnsembleOptions] = None, **legacy: Any
    ) -> None:
        if legacy:
            unknown = sorted(set(legacy) - set(_LEGACY_FIELDS))
            if unknown:
                raise TypeError(
                    f"EnsembleExecutor got unexpected arguments {unknown}; "
                    f"tuning fields are {list(_LEGACY_FIELDS)}"
                )
            if options is not None:
                raise AnnealerError(
                    "pass either an EnsembleOptions or legacy keyword "
                    "arguments, not both"
                )
            warnings.warn(
                "EnsembleExecutor(max_workers=..., ...) is deprecated; "
                "pass EnsembleOptions(...) instead "
                "(removal one release after 1.1)",
                DeprecationWarning,
                stacklevel=2,
            )
            options = EnsembleOptions(**legacy)
        self.options = options if options is not None else EnsembleOptions()

    # -- legacy read access (the pre-1.1 dataclass exposed the fields) --
    @property
    def max_workers(self) -> int:
        """Pool width (see :class:`EnsembleOptions`)."""
        return self.options.max_workers

    @property
    def timeout_s(self) -> Optional[float]:
        """Per-run wall-clock budget (see :class:`EnsembleOptions`)."""
        return self.options.timeout_s

    @property
    def max_retries(self) -> int:
        """Retry budget (see :class:`EnsembleOptions`)."""
        return self.options.max_retries

    @property
    def chunk_size(self) -> Optional[int]:
        """Dispatch wave size (see :class:`EnsembleOptions`)."""
        return self.options.chunk_size

    @property
    def strict(self) -> bool:
        """Raise on terminal run failure (see :class:`EnsembleOptions`)."""
        return self.options.strict

    # ------------------------------------------------------------------
    def run(
        self,
        instance: TSPInstance,
        seeds: Sequence[int],
        config: Optional[AnnealerConfig] = None,
        reference: Optional[float] = None,
        *,
        on_run_complete: Optional[RunCallback] = None,
        pool: Optional["Executor"] = None,
        worker_suffix: str = "",
        cancel: Optional["Event"] = None,
    ) -> Tuple[List[AnnealResult], EnsembleTelemetry]:
        """Solve ``instance`` once per seed.

        Returns the successful results **in input-seed order** plus the
        full telemetry (which also lists failed runs).

        Parameters
        ----------
        on_run_complete:
            Called with each run's final :class:`RunTelemetry` as it is
            produced (in collection order), while later seeds are still
            in flight.  Must be cheap and must not raise.
        pool:
            A *borrowed* ``concurrent.futures`` executor to dispatch
            into instead of creating (and tearing down) a private pool.
            The caller owns its lifecycle; used by the serving runtime
            to share one pool across concurrent jobs.
        worker_suffix:
            Appended to each record's ``worker`` field (the serving
            runtime threads ``@<job_id>`` through here so multiplexed
            telemetry streams stay attributable).
        cancel:
            A ``threading.Event``; once set, no further seeds are
            dispatched and the run raises
            :class:`~repro.errors.AnnealerError`.  In-flight seeds
            finish first (cancellation is cooperative).
        """
        request = SolveRequest.build(
            instance,
            seeds,
            config=config,
            reference=reference,
            options=self.options,
        )
        ordered = list(request.seeds)
        if config is None:
            from repro.annealer.config import AnnealerConfig

            config = AnnealerConfig()

        watch = Stopwatch()
        if self.max_workers == 1 and pool is None:
            by_seed, mode = self._run_serial(
                instance,
                ordered,
                config,
                reference,
                on_run_complete=on_run_complete,
                worker_suffix=worker_suffix,
                cancel=cancel,
            )
        else:
            by_seed, mode = self._run_pool(
                instance,
                ordered,
                config,
                reference,
                on_run_complete=on_run_complete,
                pool=pool,
                worker_suffix=worker_suffix,
                cancel=cancel,
            )
        wall = watch.elapsed_s()

        telemetry = EnsembleTelemetry(
            runs=[by_seed[s][1] for s in ordered],
            max_workers=self.max_workers,
            mode=mode,
            wall_time_s=wall,
        )
        results = [
            by_seed[s][0] for s in ordered if by_seed[s][0] is not None
        ]
        return results, telemetry

    # ------------------------------------------------------------------
    @staticmethod
    def _check_cancel(cancel: Optional["Event"], done: int, total: int) -> None:
        if cancel is not None and cancel.is_set():
            raise AnnealerError(
                f"ensemble cancelled after {done}/{total} runs"
            )

    @staticmethod
    def _emit(
        on_run_complete: Optional[RunCallback], record: RunTelemetry
    ) -> None:
        if on_run_complete is not None:
            on_run_complete(record)

    def _attempt_serial(
        self,
        instance: TSPInstance,
        seed: int,
        config: AnnealerConfig,
        reference: Optional[float],
        first_error: Optional[BaseException] = None,
        attempts_used: int = 0,
        worker_suffix: str = "",
    ) -> Tuple[Optional[AnnealResult], RunTelemetry]:
        """Run one seed in-process with the retry budget that is left."""
        error = first_error
        attempt = attempts_used
        while attempt <= self.max_retries:
            try:
                result = _solve_one(instance, config, seed)
                return result, RunTelemetry.from_result(
                    seed,
                    result,
                    reference,
                    retries=attempt,
                    worker=f"serial{worker_suffix}",
                )
            except AnnealerError:
                raise  # configuration errors are not transient: fail loud
            except Exception as exc:  # noqa: BLE001 — isolate worker faults
                error = exc
                attempt += 1
        if self.strict:
            raise AnnealerError(
                f"run for seed {seed} failed after "
                f"{self.max_retries + 1} attempts: {error!r}"
            )
        return None, RunTelemetry.from_failure(
            seed,
            error or RuntimeError("unknown failure"),
            retries=attempt,
            worker=f"serial{worker_suffix}",
        )

    def _run_serial(
        self,
        instance: TSPInstance,
        seeds: List[int],
        config: AnnealerConfig,
        reference: Optional[float],
        mode: str = "serial",
        *,
        on_run_complete: Optional[RunCallback] = None,
        worker_suffix: str = "",
        cancel: Optional["Event"] = None,
    ) -> Tuple[Dict[int, Tuple[Optional[AnnealResult], RunTelemetry]], str]:
        by_seed: Dict[int, Tuple[Optional[AnnealResult], RunTelemetry]] = {}
        for done, seed in enumerate(seeds):
            self._check_cancel(cancel, done, len(seeds))
            by_seed[seed] = self._attempt_serial(
                instance,
                seed,
                config,
                reference,
                worker_suffix=worker_suffix,
            )
            self._emit(on_run_complete, by_seed[seed][1])
        return by_seed, mode

    # ------------------------------------------------------------------
    def _run_pool(
        self,
        instance: TSPInstance,
        seeds: List[int],
        config: AnnealerConfig,
        reference: Optional[float],
        *,
        on_run_complete: Optional[RunCallback] = None,
        pool: Optional["Executor"] = None,
        worker_suffix: str = "",
        cancel: Optional["Event"] = None,
    ) -> Tuple[Dict[int, Tuple[Optional[AnnealResult], RunTelemetry]], str]:
        from concurrent.futures import TimeoutError as FuturesTimeout

        owns_pool = pool is None
        if owns_pool:
            try:
                from concurrent.futures import ProcessPoolExecutor

                pool = ProcessPoolExecutor(max_workers=self.max_workers)
            # Pool construction cannot raise AnnealerError, and any failure
            # here (sandbox, no fork, ...) must degrade to the serial path.
            except Exception:  # repro-lint: ignore[RL005]
                return self._run_serial(
                    instance,
                    seeds,
                    config,
                    reference,
                    mode="serial-fallback",
                    on_run_complete=on_run_complete,
                    worker_suffix=worker_suffix,
                    cancel=cancel,
                )

        by_seed: Dict[int, Tuple[Optional[AnnealResult], RunTelemetry]] = {}
        chunk = self.chunk_size or max(1, 2 * self.max_workers)
        degraded = False
        try:
            for lo in range(0, len(seeds), chunk):
                self._check_cancel(cancel, lo, len(seeds))
                wave = seeds[lo : lo + chunk]
                if degraded:
                    for offset, seed in enumerate(wave):
                        self._check_cancel(cancel, lo + offset, len(seeds))
                        by_seed[seed] = self._attempt_serial(
                            instance,
                            seed,
                            config,
                            reference,
                            worker_suffix=worker_suffix,
                        )
                        self._emit(on_run_complete, by_seed[seed][1])
                    continue
                try:
                    futures = {
                        seed: pool.submit(_solve_one, instance, config, seed)
                        for seed in wave
                    }
                # A borrowed pool can be shut down or broken by a sibling
                # job mid-flight; finish the remaining seeds serially.
                except Exception:  # repro-lint: ignore[RL005]
                    degraded = True
                    for offset, seed in enumerate(wave):
                        self._check_cancel(cancel, lo + offset, len(seeds))
                        by_seed[seed] = self._attempt_serial(
                            instance,
                            seed,
                            config,
                            reference,
                            worker_suffix=worker_suffix,
                        )
                        self._emit(on_run_complete, by_seed[seed][1])
                    continue
                for seed, fut in futures.items():
                    try:
                        result = fut.result(timeout=self.timeout_s)
                        by_seed[seed] = (
                            result,
                            RunTelemetry.from_result(
                                seed,
                                result,
                                reference,
                                worker=f"pool{worker_suffix}",
                            ),
                        )
                    except FuturesTimeout:
                        fut.cancel()
                        by_seed[seed] = self._attempt_serial(
                            instance,
                            seed,
                            config,
                            reference,
                            first_error=TimeoutError(
                                f"run exceeded {self.timeout_s}s in pool"
                            ),
                            attempts_used=1,
                            worker_suffix=worker_suffix,
                        )
                    except AnnealerError:
                        raise
                    except Exception as exc:  # worker crash / broken pool
                        from concurrent.futures.process import (
                            BrokenProcessPool,
                        )

                        if isinstance(exc, BrokenProcessPool):
                            degraded = True
                        by_seed[seed] = self._attempt_serial(
                            instance,
                            seed,
                            config,
                            reference,
                            first_error=exc,
                            attempts_used=1,
                            worker_suffix=worker_suffix,
                        )
                    self._emit(on_run_complete, by_seed[seed][1])
        finally:
            if owns_pool and pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return by_seed, "serial-fallback" if degraded else "parallel"
