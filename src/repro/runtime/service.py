"""Async multi-instance serving runtime.

The software analogue of a multi-problem hardware annealer: many
problem instances in flight against **one shared compute fabric**.
:class:`AnnealingService` owns a single worker-process pool and
multiplexes any number of concurrent jobs onto it:

* ``await service.submit(request)`` admits a
  :class:`~repro.runtime.options.SolveRequest` and returns a
  :class:`Job` handle immediately;
* ``job.stream()`` is an async iterator yielding
  :class:`~repro.runtime.telemetry.RunTelemetry` records as individual
  seeds finish — *while* the ensemble is still running — each tagged
  with the job id in its ``worker`` field;
* ``await job.result()`` resolves to the same bit-identical,
  seed-ordered :class:`~repro.annealer.batch.EnsembleResult` the
  serial :func:`~repro.annealer.batch.solve_ensemble` path produces
  (runs are pure functions of their seed, so multiplexing changes
  wall-clock, never tours).

Admission control keeps the fabric fair: at most
``max_pending_jobs`` jobs are admitted at once (``submit`` applies
backpressure by awaiting a free slot), and one job may have at most
``max_inflight_per_job`` seeds in flight, so a 10 000-seed ensemble
cannot starve its siblings.  Shutdown is graceful by choice:
``drain=True`` finishes admitted jobs, ``drain=False`` cancels them
cooperatively (in-flight seeds finish; no further seeds dispatch).

Internally each job's dispatch runs on a private thread (the event
loop is never blocked) and reuses the battle-tested
:class:`~repro.runtime.executor.EnsembleExecutor` retry/timeout/
fallback machinery with a *borrowed* shared pool; completed-run
records cross back onto the event loop via
``loop.call_soon_threadsafe``.  Only picklable module-level callables
ever cross the process boundary (lint rule RL003 checks the async
boundary too).
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from enum import Enum
from typing import (
    TYPE_CHECKING,
    Any,
    AsyncIterator,
    Callable,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.errors import AnnealerError, DeadlineExceededError
from repro.runtime.executor import EnsembleExecutor
from repro.runtime.faults import CircuitBreaker
from repro.runtime.options import EnsembleOptions, SolveRequest
from repro.runtime.telemetry import RunTelemetry

if TYPE_CHECKING:  # import cycle: repro.annealer.batch uses this module
    from repro.annealer.batch import EnsembleResult


class JobState(str, Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


class Job:
    """Handle for one submitted :class:`SolveRequest`.

    Created by :meth:`AnnealingService.submit`; not constructed
    directly.  All coroutine methods must be awaited on the loop the
    job was submitted from.
    """

    def __init__(self, job_id: str, request: SolveRequest) -> None:
        self.job_id = job_id
        self.request = request
        self._state = JobState.PENDING
        self._records: List[RunTelemetry] = []
        self._result: Optional["EnsembleResult"] = None
        self._error: Optional[BaseException] = None
        self._finished = asyncio.Event()
        self._wakeup = asyncio.Event()
        self._cancel_event = threading.Event()
        self._deadline_hit = False
        self._deadline_handle: Optional[asyncio.TimerHandle] = None

    # -- public read surface -------------------------------------------
    @property
    def state(self) -> JobState:
        """Current lifecycle state."""
        return self._state

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self._finished.is_set()

    @property
    def records(self) -> Tuple[RunTelemetry, ...]:
        """Snapshot of the telemetry records streamed so far."""
        return tuple(self._records)

    @property
    def error(self) -> Optional[BaseException]:
        """The terminal error (failed/cancelled jobs), else None.

        Lets a supervisor classify an outcome without re-raising it
        (:meth:`result` raises; this just reads).
        """
        return self._error

    def cancel(self) -> None:
        """Request cooperative cancellation.

        In-flight seeds finish; no further seeds are dispatched.  The
        job settles in :attr:`JobState.CANCELLED` and
        :meth:`result` raises :class:`AnnealerError`.  No-op on a
        finished job.
        """
        self._cancel_event.set()

    async def stream(self) -> AsyncIterator[RunTelemetry]:
        """Yield each run's telemetry record as it completes.

        Safe to start before, during, or after the job runs — a late
        consumer replays the buffered records first.  Multiple
        concurrent consumers each see the full record sequence.  The
        iterator ends when the job reaches a terminal state (it does
        not raise on failure; use :meth:`result` for the outcome).
        """
        idx = 0
        while True:
            # Capture the wakeup event *before* scanning: a record
            # posted after the scan then sets this captured event, so
            # the await below cannot miss it.
            wakeup = self._wakeup
            while idx < len(self._records):
                yield self._records[idx]
                idx += 1
            if self._finished.is_set() and idx >= len(self._records):
                return
            await wakeup.wait()

    async def result(self) -> "EnsembleResult":
        """Await the terminal outcome.

        Returns the seed-ordered :class:`EnsembleResult` (bit-identical
        to the serial path); raises the job's terminal
        :class:`AnnealerError` on failure or cancellation.  Every
        telemetry record is observable via :attr:`records` /
        :meth:`stream` before this resolves.
        """
        await self._finished.wait()
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    # -- loop-side mutation (called via call_soon_threadsafe) ----------
    def _notify(self) -> None:
        wakeup = self._wakeup
        self._wakeup = asyncio.Event()
        wakeup.set()

    def _mark_running(self) -> None:
        if self._state is JobState.PENDING:
            self._state = JobState.RUNNING

    def _post_record(self, record: RunTelemetry) -> None:
        self._records.append(record)
        self._notify()

    def _deadline_fire(self) -> None:
        """Loop-side deadline watchdog: the end-to-end budget expired.

        Ordering matters: ``_deadline_hit`` is set *before* the cancel
        event so the job thread, on observing the cancellation, always
        attributes it to the deadline.
        """
        if self._finished.is_set():
            return
        self._deadline_hit = True
        self._cancel_event.set()

    def _finish(
        self,
        state: JobState,
        result: Optional["EnsembleResult"] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        if self._deadline_handle is not None:
            self._deadline_handle.cancel()
            self._deadline_handle = None
        self._state = state
        self._result = result
        self._error = error
        self._finished.set()
        self._notify()


class AnnealingService:
    """Shared-pool serving front-end over :class:`EnsembleExecutor`.

    One service = one worker pool (width ``options.max_workers``) +
    one admission queue.  Use as an async context manager::

        async with AnnealingService(EnsembleOptions(max_workers=4)) as svc:
            job = await svc.submit(request)
            async for record in job.stream():
                ...
            result = await job.result()

    Exiting the context drains admitted jobs (cancels them instead if
    the block raised).  The service is bound to the event loop it was
    started on.
    """

    def __init__(
        self,
        options: Optional[EnsembleOptions] = None,
        *,
        name: str = "",
    ) -> None:
        if name and not name.replace("-", "").replace("_", "").isalnum():
            raise AnnealerError(
                f"service name must be alphanumeric/-/_, got {name!r}"
            )
        self.options = options if options is not None else EnsembleOptions()
        self.name = name
        self._jobs: Dict[str, Job] = {}
        self._active: Set["asyncio.Future[None]"] = set()
        self._inflight = 0
        self._counter = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._admission: Optional[asyncio.Semaphore] = None
        self._job_threads: Optional[ThreadPoolExecutor] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._heal_budget_left = self.options.self_heal_budget
        self._pool_rebuilds = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def started(self) -> bool:
        """True between :meth:`start` and :meth:`shutdown`."""
        return self._started and not self._closed

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` ran; a closed service never
        restarts (front-ends must route around it)."""
        return self._closed

    @property
    def jobs(self) -> Dict[str, Job]:
        """Snapshot of every job ever admitted, keyed by job id."""
        return dict(self._jobs)

    @property
    def pool_rebuilds(self) -> int:
        """Shared-pool rebuilds performed by self-healing so far."""
        return self._pool_rebuilds

    @property
    def inflight_jobs(self) -> int:
        """Jobs admitted and not yet settled (queued or running)."""
        return self._inflight

    @property
    def at_capacity(self) -> bool:
        """True when another :meth:`submit` would have to wait.

        The non-blocking view of admission control: front-ends that
        must *reject* rather than queue (the gateway's 429 path) check
        this before submitting instead of blocking on the admission
        semaphore.
        """
        return self._inflight >= self.options.max_pending_jobs

    async def start(self) -> None:
        """Bind to the running loop and build the shared fabric.

        Idempotent; :meth:`submit` auto-starts.  With
        ``max_workers > 1`` a shared ``ProcessPoolExecutor`` is
        created; if that fails (sandbox, no ``fork``) jobs degrade to
        the executor's serial fallback, exactly like the sync path.
        """
        if self._closed:
            raise AnnealerError("service has been shut down; build a new one")
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        self._admission = asyncio.Semaphore(self.options.max_pending_jobs)
        self._job_threads = ThreadPoolExecutor(
            max_workers=self.options.max_pending_jobs,
            thread_name_prefix="repro-job",
        )
        if self.options.max_workers > 1:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.options.max_workers
                )
            # Pool construction failure must degrade, not poison the
            # service: jobs fall back to the serial path.
            except Exception:  # repro-lint: ignore[RL005]
                self._pool = None
        self._started = True

    async def submit(
        self, request: SolveRequest, *, job_id: Optional[str] = None
    ) -> Job:
        """Admit one request; returns its :class:`Job` handle.

        Applies backpressure: when ``max_pending_jobs`` jobs are
        already admitted and unfinished, this awaits until a slot
        frees.  Raises :class:`AnnealerError` once the service is shut
        down.

        ``job_id`` overrides the generated ``<tag>-NNNN`` id; a
        front-end that owns the id space (the gateway router names
        jobs before fanning them to shards) passes it so the id in
        each record's ``worker`` field matches the id it handed to the
        client.  Duplicate ids are rejected.
        """
        if not isinstance(request, SolveRequest):
            raise AnnealerError(
                "submit() takes a SolveRequest; build one with "
                "SolveRequest.build(instance, seeds, ...)"
            )
        await self.start()
        if self._closed:
            raise AnnealerError("service is shut down; no new jobs accepted")
        assert self._admission is not None
        assert self._loop is not None and self._job_threads is not None
        enqueued_at = self._loop.time()
        await self._admission.acquire()
        if self._closed:  # shut down while we waited for admission
            self._admission.release()
            raise AnnealerError("service is shut down; no new jobs accepted")
        remaining: Optional[float] = None
        if request.deadline_s is not None:
            # The admission wait already spent part of the end-to-end
            # budget; reject up front when nothing is left rather than
            # admitting a job doomed to be cancelled mid-solve.
            remaining = request.deadline_s - (self._loop.time() - enqueued_at)
            if remaining <= 0:
                self._admission.release()
                raise DeadlineExceededError(
                    f"deadline of {request.deadline_s}s spent waiting for "
                    "admission; rejecting instead of admitting a doomed job"
                )
        if job_id is None:
            label = request.tag or "job"
            job_id = f"{label}-{next(self._counter):04d}"
        if job_id in self._jobs:
            self._admission.release()
            raise AnnealerError(f"duplicate job id {job_id!r}")
        job = Job(job_id, request)
        if remaining is not None:
            job._deadline_handle = self._loop.call_later(
                remaining, job._deadline_fire
            )
        self._inflight += 1
        self._jobs[job.job_id] = job
        fut = self._loop.run_in_executor(self._job_threads, self._run_job, job)
        self._active.add(fut)
        fut.add_done_callback(self._on_job_settled)
        return job

    def _on_job_settled(self, fut: "asyncio.Future[None]") -> None:
        self._active.discard(fut)
        self._inflight = max(0, self._inflight - 1)
        if self._admission is not None:
            self._admission.release()
        if not fut.cancelled():
            fut.exception()  # _run_job never raises; keep the loop quiet

    async def shutdown(self, drain: bool = True) -> None:
        """Stop admitting jobs and release the fabric.

        ``drain=True`` (default) waits for every admitted job to
        finish; ``drain=False`` cancels them cooperatively first.
        Idempotent.
        """
        self._closed = True
        if not self._started:
            return
        if not drain:
            for job in self._jobs.values():
                if not job.done:
                    job.cancel()
        if self._active:
            await asyncio.gather(*list(self._active), return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self._job_threads is not None:
            # Joining the repro-job threads synchronously would stall
            # the event loop (and every other service on it) for as
            # long as the slowest job takes to notice cancellation.
            job_threads = self._job_threads
            self._job_threads = None
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, job_threads.shutdown)

    async def __aenter__(self) -> "AnnealingService":
        await self.start()
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.shutdown(drain=exc_type is None)

    # ------------------------------------------------------------------
    def _post(self, fn: Callable[..., None], *args: Any) -> None:
        """Hand a job mutation to the event loop from the job thread."""
        assert self._loop is not None
        try:
            self._loop.call_soon_threadsafe(fn, *args)
        except RuntimeError:
            pass  # loop already closed: the consumer is gone, drop it

    def _run_job(self, job: Job) -> None:
        """Job body; runs on a ``repro-job`` thread, never raises."""
        if job._cancel_event.is_set():
            if job._deadline_hit:
                self._post(
                    job._finish,
                    JobState.FAILED,
                    None,
                    DeadlineExceededError(
                        f"job {job.job_id} deadline of "
                        f"{job.request.deadline_s}s expired before start"
                    ),
                )
                return
            self._post(
                job._finish,
                JobState.CANCELLED,
                None,
                AnnealerError(f"job {job.job_id} cancelled before start"),
            )
            return
        self._post(job._mark_running)
        try:
            result = self._execute(job)
            self._post(job._finish, JobState.DONE, result, None)
        except AnnealerError as exc:
            if job._deadline_hit:
                self._post(
                    job._finish,
                    JobState.FAILED,
                    None,
                    DeadlineExceededError(
                        f"job {job.job_id} deadline of "
                        f"{job.request.deadline_s}s expired mid-solve: {exc}"
                    ),
                )
            elif job._cancel_event.is_set():
                self._post(
                    job._finish,
                    JobState.CANCELLED,
                    None,
                    AnnealerError(f"job {job.job_id} cancelled: {exc}"),
                )
            else:
                self._post(job._finish, JobState.FAILED, None, exc)
        # The job boundary is the last line of defence: any fault must
        # settle the job (and wake result()/stream() awaiters), never
        # kill the service thread silently.
        except Exception as exc:  # repro-lint: ignore[RL005]
            self._post(job._finish, JobState.FAILED, None, exc)

    def _execute(self, job: Job) -> "EnsembleResult":
        """One ensemble on the shared fabric (job thread)."""
        # Imported lazily: repro.annealer imports repro.runtime.
        from repro.analysis.quality import summarize
        from repro.annealer.batch import EnsembleResult
        from repro.backends import resolve_backend

        request = job.request
        seeds = list(request.seeds)
        reference = request.reference
        if reference is None:
            # The backend supplies the quality denominator; the default
            # cluster-cim backend computes the exact pre-registry
            # greedy reference_length, bit-identical.
            reference = resolve_backend(request.backend).reference(
                request.instance, int(seeds[0])
            )

        threshold = request.options.breaker_threshold
        breaker = CircuitBreaker(threshold) if threshold is not None else None
        runner = EnsembleExecutor(self._job_options(request.options))
        results, telemetry = runner.run(
            request.instance,
            seeds,
            config=request.config,
            reference=reference,
            backend=request.backend,
            on_run_complete=self._record_poster(job),
            pool=self._pool,
            worker_prefix=f"{self.name}/" if self.name else "",
            worker_suffix=f"@{job.job_id}",
            cancel=job._cancel_event,
            breaker=breaker,
            on_pool_broken=self._heal_pool,
        )
        telemetry.job_id = job.job_id
        if not results:
            raise AnnealerError(
                f"all {len(seeds)} ensemble runs failed; "
                f"first error: {telemetry.runs[0].error}"
            )
        out = EnsembleResult(
            instance=request.instance,
            reference=reference,
            results=results,
            telemetry=telemetry,
        )
        out.ratio_stats = summarize(out.ratios, seed=int(seeds[0]))
        return out

    def _record_poster(self, job: Job) -> Callable[[RunTelemetry], None]:
        """Completion callback bridging the job thread to the loop."""

        def post(record: RunTelemetry) -> None:
            self._post(job._post_record, record)

        return post

    def _job_options(self, requested: EnsembleOptions) -> EnsembleOptions:
        """Per-job executor options on the *service's* fabric.

        The service's pool width wins (the pool is shared); the
        request keeps its per-job knobs.  The dispatch wave is clamped
        to ``max_inflight_per_job`` — with a borrowed pool the
        executor's chunking *is* the in-flight cap, which is what
        keeps one huge ensemble from starving its siblings.
        """
        width = self.options.max_workers
        cap = requested.effective_inflight_per_job
        chunk = min(requested.chunk_size or max(1, 2 * width), cap)
        return EnsembleOptions(
            max_workers=width,
            timeout_s=requested.timeout_s,
            max_retries=requested.max_retries,
            chunk_size=chunk,
            strict=requested.strict,
            max_inflight_per_job=requested.max_inflight_per_job,
            max_pending_jobs=requested.max_pending_jobs,
            backoff_base_s=requested.backoff_base_s,
            backoff_cap_s=requested.backoff_cap_s,
            self_heal_budget=requested.self_heal_budget,
            breaker_threshold=requested.breaker_threshold,
            fault_plan=requested.fault_plan,
            batch_size=requested.batch_size,
        )

    def _heal_pool(
        self, broken: "ProcessPoolExecutor"
    ) -> Optional["ProcessPoolExecutor"]:
        """Replace the *shared* pool after a job observed it broken.

        Called from job threads (the executor's ``on_pool_broken``
        hook), so it serialises on a lock.  If a sibling job already
        healed the pool (``broken`` is no longer the current one), the
        healed pool is handed back without spending budget.  Otherwise
        one unit of the service-lifetime ``self_heal_budget`` buys a
        rebuild; with the budget spent the caller degrades to its
        serial path and the shared pool stays down.
        """
        with self._pool_lock:
            if self._closed:
                return None
            if self._pool is not None and self._pool is not broken:
                return self._pool  # a sibling already healed it
            if self._heal_budget_left <= 0:
                self._pool = None
                return None
            self._heal_budget_left -= 1
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.options.max_workers
                )
            # Rebuild failure degrades exactly like construction failure
            # at start(): jobs fall back to the serial path.
            except Exception:  # repro-lint: ignore[RL005]
                self._pool = None
                return None
            self._pool_rebuilds += 1
            return self._pool


# ----------------------------------------------------------------------
async def solve_async(request: SolveRequest) -> "EnsembleResult":
    """Run one request on a fresh single-job service and await it."""
    service = AnnealingService(request.options)
    try:
        await service.start()
        job = await service.submit(request)
        return await job.result()
    finally:
        await service.shutdown(drain=True)


def solve_sync(request: SolveRequest) -> "EnsembleResult":
    """Blocking one-shot solve of a :class:`SolveRequest`.

    The engine under :func:`repro.annealer.batch.solve_ensemble`:
    spins up a private :class:`AnnealingService`, runs the request as
    its only job, and returns the result.  Must not be called from a
    coroutine — await :meth:`AnnealingService.submit` there instead.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(solve_async(request))
    raise AnnealerError(
        "solve_sync()/solve_ensemble() would block the running event "
        "loop; use `await AnnealingService.submit(request)` instead"
    )
