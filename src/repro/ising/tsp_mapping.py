"""The Eq. (3) TSP → Ising mapping.

An N-city TSP is encoded with N² binary spins σ_ik ∈ {0, 1}, where
σ_ik = 1 means "city k is visited at order i":

    H_TSP =  a · Σ_{k≠l} Σ_i W_kl σ_ik σ_{(i+1)l}        (objective)
           + b · Σ_i (Σ_k σ_ik − 1)²                     (one city per order)
           + c · Σ_k (Σ_i σ_ik − 1)²                     (one order per city)

This module builds the mapping explicitly (for small N — the point of
the paper is precisely that this explodes as O(N⁴) couplings) and
provides the conversions between tours and spin matrices.  The
clustered annealer never materialises this; it is the reference the
compact CIM windows are validated against, and the substrate of the
software Ising baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import IsingError
from repro.ising.model import IsingModel
from repro.tsp.instance import TSPInstance


@dataclass(frozen=True)
class TSPIsingMapping:
    """A built Eq. (3) mapping.

    Attributes
    ----------
    instance:
        The TSP instance.
    qubo:
        ``(N², N²)`` upper-structure QUBO matrix ``Q`` such that
        ``H = σᵀQσ + qᵀσ + offset`` over σ ∈ {0,1}.
    linear:
        The linear term ``q``.
    offset:
        The constant term (b·N + c·N from expanding the penalties).
    a, b, c:
        Hyper-parameters of Eq. (3).
    """

    instance: TSPInstance
    qubo: np.ndarray
    linear: np.ndarray
    offset: float
    a: float
    b: float
    c: float

    @property
    def n_cities(self) -> int:
        """Number of cities N."""
        return self.instance.n

    @property
    def n_spins(self) -> int:
        """Number of spins N²."""
        return self.n_cities * self.n_cities

    def spin_index(self, order: int, city: int) -> int:
        """Flat index of spin σ_{order, city}."""
        n = self.n_cities
        if not (0 <= order < n and 0 <= city < n):
            raise IsingError(f"(order={order}, city={city}) out of range for N={n}")
        return order * n + city

    def energy(self, spins: np.ndarray) -> float:
        """Eq. (3) Hamiltonian for a flat {0,1} spin vector."""
        s = np.asarray(spins, dtype=np.float64).reshape(-1)
        if s.size != self.n_spins:
            raise IsingError(f"expected {self.n_spins} spins, got {s.size}")
        return float(s @ self.qubo @ s + self.linear @ s + self.offset)

    def to_ising_model(self) -> IsingModel:
        """Convert to an :class:`IsingModel` in the {0,1} convention.

        ``H = -ΣᵢΣⱼ Jᵢⱼσᵢσⱼ - Σᵢ hᵢσᵢ + offset`` with the double-counted
        ordered-pair convention of :class:`IsingModel`.
        """
        Q = self.qubo
        sym = (Q + Q.T) / 2.0
        diag = np.diag(sym).copy()
        np.fill_diagonal(sym, 0.0)
        J = -sym
        # σᵢ² = σᵢ folds the QUBO diagonal into the linear term.
        h = -(self.linear + diag)
        return IsingModel(J, h, convention="01")


def build_tsp_ising(
    instance: TSPInstance,
    a: float = 1.0,
    b: Optional[float] = None,
    c: Optional[float] = None,
) -> TSPIsingMapping:
    """Build the Eq. (3) mapping for ``instance``.

    Penalty weights default to ``2 · a · max(W)`` which guarantees that
    violating a one-hot constraint always costs more than any tour-edge
    saving (the standard sufficient condition).

    The dense QUBO is O(N⁴) memory — exactly the scalability wall the
    paper attacks — so this refuses N > 64 (64⁴ = 16M couplings).
    """
    n = instance.n
    if n > 64:
        raise IsingError(
            f"explicit Eq. (3) mapping is O(N^4); refusing N={n} > 64 "
            "(use the clustered annealer for large instances)"
        )
    W = instance.distance_matrix()
    w_max = float(W.max())
    if b is None:
        b = 2.0 * a * w_max
    if c is None:
        c = 2.0 * a * w_max
    if a <= 0 or b <= 0 or c <= 0:
        raise IsingError("a, b, c must all be > 0")

    n_spins = n * n
    Q = np.zeros((n_spins, n_spins))
    q = np.zeros(n_spins)

    def idx(order: int, city: int) -> int:
        return order * n + city

    # Objective: a * W_kl between consecutive orders (cyclic).
    for i in range(n):
        i_next = (i + 1) % n
        for k in range(n):
            for l in range(n):
                if k == l:
                    continue
                Q[idx(i, k), idx(i_next, l)] += a * W[k, l]

    # Penalty b: one city per order (rows of the spin matrix).
    for i in range(n):
        for k in range(n):
            q[idx(i, k)] += -b  # (σ² - 2σ) with σ²=σ
            for l in range(k + 1, n):
                Q[idx(i, k), idx(i, l)] += 2.0 * b

    # Penalty c: one order per city (columns of the spin matrix).
    for k in range(n):
        for i in range(n):
            q[idx(i, k)] += -c
            for j in range(i + 1, n):
                Q[idx(i, k), idx(j, k)] += 2.0 * c

    offset = b * n + c * n
    return TSPIsingMapping(
        instance=instance, qubo=Q, linear=q, offset=offset, a=a, b=b, c=c
    )


def tour_to_spins(tour: np.ndarray, n: Optional[int] = None) -> np.ndarray:
    """Encode a tour as a flat {0,1} spin vector (σ_ik layout)."""
    from repro.tsp.tour import validate_tour

    arr = validate_tour(tour, n)
    size = arr.size
    spins = np.zeros(size * size)
    for order, city in enumerate(arr):
        spins[order * size + int(city)] = 1.0
    return spins


def decode_spins_to_tour(
    spins: np.ndarray, n: int, strict: bool = True
) -> Tuple[np.ndarray, bool]:
    """Decode a spin vector to ``(tour, feasible)``.

    With ``strict=True`` an infeasible assignment (violated one-hot
    constraints) raises; otherwise each order slot takes its argmax city
    and duplicates are repaired greedily, returning ``feasible=False``.
    """
    s = np.asarray(spins, dtype=np.float64).reshape(n, n)
    feasible = bool(
        np.all(s.sum(axis=0) == 1.0) and np.all(s.sum(axis=1) == 1.0)
    )
    if strict and not feasible:
        raise IsingError("spin state violates the one-hot constraints")
    tour = np.argmax(s, axis=1).astype(np.int64)
    if not feasible:
        # Greedy repair: keep first occurrence, fill gaps with unused cities.
        used = set()
        missing = [c for c in range(n) if c not in set(tour.tolist())]
        for i in range(n):
            if int(tour[i]) in used:
                tour[i] = missing.pop()
            used.add(int(tour[i]))
    return tour, feasible
