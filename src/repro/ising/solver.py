"""Software Ising-annealing TSP solver (small problems).

Runs Metropolis annealing over the PBM swap moves on the *exact*
Eq. (3) objective — the algorithm the CIM hardware accelerates, with
floating-point weights and an explicit temperature instead of SRAM bit
noise.  Used as:

* the convergence baseline of Fig. 2 (energy trace with/without
  annealing);
* a correctness oracle for the hardware-simulated path on small
  instances (both should land in the same quality band).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.ising.numerics import boltzmann_accept_probability
from repro.ising.pbm import PermutationState, swap_delta_energy
from repro.ising.schedule import GeometricTemperatureSchedule
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import tour_length
from repro.utils.rng import SeedLike, spawn_rng


@dataclass
class IsingSAResult:
    """Result of the software Ising SA solve."""

    tour: np.ndarray
    length: float
    trace: List[Tuple[int, float]] = field(default_factory=list)
    accepted_moves: int = 0
    proposed_moves: int = 0

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposed swaps accepted."""
        return self.accepted_moves / max(1, self.proposed_moves)


def solve_tsp_ising(
    instance: TSPInstance,
    n_sweeps: int = 200,
    t_start: float = 1.0,
    t_end: float = 0.01,
    seed: SeedLike = None,
    initial_tour: Optional[np.ndarray] = None,
    greedy: bool = False,
    record_every: int = 0,
) -> IsingSAResult:
    """Anneal a TSP with PBM swap moves on exact distances.

    Parameters
    ----------
    instance:
        The problem (small/medium; distances evaluated on the fly).
    n_sweeps:
        Number of sweeps; each sweep proposes ``n`` swaps.
    t_start, t_end:
        Geometric temperature ramp in units of the mean leg length.
    greedy:
        If True, temperature is forced to 0 (pure descent) — the
        "no annealing" baseline of Fig. 2 that gets stuck in local
        minima.
    record_every:
        Record tour length every this many sweeps (0 = never).
    """
    if n_sweeps < 1:
        raise ConfigError(f"n_sweeps must be >= 1, got {n_sweeps}")
    rng = spawn_rng(seed)
    n = instance.n
    if initial_tour is None:
        state = PermutationState(rng.permutation(n))
    else:
        state = PermutationState(np.asarray(initial_tour))

    length = tour_length(instance, state.order)
    mean_leg = length / n
    schedule = GeometricTemperatureSchedule(
        t_start * mean_leg, t_end * mean_leg, n_sweeps
    )

    dist = instance.distance
    accepted = 0
    proposed = 0
    trace: List[Tuple[int, float]] = []
    for sweep in range(n_sweeps):
        temp = 0.0 if greedy else schedule.temperature(sweep)
        if record_every and sweep % record_every == 0:
            # The incrementally-accumulated ``length`` carries float
            # drift; recompute the exact tour length at every recorded
            # point (and resync the accumulator) so traces are exact.
            length = tour_length(instance, state.order)
            trace.append((sweep, length))
        for _ in range(n):
            i, j = rng.integers(0, n, size=2)
            if i == j:
                continue
            proposed += 1
            delta = swap_delta_energy(state, int(i), int(j), dist)
            if delta <= 0 or (
                temp > 0
                and rng.random() < boltzmann_accept_probability(delta, temp)
            ):
                state.swap_positions(int(i), int(j))
                length += delta
                accepted += 1

    length = tour_length(instance, state.order)  # cancel float drift
    if record_every:
        trace.append((n_sweeps, length))
    return IsingSAResult(
        tour=state.order.copy(),
        length=length,
        trace=trace,
        accepted_moves=accepted,
        proposed_moves=proposed,
    )
