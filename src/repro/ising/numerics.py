"""Numerically stable acceptance-probability kernels.

The Boltzmann acceptance rules used throughout the package all reduce
to evaluating ``exp`` of an energy gap over a temperature.  Evaluated
naively that overflows for large gaps or tiny temperatures — numpy
emits ``RuntimeWarning: overflow encountered in exp`` and the result
degrades to ``inf`` arithmetic.  The test suite promotes
``RuntimeWarning`` to an error, so every accept/sigmoid in the code
base goes through the helpers here, which keep the ``exp`` argument
non-positive by construction:

* :func:`stable_sigmoid` — ``1/(1+exp(-x))`` for Gibbs conditional
  probabilities, branching on the sign of ``x`` so the exponent never
  exceeds 0;
* :func:`boltzmann_accept_probability` — ``min(1, exp(-Δ/T))`` for
  Metropolis accepts, exact for every finite ``Δ`` and ``T >= 0``.

Both accept scalars or arrays and never warn, for any finite input.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.errors import IsingError

ArrayLike = Union[float, np.ndarray]


def stable_sigmoid(x: ArrayLike) -> ArrayLike:
    """Logistic function ``1/(1+exp(-x))`` without overflow.

    Branches on the sign of ``x`` so the exponential argument is always
    ``<= 0``: for ``x >= 0`` it computes ``1/(1+exp(-x))`` directly and
    for ``x < 0`` the algebraically identical ``exp(x)/(1+exp(x))``.
    Large ``|x|`` saturates cleanly to 0 or 1 (no ``inf`` intermediates,
    no ``RuntimeWarning``).
    """
    x = np.asarray(x, dtype=np.float64)
    # exp is only evaluated on a non-positive argument: -|x|.
    z = np.exp(-np.abs(x))
    out = np.where(x >= 0, 1.0 / (1.0 + z), z / (1.0 + z))
    if out.ndim == 0:
        return float(out)
    return out


def boltzmann_accept_probability(
    delta: ArrayLike, temperature: float
) -> ArrayLike:
    """Metropolis acceptance probability ``min(1, exp(-delta/T))``.

    ``temperature == 0`` degenerates to the greedy rule (accept iff the
    energy drops, probability 1 for ``delta <= 0`` else 0).  The
    exponent is clamped to ``<= 0`` before ``exp`` — improving moves
    are accepted with probability exactly 1 rather than via an
    overflowing ``exp`` of a positive argument — so no input warns.
    """
    if temperature < 0:
        raise IsingError(f"temperature must be >= 0, got {temperature}")
    delta = np.asarray(delta, dtype=np.float64)
    if temperature == 0:
        out = np.where(delta <= 0, 1.0, 0.0)
    else:
        # Clip the worsening gap at 750·T before dividing: exp(-750) is
        # already a hard 0 in float64, and the unclipped quotient would
        # overflow (RuntimeWarning) for huge gaps or tiny temperatures.
        gap = np.minimum(np.maximum(delta, 0.0), 750.0 * temperature)
        out = np.exp(-gap / temperature)
    if out.ndim == 0:
        return float(out)
    return out
