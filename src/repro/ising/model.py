"""The Ising model of Eq. (1)/(2).

``H = -Σᵢⱼ Jᵢⱼ σᵢ σⱼ - Σᵢ hᵢ σᵢ`` with σ ∈ {-1, +1} (spin convention)
or σ ∈ {0, 1} (QUBO / lattice-gas convention, used by the paper's TSP
mapping where σ_ik indicates "city k visited at order i").

The model stores a dense symmetric ``J`` with zero diagonal and
supports:

* total energy (Eq. 1),
* local energy of one spin (Eq. 2) — the quantity the CIM array
  computes as a MAC between the spin vector and one weight column,
* local fields for all spins at once (one matrix-vector product),
* single-spin-flip energy deltas.

Dense ``J`` limits this class to a few thousand spins; the clustered
annealer never builds it for the full problem — it exists to express
the *mathematics* and to serve as the reference implementation the CIM
window computation is tested against.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from repro.errors import IsingError

SpinConvention = Literal["pm1", "01"]


class IsingModel:
    """A dense Ising/QUBO model.

    Parameters
    ----------
    couplings:
        ``(n, n)`` symmetric interaction matrix ``J`` (zero diagonal).
    field:
        Optional ``(n,)`` external field ``h`` (defaults to zeros).
    convention:
        ``"pm1"`` for σ ∈ {-1,+1} (Eq. 1) or ``"01"`` for σ ∈ {0,1}
        (the TSP mapping of Eq. 3).  Energy formulas are identical;
        only the admissible spin values differ.
    """

    def __init__(
        self,
        couplings: np.ndarray,
        field: Optional[np.ndarray] = None,
        convention: SpinConvention = "pm1",
    ) -> None:
        J = np.asarray(couplings, dtype=np.float64)
        if J.ndim != 2 or J.shape[0] != J.shape[1]:
            raise IsingError(f"couplings must be square, got shape {J.shape}")
        if not np.allclose(J, J.T, atol=1e-9):
            raise IsingError("couplings must be symmetric")
        if not np.allclose(np.diag(J), 0.0, atol=1e-12):
            raise IsingError("couplings must have zero diagonal")
        if convention not in ("pm1", "01"):
            raise IsingError(f"unknown convention {convention!r}")
        n = J.shape[0]
        h = np.zeros(n) if field is None else np.asarray(field, dtype=np.float64)
        if h.shape != (n,):
            raise IsingError(f"field must have shape ({n},), got {h.shape}")
        self._J = J
        self._h = h
        self._convention: SpinConvention = convention

    # ------------------------------------------------------------------
    @property
    def n_spins(self) -> int:
        """Number of spins."""
        return self._J.shape[0]

    @property
    def couplings(self) -> np.ndarray:
        """The symmetric coupling matrix ``J`` (view; do not mutate)."""
        return self._J

    @property
    def field(self) -> np.ndarray:
        """The external field ``h`` (view; do not mutate)."""
        return self._h

    @property
    def convention(self) -> SpinConvention:
        """Spin value convention, ``"pm1"`` or ``"01"``."""
        return self._convention

    # ------------------------------------------------------------------
    def validate_state(self, spins: np.ndarray) -> np.ndarray:
        """Check a spin vector against the model's convention."""
        s = np.asarray(spins, dtype=np.float64)
        if s.shape != (self.n_spins,):
            raise IsingError(
                f"state must have shape ({self.n_spins},), got {s.shape}"
            )
        allowed = {-1.0, 1.0} if self._convention == "pm1" else {0.0, 1.0}
        values = set(np.unique(s).tolist())
        if not values <= allowed:
            raise IsingError(
                f"state values {sorted(values)} invalid for convention "
                f"{self._convention!r}"
            )
        return s

    def energy(self, spins: np.ndarray) -> float:
        """Total Hamiltonian energy, Eq. (1).

        ``H = -σᵀJσ/...`` — note Eq. (1) sums every (i, j) ordered pair,
        i.e. each interaction is counted twice; we follow that paper
        convention exactly: ``H = -Σ_{i,j} J_ij σ_i σ_j - Σ_i h_i σ_i``
        with the double sum over all i ≠ j.
        """
        s = self.validate_state(spins)
        return float(-(s @ self._J @ s) - self._h @ s)

    def local_field(self, spins: np.ndarray) -> np.ndarray:
        """``Σⱼ Jᵢⱼ σⱼ + hᵢ`` for all i — the MAC output of the CIM array."""
        s = self.validate_state(spins)
        # Eq. (2) uses the double-counted convention consistently:
        # each neighbour contributes J_ij and J_ji (equal), hence 2J.
        return 2.0 * (self._J @ s) + self._h

    def local_energy(self, spins: np.ndarray, i: int) -> float:
        """Local energy of spin ``i``, Eq. (2): ``-(Σⱼ Jᵢⱼσⱼ + hᵢ)σᵢ``."""
        if not 0 <= i < self.n_spins:
            raise IsingError(f"spin index {i} out of range")
        s = self.validate_state(spins)
        field = 2.0 * float(self._J[i] @ s) + float(self._h[i])
        return -field * float(s[i])

    def flip_delta(self, spins: np.ndarray, i: int) -> float:
        """Energy change of flipping spin ``i`` (pm1) or toggling (01)."""
        s = self.validate_state(spins)
        field = 2.0 * float(self._J[i] @ s) + float(self._h[i])
        if self._convention == "pm1":
            return 2.0 * field * float(s[i])
        # 01 convention: σ' = 1 - σ, Δσ = 1 - 2σ.
        dsigma = 1.0 - 2.0 * float(s[i])
        return -field * dsigma

    def __repr__(self) -> str:
        return f"IsingModel(n_spins={self.n_spins}, convention={self._convention!r})"
