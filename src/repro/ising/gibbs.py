"""Gibbs sampling sweeps: sequential and chromatic-parallel.

Sec. III-A: spins are normally updated one-by-one (Gibbs sampling) to
guarantee ergodicity, but spins with no mutual interaction may be
updated in parallel (chromatic Gibbs sampling, Gonzalez et al. 2011).
In the clustered TSP the interaction graph between *clusters* is a
cycle — cluster c only interacts with c-1 and c+1 — so two colours
suffice: all odd clusters update in one phase, all even clusters in the
other.  :func:`chromatic_groups` computes that colouring for a general
interaction graph (greedy colouring, exact 2-colouring for cycles);
:func:`gibbs_sweep` runs a temperature-annealed sweep on a dense
:class:`IsingModel` (used by the software baseline and tests).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IsingError
from repro.ising.model import IsingModel
from repro.ising.numerics import stable_sigmoid
from repro.utils.rng import SeedLike, spawn_rng


def chromatic_groups(
    n_nodes: int, edges: Sequence[Tuple[int, int]]
) -> List[np.ndarray]:
    """Greedy graph colouring → groups of mutually independent nodes.

    Nodes in the same group share no edge, so their spins can be
    updated simultaneously without violating Gibbs-sampling
    correctness.  For a cycle of even length this returns exactly the
    odd/even two-colouring the paper uses; odd cycles need (and get)
    three colours.
    """
    if n_nodes < 1:
        raise IsingError(f"n_nodes must be >= 1, got {n_nodes}")
    adjacency: List[set] = [set() for _ in range(n_nodes)]
    for a, b in edges:
        if not (0 <= a < n_nodes and 0 <= b < n_nodes):
            raise IsingError(f"edge ({a}, {b}) out of range")
        if a == b:
            continue
        adjacency[a].add(b)
        adjacency[b].add(a)

    colors = np.full(n_nodes, -1, dtype=np.int64)
    for node in range(n_nodes):
        used = {int(colors[nb]) for nb in adjacency[node] if colors[nb] >= 0}
        color = 0
        while color in used:
            color += 1
        colors[node] = color
    n_colors = int(colors.max()) + 1
    return [np.nonzero(colors == c)[0] for c in range(n_colors)]


def cycle_groups(n_nodes: int) -> List[np.ndarray]:
    """Odd/even groups for a cycle interaction graph (the paper's case).

    For an even cycle this is the exact chromatic 2-colouring; for an
    odd cycle the last node forms a third group so no two adjacent
    clusters ever update together.
    """
    if n_nodes < 1:
        raise IsingError(f"n_nodes must be >= 1, got {n_nodes}")
    if n_nodes <= 2:
        return [np.array([i]) for i in range(n_nodes)]
    evens = np.arange(0, n_nodes - (n_nodes % 2), 2)
    odds = np.arange(1, n_nodes - (n_nodes % 2), 2)
    groups = [evens, odds]
    if n_nodes % 2 == 1:
        groups.append(np.array([n_nodes - 1]))
    return groups


def gibbs_sweep(
    model: IsingModel,
    spins: np.ndarray,
    temperature: float,
    seed: SeedLike = None,
    order: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One full Gibbs sweep over a dense Ising model.

    Each spin is resampled from its conditional Boltzmann distribution
    at ``temperature``.  Returns a new spin array (input untouched).
    Temperature 0 degenerates to greedy (deterministic sign/threshold).
    """
    if temperature < 0:
        raise IsingError(f"temperature must be >= 0, got {temperature}")
    rng = spawn_rng(seed)
    s = model.validate_state(spins).copy()
    idx = np.arange(model.n_spins) if order is None else np.asarray(order)
    for i in idx:
        i = int(i)
        # Energy difference between σᵢ = up vs down state.
        field = 2.0 * float(model.couplings[i] @ s) + float(model.field[i])
        if model.convention == "pm1":
            # H(up) - H(down) = -2·field  → p(up) = 1/(1+exp(-2f/T))
            gap = 2.0 * field
        else:
            # H(1) - H(0) = -field       → p(1)  = 1/(1+exp(-f/T))
            gap = field
        if temperature == 0:
            take_up = gap > 0 or (gap == 0 and rng.random() < 0.5)
        else:
            # Stable sigmoid: naive 1/(1+exp(-gap/T)) overflows for
            # large |gap| or tiny T.
            p_up = stable_sigmoid(gap / temperature)
            take_up = rng.random() < p_up
        if model.convention == "pm1":
            s[i] = 1.0 if take_up else -1.0
        else:
            s[i] = 1.0 if take_up else 0.0
    return s
