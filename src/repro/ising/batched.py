"""Batched replica Gibbs engine: many chains, one vectorised sweep.

Anneals a whole batch of replicas of one :class:`IsingModel` in a
single numpy kernel per sweep.  Each replica keeps its own independent
``Generator`` stream (:func:`replica_rngs` derives them exactly the
way the serial kernel's ``spawn_rng`` does), and the sweep is
constructed so that **every replica's trajectory is bit-identical to
its own serial** :func:`repro.ising.gibbs.gibbs_sweep` **run** — the
batched engine is an accelerator, not a different sampler, and
``batch_size=1`` serial runs stay the exactness oracle.

Bit-exactness notes (what the kernel may and may not vectorise)
---------------------------------------------------------------
* The local field *must* be computed with the serial kernel's exact
  expression ``2.0 * float(J[i] @ s) + float(h[i])`` on a contiguous
  per-replica state vector.  BLAS matrix products reduce in a
  different order: on this platform ``J @ S`` for an
  ``(n_spins, batch)`` state matrix, ``J[i] @ S``, and even
  ``np.einsum('j,j->', J[i], s)`` all disagree bitwise with the serial
  ``ddot`` for generic inputs (measured: 98–100 % of random trials
  mismatch in at least one lane).  The kernel therefore keeps one
  contiguous ``(n_spins,)`` column per replica and loops the dot over
  replicas — byte-for-byte the serial call — while everything
  downstream of the field is vectorised across the batch.
* Conditional probabilities, acceptance draws, and spin updates are
  elementwise, so vectorising them across replicas is exact:
  ``stable_sigmoid`` on an array equals its per-element scalar value
  (pinned by a regression test), and at ``temperature > 0`` the
  per-replica uniform block ``rng.random(n_steps)`` consumes the PCG64
  stream identically to ``n_steps`` successive scalar draws (also
  pinned), so the stream state after a batched sweep matches the
  serial sweep's.
* At ``temperature == 0`` the greedy tie-break draws lazily — only the
  replicas with an exact tie at the visited spin consume a draw, in
  spin-visit order, exactly like the serial kernel.
* Group (checkerboard) updates: spins inside one group share no
  coupling, so the whole group is updated from the pre-group state in
  one vectorised step.  A zero coupling contributes exactly ``±0.0``
  to the field dot, which cannot change any partial sum, conditional
  probability (``-0.0 >= 0`` is true), or tie decision — so the result
  is bit-identical to the serial sweep over ``concatenate(groups)``.
  Independence is validated; overlapping groups raise.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import IsingError
from repro.ising.model import IsingModel
from repro.ising.numerics import stable_sigmoid
from repro.utils.rng import SeedLike, spawn_rng


def replica_rngs(seeds: Sequence[SeedLike]) -> List[np.random.Generator]:
    """One independent ``Generator`` per replica, serial-identical.

    Each entry is derived exactly like the serial kernel derives its
    stream from the same seed (``spawn_rng`` → ``default_rng`` →
    ``SeedSequence``), so replica ``r`` of a batched sweep consumes the
    *same* stream its own serial ``gibbs_sweep(..., seed=seeds[r])``
    run would.
    """
    return [spawn_rng(seed) for seed in seeds]


def _update_blocks(
    model: IsingModel,
    order: Optional[np.ndarray],
    groups: Optional[Sequence[np.ndarray]],
) -> List[np.ndarray]:
    """Normalise (order | groups) into a list of update blocks."""
    if groups is not None:
        if order is not None:
            raise IsingError("pass either order or groups, not both")
        blocks = [np.asarray(g, dtype=np.int64).ravel() for g in groups]
        seen = np.zeros(model.n_spins, dtype=bool)
        for block in blocks:
            if block.size == 0:
                continue
            if block.min() < 0 or block.max() >= model.n_spins:
                raise IsingError(
                    f"group index out of range for {model.n_spins} spins"
                )
            if seen[block].any():
                raise IsingError("groups must not overlap")
            seen[block] = True
            # A parallel block update is only exact when no two spins
            # of the block interact (chromatic independence).
            sub = model.couplings[np.ix_(block, block)]
            if np.any(sub != 0.0):
                raise IsingError(
                    "group contains coupled spins; parallel update "
                    "would not match the sequential sweep"
                )
        return blocks
    idx = (
        np.arange(model.n_spins, dtype=np.int64)
        if order is None
        else np.asarray(order, dtype=np.int64).ravel()
    )
    return [idx[k : k + 1] for k in range(idx.size)]


def batched_gibbs_sweep(
    model: IsingModel,
    states: np.ndarray,
    temperature: float,
    rngs: Sequence[np.random.Generator],
    order: Optional[np.ndarray] = None,
    groups: Optional[Sequence[np.ndarray]] = None,
) -> np.ndarray:
    """One Gibbs sweep over a batch of replicas.

    Parameters
    ----------
    model:
        The shared dense Ising model.
    states:
        ``(n_spins, batch)`` spin matrix — one replica per column.
    temperature:
        Annealing temperature; ``0`` degenerates to greedy with the
        serial kernel's lazy tie-break.
    rngs:
        One ``Generator`` per replica (see :func:`replica_rngs`); each
        is advanced exactly as its serial run would advance it.
    order:
        Optional flat spin visiting order (default ``0..n_spins-1``).
    groups:
        Optional chromatic update groups (mutually exclusive with
        ``order``): every group is updated in one vectorised step,
        bit-identical to the sequential sweep over
        ``concatenate(groups)`` because group members are validated to
        share no coupling.

    Returns
    -------
    ``(n_spins, batch)`` array of post-sweep spins (input untouched).
    """
    if temperature < 0:
        raise IsingError(f"temperature must be >= 0, got {temperature}")
    S = np.asarray(states, dtype=np.float64)
    if S.ndim != 2:
        raise IsingError(f"states must be (n_spins, batch), got {S.shape}")
    if S.shape[0] != model.n_spins:
        raise IsingError(
            f"states must have {model.n_spins} rows, got {S.shape[0]}"
        )
    batch = S.shape[1]
    rngs = list(rngs)
    if len(rngs) != batch:
        raise IsingError(
            f"need one rng per replica: {len(rngs)} rngs, batch {batch}"
        )
    blocks = _update_blocks(model, order, groups)
    n_steps = int(sum(block.size for block in blocks))
    # Contiguous per-replica columns: the field dot below is then the
    # byte-identical serial BLAS call (see module docstring).
    cols = [model.validate_state(S[:, r]).copy(order="C") for r in range(batch)]

    # T > 0 consumes exactly one uniform per visited spin, so the whole
    # sweep's draws can be taken as one block per replica (PCG64 block
    # draws equal successive scalar draws; pinned by regression test).
    draws = (
        np.stack([rng.random(n_steps) for rng in rngs])
        if temperature > 0 and n_steps > 0
        else np.empty((batch, 0))
    )

    J = model.couplings
    h = model.field
    pm1 = model.convention == "pm1"
    down = -1.0 if pm1 else 0.0
    step = 0
    for block in blocks:
        if block.size == 0:
            continue
        # Serial field expression per (spin, replica): bit-exactness
        # forbids batching this dot (BLAS reduction order differs).
        gap = np.empty((block.size, batch))
        for bj, i in enumerate(block):
            i = int(i)
            hi = float(h[i])
            ji = J[i]
            for r in range(batch):
                field = 2.0 * float(ji @ cols[r]) + hi
                gap[bj, r] = 2.0 * field if pm1 else field
        if temperature == 0:
            take_up = gap > 0.0
            ties = gap == 0.0
            if ties.any():
                # Lazy tie draws, per replica in spin-visit order —
                # exactly the serial kernel's stream consumption.
                for bj, r in zip(*np.nonzero(ties)):
                    take_up[bj, r] = rngs[r].random() < 0.5
        else:
            # Elementwise ops vectorise exactly; overflow to inf here
            # mirrors the serial kernel's silent Python-float overflow.
            with np.errstate(over="ignore"):
                p_up = stable_sigmoid(gap / temperature)
            u = draws[:, step : step + block.size].T
            take_up = u < p_up
        vals = np.where(take_up, 1.0, down)
        for r in range(batch):
            cols[r][block] = vals[:, r]
        step += block.size
    out = np.empty_like(S)
    for r in range(batch):
        out[:, r] = cols[r]
    return out
