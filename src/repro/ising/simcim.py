"""SimCIM-style mean-field Ising optimizer.

The coherent-Ising-machine simulation of Tiunov, Ulanov & Lvovsky
(Opt. Express 2019): each spin is relaxed to a continuous amplitude
``a_i ∈ [-1, 1]`` evolved by gradient-like mean-field dynamics

    a_i += dt · (p(t) · a_i + ζ · Σⱼ Jᵢⱼ aⱼ + ζ · hᵢ) + σ·√dt·ξ_i

with a pump ``p(t)`` ramping from below threshold (amplitudes decay)
to above (the Ising-aligned mode grows), Gaussian noise seeding the
symmetry breaking, and hard saturation at ``|a| = 1``.  ``sign(a)`` is
the Ising state.  Like the discrete simulated bifurcation solver in
:mod:`repro.maxcut.bifurcation`, every spin updates in parallel — the
same pitch as the paper's odd/even cluster updates — which is why both
are registered as serving backends next to the clustered CIM annealer.

Couplings follow the :class:`~repro.ising.model.IsingModel` convention
``H = -Σᵢⱼ Jᵢⱼ σᵢσⱼ - Σᵢ hᵢ σᵢ`` (double-counted sum), so descending
the energy means following ``+2ζ(Ja) + ζh``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import IsingError
from repro.ising.model import IsingModel
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class SimCIMParams:
    """Mean-field (SimCIM) dynamics parameters.

    Attributes
    ----------
    n_steps:
        Euler integration steps.
    dt:
        Time step.
    pump_start, pump_end:
        Linear pump ramp ``p(t)``; starts below threshold (negative:
        amplitudes decay) and ends above (amplitudes saturate).
    coupling_scale:
        Injection strength ζ; ``None`` uses the ``0.5/(σ_J·√n)``
        heuristic shared with the bifurcation solver.
    noise_sigma:
        Standard deviation of the per-step Gaussian noise that seeds
        the symmetry breaking (scaled by ``√dt``).
    """

    n_steps: int = 1000
    dt: float = 0.05
    pump_start: float = -2.0
    pump_end: float = 1.0
    coupling_scale: Optional[float] = None
    noise_sigma: float = 0.1

    def __post_init__(self) -> None:
        if self.n_steps < 1:
            raise IsingError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.dt <= 0:
            raise IsingError(f"dt must be > 0, got {self.dt}")
        if self.pump_end <= self.pump_start:
            raise IsingError(
                f"pump must ramp upward, got start={self.pump_start} "
                f"end={self.pump_end}"
            )
        if self.coupling_scale is not None and self.coupling_scale <= 0:
            raise IsingError("coupling_scale must be > 0 when given")
        if self.noise_sigma < 0:
            raise IsingError(
                f"noise_sigma must be >= 0, got {self.noise_sigma}"
            )


@dataclass
class SimCIMResult:
    """Result of one SimCIM relaxation."""

    spins: np.ndarray
    energy: float
    trace: List[Tuple[int, float]] = field(default_factory=list)


def simcim_optimize(
    model: IsingModel,
    *,
    params: Optional[SimCIMParams] = None,
    seed: SeedLike = None,
    record_every: int = 0,
) -> SimCIMResult:
    """Relax ``model`` (±1 convention) with SimCIM mean-field dynamics.

    Returns the best state seen: the sign pattern of the amplitudes is
    scored every ``record_every`` steps (and always at the end), and
    the lowest-energy snapshot wins.
    """
    if model.convention != "pm1":
        raise IsingError(
            f"SimCIM needs the pm1 spin convention, got {model.convention!r}"
        )
    if record_every < 0:
        raise IsingError(f"record_every must be >= 0, got {record_every}")
    params = params or SimCIMParams()
    rng = spawn_rng(seed)
    J = model.couplings
    h = model.field
    n = model.n_spins

    zeta = params.coupling_scale
    if zeta is None:
        sigma_j = float(np.sqrt((J**2).sum() / max(1, n * (n - 1))))
        zeta = 0.5 / (sigma_j * np.sqrt(n)) if sigma_j > 0 else 0.5

    amplitudes = np.zeros(n)
    best_spins = np.ones(n)
    best_energy = model.energy(best_spins)
    trace: List[Tuple[int, float]] = []
    pump_span = params.pump_end - params.pump_start
    noise_scale = params.noise_sigma * np.sqrt(params.dt)

    for step in range(params.n_steps):
        pump = params.pump_start + pump_span * step / params.n_steps
        # Descending H = -aJa - ha: the injection term is +2ζ(Ja) + ζh
        # (the double-counted convention contributes the factor 2).
        drive = pump * amplitudes + zeta * (2.0 * (J @ amplitudes) + h)
        amplitudes = amplitudes + params.dt * drive
        if noise_scale:
            amplitudes = amplitudes + noise_scale * rng.standard_normal(n)
        np.clip(amplitudes, -1.0, 1.0, out=amplitudes)

        if record_every and step % record_every == 0:
            spins = _spins_of(amplitudes)
            energy = model.energy(spins)
            trace.append((step, energy))
            if energy < best_energy:
                best_energy, best_spins = energy, spins

    spins = _spins_of(amplitudes)
    energy = model.energy(spins)
    if energy <= best_energy:
        best_energy, best_spins = energy, spins
    if record_every:
        trace.append((params.n_steps, best_energy))
    return SimCIMResult(spins=best_spins, energy=best_energy, trace=trace)


def _spins_of(amplitudes: np.ndarray) -> np.ndarray:
    """Sign pattern of the amplitudes (zeros break toward +1)."""
    spins = np.sign(amplitudes)
    spins[spins == 0] = 1.0
    return spins


def random_ising_model(
    n_spins: int,
    *,
    density: float = 0.5,
    coupling_sigma: float = 1.0,
    seed: SeedLike = None,
) -> IsingModel:
    """A random symmetric spin glass for benchmarks and the CLI.

    ``density`` is the fraction of (i, j) pairs with a non-zero
    Gaussian coupling of standard deviation ``coupling_sigma``; the
    diagonal is zero and the matrix is symmetrised.  Deterministic for
    a given seed.
    """
    if n_spins < 2:
        raise IsingError(f"n_spins must be >= 2, got {n_spins}")
    if not 0.0 < density <= 1.0:
        raise IsingError(f"density must be in (0, 1], got {density}")
    if coupling_sigma <= 0:
        raise IsingError(
            f"coupling_sigma must be > 0, got {coupling_sigma}"
        )
    rng = spawn_rng(seed)
    J = rng.normal(0.0, coupling_sigma, size=(n_spins, n_spins))
    if density < 1.0:
        J *= rng.random((n_spins, n_spins)) < density
    J = np.triu(J, k=1)
    J = J + J.T
    return IsingModel(J, convention="pm1")
