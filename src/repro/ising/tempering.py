"""Parallel tempering for the permutational Boltzmann machine.

The paper's PBM reference ([5], Bagherbeik et al.) pairs the swap-move
formulation with **parallel tempering**: R replicas anneal at different
fixed temperatures and periodically exchange configurations with the
Metropolis criterion

    P(swap replicas a, b) = min(1, exp((1/T_a − 1/T_b)(E_a − E_b)))

Hot replicas roam the landscape, cold replicas refine — exchanges let
good configurations migrate to low temperature.  This is the strongest
software baseline in the repository and is used by the extension bench
to show where the clustered CIM annealer stands against an
algorithmically richer (but O(N²)-spin) method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.ising.numerics import boltzmann_accept_probability
from repro.ising.pbm import PermutationState, swap_delta_energy
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import tour_length
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class TemperingParams:
    """Parameters for :func:`parallel_tempering_tsp`.

    Attributes
    ----------
    n_replicas:
        Number of temperature rungs.
    t_min, t_max:
        Temperature ladder endpoints, in units of the mean leg length;
        rungs are geometrically spaced (the standard choice).
    n_sweeps:
        Sweeps per replica; each sweep proposes ``n`` swap moves.
    exchange_every:
        Sweeps between neighbouring-replica exchange attempts.
    """

    n_replicas: int = 6
    t_min: float = 0.01
    t_max: float = 1.0
    n_sweeps: int = 200
    exchange_every: int = 5

    def __post_init__(self) -> None:
        if self.n_replicas < 2:
            raise ConfigError(f"n_replicas must be >= 2, got {self.n_replicas}")
        if not 0 < self.t_min < self.t_max:
            raise ConfigError("need 0 < t_min < t_max")
        if self.n_sweeps < 1:
            raise ConfigError(f"n_sweeps must be >= 1, got {self.n_sweeps}")
        if self.exchange_every < 1:
            raise ConfigError(
                f"exchange_every must be >= 1, got {self.exchange_every}"
            )

    def ladder(self) -> np.ndarray:
        """Geometric temperature ladder (ascending)."""
        return np.geomspace(self.t_min, self.t_max, self.n_replicas)


@dataclass
class TemperingResult:
    """Result of a parallel-tempering run."""

    tour: np.ndarray
    length: float
    exchange_attempts: int = 0
    exchanges_accepted: int = 0
    replica_lengths: List[float] = field(default_factory=list)

    @property
    def exchange_rate(self) -> float:
        """Fraction of attempted replica exchanges accepted."""
        return self.exchanges_accepted / max(1, self.exchange_attempts)


def parallel_tempering_tsp(
    instance: TSPInstance,
    params: Optional[TemperingParams] = None,
    seed: SeedLike = None,
    initial_tour: Optional[np.ndarray] = None,
) -> TemperingResult:
    """Solve a TSP with PBM swap moves under parallel tempering."""
    params = params or TemperingParams()
    rng = spawn_rng(seed)
    n = instance.n
    dist = instance.distance

    # Cold starts: independent random tours per replica.  Warm starts:
    # every replica shares the provided tour, decorrelated by a handful
    # of *adjacent* swaps — enough diversity to avoid lock-step
    # replicas, cheap enough that the chains can repair the damage.
    replicas = []
    for _ in range(params.n_replicas):
        if initial_tour is None:
            state = PermutationState(rng.permutation(n))
        else:
            state = PermutationState(np.asarray(initial_tour, dtype=np.int64))
            for _ in range(4):
                i = int(rng.integers(0, n))
                state.swap_positions(i, (i + 1) % n)
        replicas.append(state)
    lengths = np.array([tour_length(instance, r.order) for r in replicas])
    mean_leg = float(lengths.mean()) / n
    temps = params.ladder() * mean_leg

    attempts = accepted = 0
    best_tour = replicas[int(np.argmin(lengths))].order.copy()
    best_length = float(lengths.min())

    for sweep in range(params.n_sweeps):
        for r, state in enumerate(replicas):
            temp = temps[r]
            for _ in range(n):
                i, j = rng.integers(0, n, size=2)
                if i == j:
                    continue
                delta = swap_delta_energy(state, int(i), int(j), dist)
                if delta <= 0 or rng.random() < boltzmann_accept_probability(
                    delta, float(temp)
                ):
                    state.swap_positions(int(i), int(j))
                    lengths[r] += delta
        if (sweep + 1) % params.exchange_every == 0:
            # Attempt neighbour exchanges, alternating parity.
            start = (sweep // params.exchange_every) % 2
            for r in range(start, params.n_replicas - 1, 2):
                attempts += 1
                beta_diff = 1.0 / temps[r] - 1.0 / temps[r + 1]
                arg = beta_diff * (lengths[r] - lengths[r + 1])
                # min(1, exp(arg)) == boltzmann accept with gap -arg, T=1.
                if arg >= 0 or rng.random() < boltzmann_accept_probability(
                    -float(arg), 1.0
                ):
                    replicas[r], replicas[r + 1] = replicas[r + 1], replicas[r]
                    lengths[r], lengths[r + 1] = lengths[r + 1], lengths[r]
                    accepted += 1
        cold = int(np.argmin(temps))
        if lengths[cold] < best_length:
            best_length = float(lengths[cold])
            best_tour = replicas[cold].order.copy()

    # Re-derive exactly and keep the best of final replicas too.
    final_lengths = [tour_length(instance, r.order) for r in replicas]
    k = int(np.argmin(final_lengths))
    if final_lengths[k] < best_length:
        best_length = float(final_lengths[k])
        best_tour = replicas[k].order.copy()
    return TemperingResult(
        tour=best_tour,
        length=float(tour_length(instance, best_tour)),
        exchange_attempts=attempts,
        exchanges_accepted=accepted,
        replica_lengths=[float(x) for x in final_lengths],
    )
