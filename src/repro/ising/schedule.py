"""Annealing schedules.

Two families:

* **Temperature schedules** for software Metropolis/Gibbs annealing
  (geometric and linear), used by CPU baselines;
* **the V_DD schedule** of Sec. V: the supply voltage applied to the
  noisy LSB SRAM cells starts at 300 mV and is raised by 40 mV every
  50 iterations up to 580 mV, after which all bits run at nominal V_DD
  (no noise).  Each V_DD step is also where weights are written back
  (error "recovery"), and the number of noisy LSBs can shrink with the
  voltage for finer noise-granularity control (Sec. IV-B procedure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError


@dataclass(frozen=True)
class GeometricTemperatureSchedule:
    """T(k) = t_start · (t_end/t_start)^(k/(n-1)) for k in [0, n)."""

    t_start: float
    t_end: float
    n_steps: int

    def __post_init__(self) -> None:
        if self.t_start <= 0 or self.t_end <= 0:
            raise ConfigError("temperatures must be > 0")
        if self.t_end > self.t_start:
            raise ConfigError("t_end must be <= t_start")
        if self.n_steps < 1:
            raise ConfigError("n_steps must be >= 1")

    def temperature(self, step: int) -> float:
        """Temperature at iteration ``step`` (clamped to the range)."""
        k = min(max(step, 0), self.n_steps - 1)
        if self.n_steps == 1:
            return self.t_start
        ratio = self.t_end / self.t_start
        return self.t_start * ratio ** (k / (self.n_steps - 1))


@dataclass(frozen=True)
class LinearTemperatureSchedule:
    """T(k) linearly interpolated from t_start to t_end."""

    t_start: float
    t_end: float
    n_steps: int

    def __post_init__(self) -> None:
        if self.t_start <= 0 or self.t_end < 0:
            raise ConfigError("t_start must be > 0 and t_end >= 0")
        if self.t_end > self.t_start:
            raise ConfigError("t_end must be <= t_start")
        if self.n_steps < 1:
            raise ConfigError("n_steps must be >= 1")

    def temperature(self, step: int) -> float:
        """Temperature at iteration ``step`` (clamped to the range)."""
        k = min(max(step, 0), self.n_steps - 1)
        if self.n_steps == 1:
            return self.t_start
        frac = k / (self.n_steps - 1)
        return self.t_start + (self.t_end - self.t_start) * frac


@dataclass(frozen=True)
class VddSchedule:
    """The paper's noisy-SRAM annealing schedule (Sec. IV-B / Sec. V).

    Attributes
    ----------
    vdd_start_mv, vdd_end_mv, vdd_step_mv:
        Supply-voltage ramp applied to the noisy LSBs.  Paper values:
        300 → 580 mV in 40 mV increments.
    iterations_per_step:
        Iterations between V_DD increments; this is also the write-back
        period (weights refreshed at each step boundary).  Paper: 50.
    total_iterations:
        Total update iterations per annealing level.  Paper: 400.
    noisy_lsbs_start:
        Number of LSBs under reduced V_DD at the first step; one fewer
        bit is noisy after each step (floor 0), per the Sec. IV-B
        procedure ("6 bits ... then 5 bits ...").
    weight_bits:
        Weight precision (8-bit in the paper).
    lsb_countdown:
        When True (paper behaviour) the noisy-LSB count decrements per
        step; False pins it at ``noisy_lsbs_start`` — used by the
        constant-noise ablation, where nothing may anneal.
    """

    vdd_start_mv: float = 300.0
    vdd_end_mv: float = 580.0
    vdd_step_mv: float = 40.0
    iterations_per_step: int = 50
    total_iterations: int = 400
    noisy_lsbs_start: int = 6
    weight_bits: int = 8
    lsb_countdown: bool = True

    def __post_init__(self) -> None:
        if self.vdd_step_mv <= 0:
            raise ConfigError("vdd_step_mv must be > 0")
        if self.vdd_end_mv < self.vdd_start_mv:
            raise ConfigError("vdd_end_mv must be >= vdd_start_mv")
        if self.iterations_per_step < 1 or self.total_iterations < 1:
            raise ConfigError("iteration counts must be >= 1")
        if not 0 <= self.noisy_lsbs_start <= self.weight_bits:
            raise ConfigError("noisy_lsbs_start must be in [0, weight_bits]")
        if self.weight_bits < 1:
            raise ConfigError("weight_bits must be >= 1")

    @property
    def n_steps(self) -> int:
        """Number of annealing steps (write-back periods)."""
        return -(-self.total_iterations // self.iterations_per_step)

    def step_of(self, iteration: int) -> int:
        """Annealing step index containing ``iteration``."""
        if not 0 <= iteration < self.total_iterations:
            raise ConfigError(
                f"iteration {iteration} outside [0, {self.total_iterations})"
            )
        return iteration // self.iterations_per_step

    def vdd_mv(self, step: int) -> float:
        """Noisy-LSB supply voltage (mV) during annealing step ``step``."""
        v = self.vdd_start_mv + step * self.vdd_step_mv
        return min(v, self.vdd_end_mv)

    def noisy_lsbs(self, step: int) -> int:
        """How many LSBs run at reduced V_DD during ``step``."""
        if not self.lsb_countdown:
            return self.noisy_lsbs_start
        return max(0, self.noisy_lsbs_start - step)

    def is_writeback_iteration(self, iteration: int) -> bool:
        """True at step boundaries, where correct weights are rewritten."""
        return iteration % self.iterations_per_step == 0

    def vdd_trace(self) -> List[float]:
        """V_DD (mV) per step, e.g. [300, 340, ..., 580] for defaults."""
        return [self.vdd_mv(s) for s in range(self.n_steps)]
