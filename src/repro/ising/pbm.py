"""Permutational-Boltzmann-machine (PBM) moves.

Sec. II-A: the two-way one-hot penalty of Eq. (3) can be avoided by
only ever proposing *swap* moves — four spins (σ_ik, σ_il, σ_jk, σ_jl)
updated together so that the state stays a valid permutation.  The
energy difference of a swap is then just the change in the objective
(tour length) term:

    ΔH = H(σ'_il) + H(σ'_jk) − H(σ_ik) − H(σ_jl)

which the hardware evaluates with four MAC cycles (two before, two
after the swap).  :class:`PermutationState` maintains the permutation
and its inverse; :func:`swap_delta_energy` computes ΔH directly from
city distances — the software-exact value the CIM computation (with
quantised, possibly noisy weights) approximates.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import IsingError
from repro.tsp.tour import validate_tour

DistanceFn = Callable[[int, int], float]


class PermutationState:
    """A permutation state with O(1) swap and inverse lookup.

    ``order[i]`` is the city visited at position ``i``;
    ``position[k]`` is the position of city ``k``.
    """

    def __init__(self, order: np.ndarray) -> None:
        self._order = validate_tour(np.asarray(order), None).copy()
        n = self._order.size
        self._position = np.empty(n, dtype=np.int64)
        self._position[self._order] = np.arange(n)

    @property
    def n(self) -> int:
        """Number of positions (= cities)."""
        return int(self._order.size)

    @property
    def order(self) -> np.ndarray:
        """Position → city array (live view; treat as read-only)."""
        return self._order

    @property
    def position(self) -> np.ndarray:
        """City → position array (live view; treat as read-only)."""
        return self._position

    def city_at(self, pos: int) -> int:
        """City visited at position ``pos`` (cyclic)."""
        return int(self._order[pos % self.n])

    def swap_positions(self, i: int, j: int) -> None:
        """Exchange the cities at positions ``i`` and ``j`` (the 4-spin move)."""
        n = self.n
        i %= n
        j %= n
        if i == j:
            raise IsingError("swap positions must differ")
        ci, cj = self._order[i], self._order[j]
        self._order[i], self._order[j] = cj, ci
        self._position[ci], self._position[cj] = j, i

    def to_spins(self) -> np.ndarray:
        """Flat {0,1} σ_ik spin vector of this permutation."""
        from repro.ising.tsp_mapping import tour_to_spins

        return tour_to_spins(self._order)

    def copy(self) -> "PermutationState":
        """Deep copy of the state."""
        return PermutationState(self._order)


def swap_delta_energy(
    state: PermutationState,
    i: int,
    j: int,
    dist: DistanceFn,
) -> float:
    """Objective-energy change of swapping positions ``i`` and ``j``.

    ``dist(k, l)`` supplies city-pair distances — in the hardware path
    this closure reads *quantised, noise-corrupted* weights out of the
    CIM array, which is exactly how the paper injects annealing noise.

    Handles the cyclically-adjacent cases (j = i±1 mod n) where the
    naive 8-edge formula double-counts the shared edge.
    """
    n = state.n
    i %= n
    j %= n
    if i == j:
        raise IsingError("swap positions must differ")
    ci, cj = state.city_at(i), state.city_at(j)

    # Cyclic adjacency: make i the predecessor of j when adjacent.
    if (i + 1) % n == j:
        pred, succ = state.city_at(i - 1), state.city_at(j + 1)
        before = dist(pred, ci) + dist(ci, cj) + dist(cj, succ)
        after = dist(pred, cj) + dist(cj, ci) + dist(ci, succ)
        return after - before
    if (j + 1) % n == i:
        pred, succ = state.city_at(j - 1), state.city_at(i + 1)
        before = dist(pred, cj) + dist(cj, ci) + dist(ci, succ)
        after = dist(pred, ci) + dist(ci, cj) + dist(cj, succ)
        return after - before

    ip, iN = state.city_at(i - 1), state.city_at(i + 1)
    jp, jN = state.city_at(j - 1), state.city_at(j + 1)
    before = dist(ip, ci) + dist(ci, iN) + dist(jp, cj) + dist(cj, jN)
    after = dist(ip, cj) + dist(cj, iN) + dist(jp, ci) + dist(ci, jN)
    return after - before
