"""Dense penalty-formulation TSP annealing (the road not taken).

Sec. II-A notes that the one-hot penalty terms of Eq. (3) can be
avoided "through permutational Boltzmann machine [5]" — every solver in
this repository therefore uses 4-spin swap moves that keep states
feasible by construction.  This module implements the alternative the
paper rejects: single-spin Gibbs annealing directly on the dense
N²-spin model with b/c penalties, so the design choice can be measured
instead of asserted.

What the comparison shows (see ``tests/ising/test_dense_annealer.py``):

* the dense chain spends most of its time fighting the constraints —
  at practical penalty strengths it frequently ends in *infeasible*
  states that need repair;
* even when feasible, tour quality lags the swap-move solver at equal
  sweep budgets;
* and it needs N² spins and N⁴ couplings to begin with, which is the
  scalability wall of Fig. 1.

Only practical for toy sizes (the dense model is O(N⁴) memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.ising.gibbs import gibbs_sweep
from repro.ising.schedule import GeometricTemperatureSchedule
from repro.ising.tsp_mapping import (
    TSPIsingMapping,
    build_tsp_ising,
    decode_spins_to_tour,
)
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import tour_length
from repro.utils.deprecation import merge_legacy_args
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class DenseTSPAnnealParams:
    """Tuning of the dense penalty-formulation anneal.

    The keyword-only configuration object :func:`anneal_dense_tsp`
    takes (API 1.3; the loose ``n_sweeps=...`` keywords are
    deprecated, see ``docs/serving.md``).
    """

    #: Full Gibbs sweeps over all N² spins.
    n_sweeps: int = 300
    #: Geometric ramp in units of the mean edge weight.
    t_start: float = 2.0
    t_end: float = 0.02
    #: Multiplier on the default ``b = c = 2·max(W)`` penalties —
    #: exposes the classic tension: weak penalties yield infeasible
    #: states, strong penalties freeze the objective.
    penalty_scale: float = 1.0
    #: Record the model energy every this many sweeps (0 = never).
    record_every: int = 0

    def __post_init__(self) -> None:
        if self.n_sweeps < 1:
            raise ConfigError(f"n_sweeps must be >= 1, got {self.n_sweeps}")
        if self.penalty_scale <= 0:
            raise ConfigError(
                f"penalty_scale must be > 0, got {self.penalty_scale}"
            )
        if self.t_start <= 0 or self.t_end <= 0 or self.t_end > self.t_start:
            raise ConfigError("need 0 < t_end <= t_start")
        if self.record_every < 0:
            raise ConfigError(
                f"record_every must be >= 0, got {self.record_every}"
            )


@dataclass
class DenseAnnealResult:
    """Result of a dense penalty-formulation anneal."""

    tour: np.ndarray
    length: float
    feasible: bool            # was the raw spin state a permutation?
    repaired: bool            # did decoding need the greedy repair?
    final_energy: float
    trace: List[Tuple[int, float]]


#: Positional order of the retired pre-1.3 ``anneal_dense_tsp`` form.
_LEGACY_ANNEAL_ORDER = (
    "n_sweeps",
    "t_start",
    "t_end",
    "penalty_scale",
    "seed",
    "record_every",
    "mapping",
)


def anneal_dense_tsp(
    instance: TSPInstance,
    *legacy_args: Any,
    params: Optional[DenseTSPAnnealParams] = None,
    seed: SeedLike = None,
    mapping: Optional[TSPIsingMapping] = None,
    **legacy_kwargs: Any,
) -> DenseAnnealResult:
    """Anneal the full Eq. (3) model with single-spin Gibbs sweeps.

    API (1.3): tuning goes through the keyword-only ``params``
    dataclass; ``seed`` (the chain seed) and ``mapping`` (a prebuilt
    :class:`~repro.ising.tsp_mapping.TSPIsingMapping`, rebuilt from
    the instance when omitted) are per-call state and stay direct
    keywords::

        anneal_dense_tsp(instance,
                         params=DenseTSPAnnealParams(n_sweeps=600),
                         seed=3)

    ``instance`` must be small — the dense model refuses N > 64.  The
    pre-1.3 loose form (``anneal_dense_tsp(instance, n_sweeps=600,
    penalty_scale=2.0, ...)``) still works for exactly one release
    behind a :class:`DeprecationWarning` and is removed in 1.4
    (``docs/serving.md``, *Deprecation timeline*).
    """
    if legacy_args or legacy_kwargs:
        if params is not None:
            raise TypeError(
                "anneal_dense_tsp() takes either params= or the "
                "deprecated loose tuning arguments, not both"
            )
        merged = merge_legacy_args(
            "anneal_dense_tsp",
            _LEGACY_ANNEAL_ORDER,
            legacy_args,
            legacy_kwargs,
            params_hint="params=DenseTSPAnnealParams(...)",
            since="1.3",
            removal="1.4",
        )
        seed = merged.pop("seed", seed)
        mapping = merged.pop("mapping", mapping)
        params = DenseTSPAnnealParams(**merged)
    p = params if params is not None else DenseTSPAnnealParams()
    n_sweeps = p.n_sweeps
    t_start, t_end = p.t_start, p.t_end
    penalty_scale, record_every = p.penalty_scale, p.record_every
    rng = spawn_rng(seed)
    if mapping is None:
        w_max = float(instance.distance_matrix().max())
        mapping = build_tsp_ising(
            instance,
            b=2.0 * w_max * penalty_scale,
            c=2.0 * w_max * penalty_scale,
        )
    model = mapping.to_ising_model()
    n = instance.n

    # Start from a random *feasible* assignment — the kindest possible
    # initialisation for the penalty formulation.
    spins = np.zeros(n * n)
    for order, city in enumerate(rng.permutation(n)):
        spins[order * n + int(city)] = 1.0

    mean_w = float(instance.distance_matrix().mean())
    schedule = GeometricTemperatureSchedule(
        t_start * mean_w, t_end * mean_w, n_sweeps
    )
    trace: List[Tuple[int, float]] = []
    for sweep in range(n_sweeps):
        temp = schedule.temperature(sweep)
        if record_every and sweep % record_every == 0:
            trace.append((sweep, mapping.energy(spins)))
        order = rng.permutation(n * n)
        spins = gibbs_sweep(model, spins, temp, seed=rng, order=order)

    final_energy = mapping.energy(spins)
    if record_every:
        trace.append((n_sweeps, final_energy))
    tour, feasible = decode_spins_to_tour(spins, n, strict=False)
    return DenseAnnealResult(
        tour=tour,
        length=tour_length(instance, tour),
        feasible=feasible,
        repaired=not feasible,
        final_energy=final_energy,
        trace=trace,
    )
