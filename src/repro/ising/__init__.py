"""Ising-model substrate.

Implements the paper's Sec. II background from scratch:

* :class:`IsingModel` — spins, couplings ``J``, field ``h``, the
  Hamiltonian of Eq. (1) and local energies of Eq. (2);
* :func:`build_tsp_ising` — the Eq. (3) TSP-to-Ising mapping with the
  ``a, b, c`` objective/penalty hyper-parameters;
* permutational-Boltzmann-machine swap moves (4 spins at once) that
  keep the two-way one-hot constraints satisfied by construction;
* sequential and chromatic-parallel Gibbs sweeps;
* annealing schedules (temperature for software SA, V_DD for the
  noisy-SRAM annealer);
* a software SA Ising solver used as the small-problem baseline.
"""

from repro.ising.batched import batched_gibbs_sweep, replica_rngs
from repro.ising.dense_annealer import (
    DenseAnnealResult,
    DenseTSPAnnealParams,
    anneal_dense_tsp,
)
from repro.ising.gibbs import chromatic_groups, gibbs_sweep
from repro.ising.simcim import (
    SimCIMParams,
    SimCIMResult,
    random_ising_model,
    simcim_optimize,
)
from repro.ising.tempering import (
    TemperingParams,
    TemperingResult,
    parallel_tempering_tsp,
)
from repro.ising.model import IsingModel
from repro.ising.numerics import boltzmann_accept_probability, stable_sigmoid
from repro.ising.pbm import PermutationState, swap_delta_energy
from repro.ising.schedule import (
    GeometricTemperatureSchedule,
    LinearTemperatureSchedule,
    VddSchedule,
)
from repro.ising.solver import IsingSAResult, solve_tsp_ising
from repro.ising.tsp_mapping import (
    TSPIsingMapping,
    build_tsp_ising,
    decode_spins_to_tour,
    tour_to_spins,
)

__all__ = [
    "IsingModel",
    "build_tsp_ising",
    "TSPIsingMapping",
    "tour_to_spins",
    "decode_spins_to_tour",
    "PermutationState",
    "swap_delta_energy",
    "gibbs_sweep",
    "batched_gibbs_sweep",
    "replica_rngs",
    "chromatic_groups",
    "stable_sigmoid",
    "boltzmann_accept_probability",
    "GeometricTemperatureSchedule",
    "LinearTemperatureSchedule",
    "VddSchedule",
    "solve_tsp_ising",
    "IsingSAResult",
    "anneal_dense_tsp",
    "DenseAnnealResult",
    "DenseTSPAnnealParams",
    "parallel_tempering_tsp",
    "TemperingParams",
    "TemperingResult",
    "SimCIMParams",
    "SimCIMResult",
    "simcim_optimize",
    "random_ising_model",
]
