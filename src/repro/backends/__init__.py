"""Pluggable solver backends behind the serving stack.

One request API, many solvers: a :class:`SolverBackend` is a compiled
``(problem, config) → plan → per-seed solve`` pipeline registered
under a string name, and ``SolveRequest(backend="...")`` picks one per
request — through :func:`repro.annealer.batch.solve_ensemble`, the
async :class:`~repro.runtime.AnnealingService`, the HTTP gateway, and
the CLI alike.  First registrants:

* ``cluster-cim`` — the paper's clustered CIM annealer (TSP; default;
  bit-identical to the pre-registry dispatch path);
* ``dense-ising`` — the dense Eq. (3) Gibbs annealer (TSP, N ≤ 64);
* ``maxcut-sb`` — discrete simulated bifurcation (Max-Cut graphs);
* ``simcim`` — SimCIM mean-field relaxation (±1 Ising models).

See ``docs/backends.md`` for the interface tour and the
how-to-add-a-backend guide.
"""

from repro.backends.base import (
    BackendCapabilities,
    BackendPlan,
    BackendRunResult,
    ProblemLike,
    SolverBackend,
    problem_kind,
)
from repro.backends.registry import (
    DEFAULT_BACKEND,
    list_backends,
    register_backend,
    resolve_backend,
)

# Importing the registrant modules is what populates the registry.
from repro.backends import cluster_cim as _cluster_cim  # noqa: F401
from repro.backends import dense_ising as _dense_ising  # noqa: F401
from repro.backends import maxcut_sb as _maxcut_sb  # noqa: F401
from repro.backends import simcim as _simcim  # noqa: F401

__all__ = [
    "BackendCapabilities",
    "BackendPlan",
    "BackendRunResult",
    "DEFAULT_BACKEND",
    "ProblemLike",
    "SolverBackend",
    "list_backends",
    "problem_kind",
    "register_backend",
    "resolve_backend",
]
