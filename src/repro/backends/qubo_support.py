"""Shared QUBO-plan plumbing for the registered solver backends.

Every backend that accepts the ``qubo`` problem kind goes through the
same three hooks: the worker-side integrity gate (recompute the energy
from the bits), the quality reference (deterministic seeded greedy
descent, the QUBO analogue of the TSP nearest-neighbour baseline), and
the human-readable decode (bits + energy + the op-count totals the
instrumented kernels attach).  Keeping them here means a new backend
adds QUBO support with three one-line delegations — see
``docs/backends.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

import numpy as np

from repro.runtime.telemetry import RunResultLike

if TYPE_CHECKING:
    from repro.problems.qubo import QUBOProblem


def validate_qubo_result(
    problem: "QUBOProblem", result: RunResultLike
) -> None:
    """Integrity gate: the reported energy must match the bits."""
    from repro.errors import ReproError
    from repro.runtime.faults import ResultIntegrityError

    try:
        energy = problem.energy(np.asarray(result.tour, dtype=np.float64))
    except ReproError as exc:
        raise ResultIntegrityError(f"corrupted bits: {exc}") from exc
    if abs(energy - result.length) > max(1e-6, 1e-9 * abs(energy)):
        raise ResultIntegrityError(
            f"corrupted result: reported energy {result.length} does "
            f"not match recomputed energy {energy}"
        )


def qubo_reference(problem: "QUBOProblem", seed: int) -> float:
    """Greedy-descent energy — the ``optimal_ratio`` denominator."""
    from repro.problems.solvers import greedy_qubo_descent

    _, energy = greedy_qubo_descent(problem, seed=int(seed))
    return float(energy)


def decode_qubo_result(
    backend_name: str, result: RunResultLike
) -> Dict[str, Any]:
    """Human-readable view of one solved QUBO seed."""
    decoded: Dict[str, Any] = {
        "backend": backend_name,
        "bits": [int(v) for v in result.tour],
        "energy": float(result.length),
    }
    ops = getattr(result, "ops", None)
    if ops:
        decoded["ops"] = {k: int(v) for k, v in ops.items()}
    return decoded
