"""The default backend: the paper's clustered CIM annealer.

Thin adapter only — the ensemble executor keeps dispatching default
requests through its original ``_solve_one`` worker path (bit-identical
to every pre-registry release, and what the test suite monkeypatches),
so this class exists to give the default the same capability surface,
reference, and integrity gate as every other registrant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.backends.base import (
    BackendCapabilities,
    BackendPlan,
    ProblemLike,
    SolverBackend,
)
from repro.backends.registry import DEFAULT_BACKEND, register_backend
from repro.runtime.telemetry import RunResultLike

if TYPE_CHECKING:
    from repro.annealer.config import AnnealerConfig


@register_backend(DEFAULT_BACKEND)
class ClusterCIMBackend(SolverBackend):
    """Hierarchical clustered annealing on noisy-SRAM digital CIM."""

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=DEFAULT_BACKEND,
            problem_kinds=("tsp",),
            batchable=True,
            accepts_config=True,
            description=(
                "clustered CIM annealer (the paper's solver; default)"
            ),
        )

    def compile(
        self, problem: ProblemLike, config: Optional["AnnealerConfig"]
    ) -> BackendPlan:
        from repro.annealer.config import AnnealerConfig

        self._check_kind(problem)
        return BackendPlan(
            backend=DEFAULT_BACKEND,
            problem=problem,
            config=config if config is not None else AnnealerConfig(),
        )

    def solve(self, plan: BackendPlan, seed: int) -> RunResultLike:
        # Same worker function the executor's default path uses, so a
        # registry-routed solve stays bit-identical to a direct one.
        from repro.runtime.executor import _solve_one
        from repro.tsp.instance import TSPInstance

        assert isinstance(plan.problem, TSPInstance)
        assert plan.config is not None
        result: RunResultLike = _solve_one(plan.problem, plan.config, seed)
        return result

    def validate_result(
        self, problem: ProblemLike, result: RunResultLike
    ) -> None:
        from repro.runtime.faults import validate_result
        from repro.tsp.instance import TSPInstance

        assert isinstance(problem, TSPInstance)
        validate_result(problem, result)

    def reference(self, problem: ProblemLike, seed: int) -> float:
        from repro.tsp.instance import TSPInstance
        from repro.tsp.reference import reference_length

        assert isinstance(problem, TSPInstance)
        return float(reference_length(problem, seed=int(seed)))

    def decode(self, result: RunResultLike) -> Dict[str, Any]:
        return {
            "backend": DEFAULT_BACKEND,
            "tour": [int(c) for c in result.tour],
            "length": float(result.length),
        }
