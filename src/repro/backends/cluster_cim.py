"""The default backend: the paper's clustered CIM annealer.

Thin adapter only — the ensemble executor keeps dispatching default
TSP requests through its original ``_solve_one`` worker path
(bit-identical to every pre-registry release, and what the test suite
monkeypatches), so this class exists to give the default the same
capability surface, reference, and integrity gate as every other
registrant.  Compiled QUBO plans (graph coloring, knapsack, Max-SAT —
:mod:`repro.problems`) anneal with the op-counted chromatic-parallel
Gibbs kernel, the same odd/even independent-set update the clustered
hardware path uses; those flow through the executor's registry route.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.backends.base import (
    BackendCapabilities,
    BackendPlan,
    ProblemLike,
    SolverBackend,
)
from repro.backends.registry import DEFAULT_BACKEND, register_backend
from repro.runtime.telemetry import RunResultLike

if TYPE_CHECKING:
    from repro.annealer.config import AnnealerConfig
    from repro.problems.qubo import QUBOProblem


def _solve_qubo_chromatic(
    problem: "QUBOProblem", seed: int
) -> RunResultLike:
    """One op-counted chromatic-Gibbs anneal (module-level: RL003)."""
    import numpy as np

    from repro.backends.base import BackendRunResult
    from repro.problems.solvers import anneal_qubo_chromatic
    from repro.runtime.telemetry import Stopwatch

    watch = Stopwatch()
    outcome = anneal_qubo_chromatic(problem, seed=int(seed))
    return BackendRunResult(
        tour=np.asarray(outcome.bits, dtype=np.int64),
        length=float(outcome.energy),
        wall_time_s=watch.elapsed_s(),
        ops=outcome.history.final_totals(),
        history=outcome.history,
    )


@register_backend(DEFAULT_BACKEND)
class ClusterCIMBackend(SolverBackend):
    """Hierarchical clustered annealing on noisy-SRAM digital CIM."""

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name=DEFAULT_BACKEND,
            problem_kinds=("tsp", "qubo"),
            batchable=True,
            accepts_config=True,
            description=(
                "clustered CIM annealer (the paper's solver; default)"
            ),
        )

    def compile(
        self, problem: ProblemLike, config: Optional["AnnealerConfig"]
    ) -> BackendPlan:
        from repro.annealer.config import AnnealerConfig
        from repro.errors import AnnealerError

        kind = self._check_kind(problem)
        if kind == "qubo":
            # The AnnealerConfig describes the clustered TSP pipeline;
            # QUBO plans run the chromatic Gibbs kernel instead.
            if config is not None:
                raise AnnealerError(
                    "backend 'cluster-cim' does not accept an "
                    "AnnealerConfig for qubo problems"
                )
            return BackendPlan(backend=DEFAULT_BACKEND, problem=problem)
        return BackendPlan(
            backend=DEFAULT_BACKEND,
            problem=problem,
            config=config if config is not None else AnnealerConfig(),
        )

    def solve(self, plan: BackendPlan, seed: int) -> RunResultLike:
        from repro.problems.qubo import QUBOProblem

        if isinstance(plan.problem, QUBOProblem):
            return _solve_qubo_chromatic(plan.problem, seed)
        # Same worker function the executor's default path uses, so a
        # registry-routed solve stays bit-identical to a direct one.
        from repro.runtime.executor import _solve_one
        from repro.tsp.instance import TSPInstance

        assert isinstance(plan.problem, TSPInstance)
        assert plan.config is not None
        result: RunResultLike = _solve_one(plan.problem, plan.config, seed)
        return result

    def validate_result(
        self, problem: ProblemLike, result: RunResultLike
    ) -> None:
        from repro.backends.qubo_support import validate_qubo_result
        from repro.problems.qubo import QUBOProblem
        from repro.runtime.faults import validate_result
        from repro.tsp.instance import TSPInstance

        if isinstance(problem, QUBOProblem):
            validate_qubo_result(problem, result)
            return
        assert isinstance(problem, TSPInstance)
        validate_result(problem, result)

    def reference(self, problem: ProblemLike, seed: int) -> float:
        from repro.backends.qubo_support import qubo_reference
        from repro.problems.qubo import QUBOProblem
        from repro.tsp.instance import TSPInstance
        from repro.tsp.reference import reference_length

        if isinstance(problem, QUBOProblem):
            return qubo_reference(problem, seed)
        assert isinstance(problem, TSPInstance)
        return float(reference_length(problem, seed=int(seed)))

    def decode(self, result: RunResultLike) -> Dict[str, Any]:
        from repro.backends.qubo_support import decode_qubo_result

        if getattr(result, "history", None) is not None:
            return decode_qubo_result(DEFAULT_BACKEND, result)
        return {
            "backend": DEFAULT_BACKEND,
            "tour": [int(c) for c in result.tour],
            "length": float(result.length),
        }
