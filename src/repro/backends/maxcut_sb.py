"""Backend adapter for the Max-Cut simulated-bifurcation solver.

Wraps :func:`repro.maxcut.bifurcation.simulated_bifurcation_maxcut`
behind the :class:`~repro.backends.base.SolverBackend` interface.
Max-Cut is a *maximisation* problem while the ensemble runtime ranks
by minimised ``length``, so the adapter scores ``length = -cut`` and
references ``-greedy_cut``: the optimal ratio then reads as the
(positive) cut-over-greedy quality, > 1.0 when SB beats greedy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from repro.backends.base import (
    BackendCapabilities,
    BackendPlan,
    BackendRunResult,
    ProblemLike,
    SolverBackend,
)
from repro.backends.registry import register_backend
from repro.runtime.telemetry import RunResultLike, Stopwatch

if TYPE_CHECKING:
    from repro.annealer.config import AnnealerConfig


@register_backend("maxcut-sb")
class MaxCutBifurcationBackend(SolverBackend):
    """Discrete simulated bifurcation on Max-Cut graphs."""

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="maxcut-sb",
            problem_kinds=("maxcut",),
            batchable=False,
            accepts_config=False,
            description="discrete simulated bifurcation (Max-Cut graphs)",
        )

    def compile(
        self, problem: ProblemLike, config: Optional["AnnealerConfig"]
    ) -> BackendPlan:
        self._check_kind(problem)
        return BackendPlan(backend="maxcut-sb", problem=problem)

    def solve(self, plan: BackendPlan, seed: int) -> RunResultLike:
        from repro.maxcut.bifurcation import simulated_bifurcation_maxcut
        from repro.maxcut.problem import MaxCutProblem

        assert isinstance(plan.problem, MaxCutProblem)
        watch = Stopwatch()
        sb = simulated_bifurcation_maxcut(plan.problem, seed=int(seed))
        return BackendRunResult(
            tour=np.asarray(sb.spins, dtype=np.int64),
            length=-float(sb.cut_value),
            wall_time_s=watch.elapsed_s(),
        )

    def validate_result(
        self, problem: ProblemLike, result: RunResultLike
    ) -> None:
        from repro.errors import ReproError
        from repro.maxcut.problem import MaxCutProblem
        from repro.runtime.faults import ResultIntegrityError

        assert isinstance(problem, MaxCutProblem)
        try:
            cut = problem.cut_value(np.asarray(result.tour, dtype=np.float64))
        except ReproError as exc:
            raise ResultIntegrityError(f"corrupted spins: {exc}") from exc
        if abs(-cut - result.length) > max(1e-6, 1e-9 * abs(cut)):
            raise ResultIntegrityError(
                f"corrupted result: reported objective {result.length} "
                f"does not match recomputed cut {-cut}"
            )

    def reference(self, problem: ProblemLike, seed: int) -> float:
        from repro.maxcut.problem import MaxCutProblem
        from repro.maxcut.solver import greedy_maxcut

        assert isinstance(problem, MaxCutProblem)
        # Negated like the objective, so ratio = cut / greedy_cut.
        return -float(greedy_maxcut(problem, seed=int(seed)).cut_value)

    def decode(self, result: RunResultLike) -> Dict[str, Any]:
        return {
            "backend": "maxcut-sb",
            "spins": [int(s) for s in result.tour],
            "cut_value": -float(result.length),
        }
