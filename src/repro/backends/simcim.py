"""Backend adapter for the SimCIM mean-field optimizer.

Wraps :func:`repro.ising.simcim.simcim_optimize` behind the
:class:`~repro.backends.base.SolverBackend` interface: general ±1
Ising models submitted straight through ``SolveRequest`` and the
gateway.  No quality reference exists for arbitrary spin glasses, so
``reference`` stays 0.0 and optimal ratios read 0.0 by convention.
Compiled QUBO plans (:mod:`repro.problems`) relax through the
op-counted SimCIM mirror kernel on the problem's Ising form and score
in QUBO energy, with the greedy-descent reference every QUBO-capable
backend shares.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from repro.backends.base import (
    BackendCapabilities,
    BackendPlan,
    BackendRunResult,
    ProblemLike,
    SolverBackend,
)
from repro.backends.registry import register_backend
from repro.errors import AnnealerError
from repro.runtime.telemetry import RunResultLike, Stopwatch

if TYPE_CHECKING:
    from repro.annealer.config import AnnealerConfig
    from repro.problems.qubo import QUBOProblem


def _solve_qubo_simcim(problem: "QUBOProblem", seed: int) -> RunResultLike:
    """One op-counted SimCIM relaxation (module-level: RL003)."""
    from repro.problems.solvers import relax_qubo_simcim

    watch = Stopwatch()
    outcome = relax_qubo_simcim(problem, seed=int(seed))
    return BackendRunResult(
        tour=np.asarray(outcome.bits, dtype=np.int64),
        length=float(outcome.energy),
        wall_time_s=watch.elapsed_s(),
        ops=outcome.history.final_totals(),
        history=outcome.history,
    )


@register_backend("simcim")
class SimCIMBackend(SolverBackend):
    """SimCIM mean-field relaxation for dense ±1 Ising models."""

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="simcim",
            problem_kinds=("ising", "qubo"),
            batchable=False,
            accepts_config=False,
            description="SimCIM mean-field optimizer (pm1 Ising models)",
        )

    def compile(
        self, problem: ProblemLike, config: Optional["AnnealerConfig"]
    ) -> BackendPlan:
        from repro.ising.model import IsingModel
        from repro.problems.qubo import QUBOProblem

        kind = self._check_kind(problem)
        if kind == "qubo":
            assert isinstance(problem, QUBOProblem)
            return BackendPlan(backend="simcim", problem=problem)
        assert isinstance(problem, IsingModel)
        if problem.convention != "pm1":
            raise AnnealerError(
                "backend 'simcim' needs the pm1 spin convention, got "
                f"{problem.convention!r}"
            )
        return BackendPlan(backend="simcim", problem=problem)

    def solve(self, plan: BackendPlan, seed: int) -> RunResultLike:
        from repro.ising.model import IsingModel
        from repro.ising.simcim import simcim_optimize
        from repro.problems.qubo import QUBOProblem

        if isinstance(plan.problem, QUBOProblem):
            return _solve_qubo_simcim(plan.problem, seed)
        assert isinstance(plan.problem, IsingModel)
        watch = Stopwatch()
        relaxed = simcim_optimize(plan.problem, seed=int(seed))
        return BackendRunResult(
            tour=np.asarray(relaxed.spins, dtype=np.int64),
            length=float(relaxed.energy),
            wall_time_s=watch.elapsed_s(),
        )

    def validate_result(
        self, problem: ProblemLike, result: RunResultLike
    ) -> None:
        from repro.backends.qubo_support import validate_qubo_result
        from repro.errors import IsingError
        from repro.ising.model import IsingModel
        from repro.problems.qubo import QUBOProblem
        from repro.runtime.faults import ResultIntegrityError

        if isinstance(problem, QUBOProblem):
            validate_qubo_result(problem, result)
            return
        assert isinstance(problem, IsingModel)
        try:
            energy = problem.energy(
                np.asarray(result.tour, dtype=np.float64)
            )
        except IsingError as exc:
            raise ResultIntegrityError(f"corrupted spins: {exc}") from exc
        if abs(energy - result.length) > max(1e-6, 1e-9 * abs(energy)):
            raise ResultIntegrityError(
                f"corrupted result: reported energy {result.length} does "
                f"not match recomputed energy {energy}"
            )

    def reference(self, problem: ProblemLike, seed: int) -> float:
        from repro.backends.qubo_support import qubo_reference
        from repro.problems.qubo import QUBOProblem

        if isinstance(problem, QUBOProblem):
            return qubo_reference(problem, seed)
        return 0.0

    def decode(self, result: RunResultLike) -> Dict[str, Any]:
        from repro.backends.qubo_support import decode_qubo_result

        if getattr(result, "history", None) is not None:
            return decode_qubo_result("simcim", result)
        return {
            "backend": "simcim",
            "spins": [int(s) for s in result.tour],
            "energy": float(result.length),
        }
