"""Backend adapter for the SimCIM mean-field optimizer.

Wraps :func:`repro.ising.simcim.simcim_optimize` behind the
:class:`~repro.backends.base.SolverBackend` interface: general ±1
Ising models submitted straight through ``SolveRequest`` and the
gateway.  No quality reference exists for arbitrary spin glasses, so
``reference`` stays 0.0 and optimal ratios read 0.0 by convention.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from repro.backends.base import (
    BackendCapabilities,
    BackendPlan,
    BackendRunResult,
    ProblemLike,
    SolverBackend,
)
from repro.backends.registry import register_backend
from repro.errors import AnnealerError
from repro.runtime.telemetry import RunResultLike, Stopwatch

if TYPE_CHECKING:
    from repro.annealer.config import AnnealerConfig


@register_backend("simcim")
class SimCIMBackend(SolverBackend):
    """SimCIM mean-field relaxation for dense ±1 Ising models."""

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="simcim",
            problem_kinds=("ising",),
            batchable=False,
            accepts_config=False,
            description="SimCIM mean-field optimizer (pm1 Ising models)",
        )

    def compile(
        self, problem: ProblemLike, config: Optional["AnnealerConfig"]
    ) -> BackendPlan:
        from repro.ising.model import IsingModel

        self._check_kind(problem)
        assert isinstance(problem, IsingModel)
        if problem.convention != "pm1":
            raise AnnealerError(
                "backend 'simcim' needs the pm1 spin convention, got "
                f"{problem.convention!r}"
            )
        return BackendPlan(backend="simcim", problem=problem)

    def solve(self, plan: BackendPlan, seed: int) -> RunResultLike:
        from repro.ising.model import IsingModel
        from repro.ising.simcim import simcim_optimize

        assert isinstance(plan.problem, IsingModel)
        watch = Stopwatch()
        relaxed = simcim_optimize(plan.problem, seed=int(seed))
        return BackendRunResult(
            tour=np.asarray(relaxed.spins, dtype=np.int64),
            length=float(relaxed.energy),
            wall_time_s=watch.elapsed_s(),
        )

    def validate_result(
        self, problem: ProblemLike, result: RunResultLike
    ) -> None:
        from repro.errors import IsingError
        from repro.ising.model import IsingModel
        from repro.runtime.faults import ResultIntegrityError

        assert isinstance(problem, IsingModel)
        try:
            energy = problem.energy(
                np.asarray(result.tour, dtype=np.float64)
            )
        except IsingError as exc:
            raise ResultIntegrityError(f"corrupted spins: {exc}") from exc
        if abs(energy - result.length) > max(1e-6, 1e-9 * abs(energy)):
            raise ResultIntegrityError(
                f"corrupted result: reported energy {result.length} does "
                f"not match recomputed energy {energy}"
            )

    def decode(self, result: RunResultLike) -> Dict[str, Any]:
        return {
            "backend": "simcim",
            "spins": [int(s) for s in result.tour],
            "energy": float(result.length),
        }
