"""String-keyed registry of solver backends.

Backends register by decorating their class::

    @register_backend("cluster-cim")
    class ClusterCIMBackend(SolverBackend): ...

and the serving stack resolves them per request with
:func:`resolve_backend` (one shared, lazily constructed instance per
name — backends are stateless by contract).  The registry is the
single source of truth for ``SolveRequest.backend`` validation, the
CLI ``--backend`` choices, and the gateway's per-backend metrics keys.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Type, TypeVar

from repro.backends.base import SolverBackend
from repro.errors import AnnealerError

#: The backend every request dispatches to unless told otherwise.
DEFAULT_BACKEND = "cluster-cim"

_REGISTRY: Dict[str, Type[SolverBackend]] = {}
_INSTANCES: Dict[str, SolverBackend] = {}

B = TypeVar("B", bound=Type[SolverBackend])


def register_backend(name: str) -> Callable[[B], B]:
    """Class decorator registering a :class:`SolverBackend` by name."""
    if not name or "/" in name or "@" in name:
        # "/" and "@" are the worker-framing separators; a backend name
        # containing them would corrupt telemetry parsing.
        raise AnnealerError(f"invalid backend name {name!r}")

    def decorate(cls: B) -> B:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise AnnealerError(
                f"backend {name!r} already registered to "
                f"{existing.__name__}"
            )
        _REGISTRY[name] = cls
        _INSTANCES.pop(name, None)
        return cls

    return decorate


def resolve_backend(name: str) -> SolverBackend:
    """The shared instance registered under ``name``.

    Raises :class:`~repro.errors.AnnealerError` (listing the known
    names) for unknown backends — the gateway maps this to an HTTP 400
    through the request decoder.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise AnnealerError(
            f"unknown backend {name!r} (known: {known})"
        ) from None
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = cls()
        _INSTANCES[name] = instance
    return instance


def list_backends() -> Tuple[str, ...]:
    """All registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))
