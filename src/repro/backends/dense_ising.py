"""Backend adapter for the dense Ising TSP annealer.

Wraps :func:`repro.ising.dense_annealer.anneal_dense_tsp` — the
textbook Eq. (3) mapping annealed by dense Gibbs sweeps — behind the
:class:`~repro.backends.base.SolverBackend` interface.  Dense N²-spin
models cap out fast (the mapping refuses N > 64 cities), which is
exactly the contrast the paper draws against its clustered windows;
serving both through one API makes that comparison a request parameter.
Compiled QUBO plans (:mod:`repro.problems`) anneal with the op-counted
*sequential* Gibbs kernel — the one-bit-at-a-time contrast to the
default backend's chromatic-parallel updates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.backends.base import (
    BackendCapabilities,
    BackendPlan,
    BackendRunResult,
    ProblemLike,
    SolverBackend,
)
from repro.backends.registry import register_backend
from repro.errors import AnnealerError
from repro.runtime.telemetry import RunResultLike, Stopwatch

if TYPE_CHECKING:
    from repro.annealer.config import AnnealerConfig
    from repro.problems.qubo import QUBOProblem

#: The dense mapping's hard size limit (N² spins, dense J).
MAX_DENSE_CITIES = 64


def _solve_qubo_sequential(
    problem: "QUBOProblem", seed: int
) -> RunResultLike:
    """One op-counted sequential-Gibbs anneal (module-level: RL003)."""
    import numpy as np

    from repro.problems.solvers import anneal_qubo_sequential

    watch = Stopwatch()
    outcome = anneal_qubo_sequential(problem, seed=int(seed))
    return BackendRunResult(
        tour=np.asarray(outcome.bits, dtype=np.int64),
        length=float(outcome.energy),
        wall_time_s=watch.elapsed_s(),
        ops=outcome.history.final_totals(),
        history=outcome.history,
    )


@register_backend("dense-ising")
class DenseIsingBackend(SolverBackend):
    """Dense-mapping Gibbs annealer for small TSP instances."""

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="dense-ising",
            problem_kinds=("tsp", "qubo"),
            batchable=False,
            accepts_config=False,
            description=(
                f"dense Eq.(3) Ising annealer (TSP, N <= {MAX_DENSE_CITIES})"
            ),
        )

    def compile(
        self, problem: ProblemLike, config: Optional["AnnealerConfig"]
    ) -> BackendPlan:
        from repro.problems.qubo import QUBOProblem
        from repro.tsp.instance import TSPInstance

        kind = self._check_kind(problem)
        if kind == "qubo":
            assert isinstance(problem, QUBOProblem)
            return BackendPlan(backend="dense-ising", problem=problem)
        assert isinstance(problem, TSPInstance)
        if problem.n > MAX_DENSE_CITIES:
            raise AnnealerError(
                f"backend 'dense-ising' is limited to "
                f"{MAX_DENSE_CITIES} cities, got {problem.n}"
            )
        return BackendPlan(backend="dense-ising", problem=problem)

    def solve(self, plan: BackendPlan, seed: int) -> RunResultLike:
        from repro.ising.dense_annealer import anneal_dense_tsp
        from repro.problems.qubo import QUBOProblem
        from repro.tsp.instance import TSPInstance

        if isinstance(plan.problem, QUBOProblem):
            return _solve_qubo_sequential(plan.problem, seed)
        assert isinstance(plan.problem, TSPInstance)
        watch = Stopwatch()
        annealed = anneal_dense_tsp(plan.problem, seed=int(seed))
        return BackendRunResult(
            tour=annealed.tour,
            length=float(annealed.length),
            wall_time_s=watch.elapsed_s(),
        )

    def validate_result(
        self, problem: ProblemLike, result: RunResultLike
    ) -> None:
        from repro.backends.qubo_support import validate_qubo_result
        from repro.errors import TSPError
        from repro.problems.qubo import QUBOProblem
        from repro.runtime.faults import ResultIntegrityError
        from repro.tsp.instance import TSPInstance
        from repro.tsp.tour import tour_length, validate_tour

        if isinstance(problem, QUBOProblem):
            validate_qubo_result(problem, result)
            return
        assert isinstance(problem, TSPInstance)
        try:
            validate_tour(result.tour, problem.n)
        except TSPError as exc:
            raise ResultIntegrityError(f"corrupted tour: {exc}") from exc
        recomputed = float(tour_length(problem, result.tour))
        if abs(recomputed - result.length) > max(1e-6, 1e-9 * abs(recomputed)):
            raise ResultIntegrityError(
                f"corrupted result: reported length {result.length} does "
                f"not match recomputed tour length {recomputed}"
            )

    def reference(self, problem: ProblemLike, seed: int) -> float:
        from repro.backends.qubo_support import qubo_reference
        from repro.problems.qubo import QUBOProblem
        from repro.tsp.instance import TSPInstance
        from repro.tsp.reference import reference_length

        if isinstance(problem, QUBOProblem):
            return qubo_reference(problem, seed)
        assert isinstance(problem, TSPInstance)
        return float(reference_length(problem, seed=int(seed)))

    def decode(self, result: RunResultLike) -> Dict[str, Any]:
        from repro.backends.qubo_support import decode_qubo_result

        if getattr(result, "history", None) is not None:
            return decode_qubo_result("dense-ising", result)
        return {
            "backend": "dense-ising",
            "tour": [int(c) for c in result.tour],
            "length": float(result.length),
        }
