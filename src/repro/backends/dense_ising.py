"""Backend adapter for the dense Ising TSP annealer.

Wraps :func:`repro.ising.dense_annealer.anneal_dense_tsp` — the
textbook Eq. (3) mapping annealed by dense Gibbs sweeps — behind the
:class:`~repro.backends.base.SolverBackend` interface.  Dense N²-spin
models cap out fast (the mapping refuses N > 64 cities), which is
exactly the contrast the paper draws against its clustered windows;
serving both through one API makes that comparison a request parameter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.backends.base import (
    BackendCapabilities,
    BackendPlan,
    BackendRunResult,
    ProblemLike,
    SolverBackend,
)
from repro.backends.registry import register_backend
from repro.errors import AnnealerError
from repro.runtime.telemetry import RunResultLike, Stopwatch

if TYPE_CHECKING:
    from repro.annealer.config import AnnealerConfig

#: The dense mapping's hard size limit (N² spins, dense J).
MAX_DENSE_CITIES = 64


@register_backend("dense-ising")
class DenseIsingBackend(SolverBackend):
    """Dense-mapping Gibbs annealer for small TSP instances."""

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            name="dense-ising",
            problem_kinds=("tsp",),
            batchable=False,
            accepts_config=False,
            description=(
                f"dense Eq.(3) Ising annealer (TSP, N <= {MAX_DENSE_CITIES})"
            ),
        )

    def compile(
        self, problem: ProblemLike, config: Optional["AnnealerConfig"]
    ) -> BackendPlan:
        from repro.tsp.instance import TSPInstance

        self._check_kind(problem)
        assert isinstance(problem, TSPInstance)
        if problem.n > MAX_DENSE_CITIES:
            raise AnnealerError(
                f"backend 'dense-ising' is limited to "
                f"{MAX_DENSE_CITIES} cities, got {problem.n}"
            )
        return BackendPlan(backend="dense-ising", problem=problem)

    def solve(self, plan: BackendPlan, seed: int) -> RunResultLike:
        from repro.ising.dense_annealer import anneal_dense_tsp
        from repro.tsp.instance import TSPInstance

        assert isinstance(plan.problem, TSPInstance)
        watch = Stopwatch()
        annealed = anneal_dense_tsp(plan.problem, seed=int(seed))
        return BackendRunResult(
            tour=annealed.tour,
            length=float(annealed.length),
            wall_time_s=watch.elapsed_s(),
        )

    def validate_result(
        self, problem: ProblemLike, result: RunResultLike
    ) -> None:
        from repro.errors import TSPError
        from repro.runtime.faults import ResultIntegrityError
        from repro.tsp.instance import TSPInstance
        from repro.tsp.tour import tour_length, validate_tour

        assert isinstance(problem, TSPInstance)
        try:
            validate_tour(result.tour, problem.n)
        except TSPError as exc:
            raise ResultIntegrityError(f"corrupted tour: {exc}") from exc
        recomputed = float(tour_length(problem, result.tour))
        if abs(recomputed - result.length) > max(1e-6, 1e-9 * abs(recomputed)):
            raise ResultIntegrityError(
                f"corrupted result: reported length {result.length} does "
                f"not match recomputed tour length {recomputed}"
            )

    def reference(self, problem: ProblemLike, seed: int) -> float:
        from repro.tsp.instance import TSPInstance
        from repro.tsp.reference import reference_length

        assert isinstance(problem, TSPInstance)
        return float(reference_length(problem, seed=int(seed)))

    def decode(self, result: RunResultLike) -> Dict[str, Any]:
        return {
            "backend": "dense-ising",
            "tour": [int(c) for c in result.tour],
            "length": float(result.length),
        }
