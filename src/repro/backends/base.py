"""The solver-backend abstraction.

One narrow interface fronts every solver the serving stack can
dispatch to: the clustered CIM annealer (the paper's solver and the
default), the dense Ising annealer, the Max-Cut bifurcation solver,
and the SimCIM mean-field optimizer.  A backend

* declares what it can solve (:class:`BackendCapabilities` — problem
  kinds, whether the batched replica engine applies, whether it takes
  an :class:`~repro.annealer.config.AnnealerConfig`),
* ``compile``\\ s a problem into a picklable :class:`BackendPlan` that
  crosses the worker-pool boundary,
* ``solve``\\ s one seed of that plan into a result satisfying
  :class:`~repro.runtime.telemetry.RunResultLike`,
* ``decode``\\ s a result into a human-readable solution view, and
* supplies the quality ``reference`` denominator and the worker-side
  integrity ``validate_result`` gate.

``SolveRequest(backend="...")`` selects one by registry name
(:mod:`repro.backends.registry`); the ensemble executor, the async
service, the HTTP gateway, and the CLI all dispatch through it.  See
``docs/backends.md`` for the tour and the how-to-add-one guide.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import AnnealerError
from repro.runtime.telemetry import RunResultLike

if TYPE_CHECKING:
    from repro.annealer.config import AnnealerConfig
    from repro.annealer.result import LevelReport
    from repro.cim.macro import CIMChip
    from repro.ising.model import IsingModel
    from repro.maxcut.problem import MaxCutProblem
    from repro.problems.opcount import History
    from repro.problems.qubo import QUBOProblem
    from repro.tsp.instance import TSPInstance

#: Everything a :class:`~repro.runtime.options.SolveRequest` can carry.
ProblemLike = Union[
    "TSPInstance", "IsingModel", "MaxCutProblem", "QUBOProblem"
]


def problem_kind(problem: object) -> str:
    """The wire/capability kind of a problem payload.

    ``"tsp"`` for :class:`~repro.tsp.instance.TSPInstance`, ``"ising"``
    for :class:`~repro.ising.model.IsingModel`, ``"maxcut"`` for
    :class:`~repro.maxcut.problem.MaxCutProblem`, ``"qubo"`` for
    :class:`~repro.problems.qubo.QUBOProblem`; anything else raises
    :class:`~repro.errors.AnnealerError`.
    """
    # Imported lazily: the problem containers live below this package.
    from repro.ising.model import IsingModel
    from repro.maxcut.problem import MaxCutProblem
    from repro.problems.qubo import QUBOProblem
    from repro.tsp.instance import TSPInstance

    if isinstance(problem, TSPInstance):
        return "tsp"
    if isinstance(problem, IsingModel):
        return "ising"
    if isinstance(problem, MaxCutProblem):
        return "maxcut"
    if isinstance(problem, QUBOProblem):
        return "qubo"
    raise AnnealerError(
        f"unsupported problem payload {type(problem).__name__!r} "
        "(expected TSPInstance, IsingModel, MaxCutProblem, or QUBOProblem)"
    )


@dataclass(frozen=True)
class BackendCapabilities:
    """What one registered backend can solve, and how.

    Attributes
    ----------
    name:
        Registry name (``"cluster-cim"``, ...).
    problem_kinds:
        Problem payload kinds the backend accepts (``"tsp"``,
        ``"ising"``, ``"maxcut"``) — :class:`~repro.runtime.options.
        SolveRequest` validates its payload against this.
    batchable:
        Whether the batched replica engine
        (:mod:`repro.annealer.batched`) applies; only the clustered
        CIM annealer is batchable today.
    accepts_config:
        Whether the backend consumes an ``AnnealerConfig``; requests
        carrying one for a backend that does not are rejected.
    description:
        One line for ``repro solve --help`` and docs.
    """

    name: str
    problem_kinds: Tuple[str, ...]
    batchable: bool = False
    accepts_config: bool = False
    description: str = ""


@dataclass(frozen=True)
class BackendPlan:
    """A compiled, picklable unit of solver work.

    ``compile`` runs once per request on the dispatching side; the plan
    then crosses the process-pool boundary (RL003: only module-level
    functions and plain data are submitted), and ``solve`` runs it once
    per seed worker-side.
    """

    backend: str
    problem: ProblemLike
    config: Optional["AnnealerConfig"] = None


@dataclass
class BackendRunResult:
    """One solved seed from a non-default backend.

    Satisfies :class:`~repro.runtime.telemetry.RunResultLike` next to
    :class:`~repro.annealer.result.AnnealResult`: ``tour`` is the
    solution state vector (a city permutation for TSP backends, a ±1
    spin vector otherwise) and ``length`` is the *minimised* objective
    — tour length, Ising energy, or negated cut value — so ensemble
    aggregation (``best = min(length)``) works unchanged.
    """

    tour: np.ndarray
    length: float
    wall_time_s: float = 0.0
    chip: Optional["CIMChip"] = None
    levels: Tuple["LevelReport", ...] = ()
    ops: Dict[str, int] = field(default_factory=dict)
    history: Optional["History"] = None

    def optimal_ratio(self, reference_length: float) -> float:
        """``length / reference`` — 0.0 when no reference exists.

        Sign conventions (pinned by ``tests/backends``):

        * Unlike ``AnnealResult.optimal_ratio`` this accepts *negative*
          references: Max-Cut scores ``length = -cut`` against
          ``reference = -greedy_cut`` and penalty-QUBO energies go
          negative too, so same-sign pairs yield the familiar positive
          quality ratio.
        * A mixed-sign pair yields a negative ratio — the solution sits
          on the wrong side of zero relative to the baseline, and
          hiding that by clamping would misreport quality.
        * A zero, NaN, or infinite reference means "no usable
          baseline" and reads 0.0 by convention (never a division
          error), matching the "no reference" sentinel used across
          telemetry.
        """
        ref = float(reference_length)
        if not ref or not np.isfinite(ref):
            return 0.0
        return float(self.length) / ref


class SolverBackend(ABC):
    """Abstract base of every registered solver backend.

    Subclasses are registered by name with
    :func:`~repro.backends.registry.register_backend` and resolved per
    request with :func:`~repro.backends.registry.resolve_backend`.
    Implementations must be stateless (one shared instance serves all
    requests) and deterministic per ``(plan, seed)``.
    """

    @abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Static description of what this backend solves."""

    @abstractmethod
    def compile(
        self, problem: ProblemLike, config: Optional["AnnealerConfig"]
    ) -> BackendPlan:
        """Validate + package a problem into a picklable plan."""

    @abstractmethod
    def solve(self, plan: BackendPlan, seed: int) -> RunResultLike:
        """Solve one seed of a compiled plan."""

    @abstractmethod
    def validate_result(
        self, problem: ProblemLike, result: RunResultLike
    ) -> None:
        """Integrity gate for results crossing the worker boundary.

        Must raise :class:`~repro.runtime.faults.ResultIntegrityError`
        when the solution state is malformed or the reported objective
        does not match a recomputation (the chaos layer's corrupt
        fault counts on this catching it).
        """

    def reference(self, problem: ProblemLike, seed: int) -> float:
        """Quality denominator for ``optimal_ratio`` (0.0 = none)."""
        return 0.0

    def decode(self, result: RunResultLike) -> Dict[str, Any]:
        """Human-readable solution view of one result."""
        return {
            "backend": self.capabilities().name,
            "state": [int(v) for v in result.tour],
            "objective": float(result.length),
        }

    def _check_kind(self, problem: ProblemLike) -> str:
        """Shared ``compile`` guard: payload kind vs capabilities."""
        caps = self.capabilities()
        kind = problem_kind(problem)
        if kind not in caps.problem_kinds:
            raise AnnealerError(
                f"backend {caps.name!r} solves {sorted(caps.problem_kinds)}, "
                f"got a {kind!r} problem"
            )
        return kind

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.capabilities().name!r})"
