"""Noisy-SRAM substrate (Sec. IV).

Behavioural model of the pseudo-read bit-error mechanism:

* each 6T SRAM cell gets, at "fabrication", a *critical supply voltage*
  ``Vc`` (from its inverter mismatch) and a *preferred state* (the
  direction its latch falls when destabilised);
* a pseudo-read at supply voltage below ``Vc`` resolves the cell to its
  preferred state — an error when that differs from the stored bit;
* the resulting error-rate-vs-V_DD curve is a Gaussian-CDF sigmoid
  from ~0% at nominal 800 mV down to ~50% at 200 mV, sharper for
  larger bit-line capacitance (Fig. 6b), which the Monte-Carlo driver
  in :mod:`repro.sram.montecarlo` reproduces with 1000 samples exactly
  like the paper's SPICE experiment;
* :class:`SpatialNoiseField` carries the per-cell (Vc, preferred)
  pattern for a whole weight array and corrupts stored 8-bit weights on
  selected LSB planes — the paper's knob for noise granularity.

An LFSR pseudo-random generator (:mod:`repro.sram.lfsr`) is included as
the conventional digital noise source the paper argues against, used by
the ablation benchmarks.
"""

from repro.sram.butterfly import (
    butterfly_curves,
    critical_voltage_mv,
    inverter_vtc,
    read_snm_mv,
)
from repro.sram.cell import SRAMCellParams, sample_critical_voltages
from repro.sram.errormodel import ErrorRateModel
from repro.sram.lfsr import LFSR
from repro.sram.montecarlo import ErrorRateCurve, monte_carlo_error_rate
from repro.sram.noise import SpatialNoiseField
from repro.sram.writeback import WritebackController

__all__ = [
    "butterfly_curves",
    "inverter_vtc",
    "read_snm_mv",
    "critical_voltage_mv",
    "SRAMCellParams",
    "sample_critical_voltages",
    "ErrorRateModel",
    "ErrorRateCurve",
    "monte_carlo_error_rate",
    "SpatialNoiseField",
    "LFSR",
    "WritebackController",
]
