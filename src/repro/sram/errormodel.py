"""Closed-form error-rate model and its inverse.

Wraps the analytic sigmoid of the cell model with convenience queries
used by the annealer and the hardware energy model:

* ``rate(vdd)`` — expected bit-error probability at a supply voltage;
* ``vdd_for_rate(p)`` — the supply voltage that produces a target error
  rate (useful for designing schedules);
* ``expected_weight_noise(vdd, noisy_lsbs)`` — expected absolute weight
  perturbation (in weight LSB units) when the given number of LSB
  planes run at reduced V_DD, which is the effective "temperature" of
  the annealer.
"""

from __future__ import annotations

from math import log, sqrt
from typing import Optional

from repro.errors import SRAMError
from repro.sram.cell import SRAMCellParams, analytic_error_rate


def _phi_inv(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < p < 1.0:
        raise SRAMError(f"probability must be in (0,1), got {p}")
    # Coefficients for the central and tail regions.
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = sqrt(-2 * log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > p_high:
        q = sqrt(-2 * log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
                ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)


class ErrorRateModel:
    """Analytic pseudo-read error model for one cell population."""

    def __init__(self, params: Optional[SRAMCellParams] = None) -> None:
        self.params = params or SRAMCellParams()

    def rate(self, vdd_mv: float) -> float:
        """Expected bit-error probability at ``vdd_mv``."""
        if vdd_mv <= 0:
            raise SRAMError(f"vdd_mv must be > 0, got {vdd_mv}")
        return analytic_error_rate(vdd_mv, self.params)

    def vdd_for_rate(self, rate: float) -> float:
        """Supply voltage (mV) at which the error rate equals ``rate``.

        Valid for rates in (0, 0.5) — 0.5 is the metastable asymptote.
        """
        if not 0.0 < rate < 0.5:
            raise SRAMError(f"rate must be in (0, 0.5), got {rate}")
        # rate = 0.5·Φ((v50−V)/s)  =>  (v50−V)/s = Φ⁻¹(2·rate)
        z = _phi_inv(2.0 * rate)
        return self.params.v50_mv - z * self.params.effective_sigma_mv

    def expected_weight_noise(self, vdd_mv: float, noisy_lsbs: int, weight_bits: int = 8) -> float:
        """Expected |Δw| (in LSB units) with ``noisy_lsbs`` noisy planes.

        Each noisy bit plane b flips with probability p, contributing
        2^b on flip; flips are independent, so E|Δw| ≤ Σ p·2^b (equality
        when flips are rare; for large p, opposing flips partially
        cancel — we report the upper bound, a monotone noise measure).
        """
        if not 0 <= noisy_lsbs <= weight_bits:
            raise SRAMError(
                f"noisy_lsbs must be in [0, {weight_bits}], got {noisy_lsbs}"
            )
        p = self.rate(vdd_mv)
        return p * float(sum(2**b for b in range(noisy_lsbs)))
