"""Write-back (weight recovery) bookkeeping (Sec. IV-B).

Pseudo-read flips are irreversible — raising V_DD back to nominal does
not restore the storage node — so the correct weights must be
periodically rewritten.  The paper writes back every 50 iterations, at
the same boundaries where V_DD steps up and the noisy-LSB count steps
down.

:class:`WritebackController` tracks those events so the hardware
energy/latency models can charge the write cost (Fig. 7c/d separate the
read and write portions of both), and exposes the current corruption
settings to the annealer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import SRAMError
from repro.ising.schedule import VddSchedule


@dataclass
class WritebackController:
    """Drives V_DD / noisy-LSB settings and counts write-back events.

    One controller is stepped through the iterations of one annealing
    level; :meth:`begin_iteration` returns the noise settings in force
    and whether a write-back (weight refresh) happens first.
    """

    schedule: VddSchedule = field(default_factory=VddSchedule)
    writeback_count: int = 0
    iterations_seen: int = 0
    _events: List[Tuple[int, float, int]] = field(default_factory=list)

    def begin_iteration(self, iteration: int) -> Tuple[bool, float, int]:
        """Settings for ``iteration``: ``(writeback, vdd_mv, noisy_lsbs)``.

        ``writeback`` is True when the correct weights are rewritten
        before this iteration runs (step boundaries, including
        iteration 0 — the initial programming of the arrays).
        """
        step = self.schedule.step_of(iteration)
        writeback = self.schedule.is_writeback_iteration(iteration)
        vdd = self.schedule.vdd_mv(step)
        lsbs = self.schedule.noisy_lsbs(step)
        if writeback:
            self.writeback_count += 1
            self._events.append((iteration, vdd, lsbs))
        self.iterations_seen += 1
        return writeback, vdd, lsbs

    @property
    def events(self) -> List[Tuple[int, float, int]]:
        """Write-back events as ``(iteration, vdd_mv, noisy_lsbs)``."""
        return list(self._events)

    def expected_writebacks(self) -> int:
        """Write-backs a full level incurs (one per schedule step)."""
        return self.schedule.n_steps

    def validate_complete(self) -> None:
        """Assert a full level was stepped through exactly once."""
        if self.iterations_seen != self.schedule.total_iterations:
            raise SRAMError(
                f"saw {self.iterations_seen} iterations, schedule has "
                f"{self.schedule.total_iterations}"
            )
