"""Butterfly curves and static noise margin (Fig. 6a).

The cell model in :mod:`repro.sram.cell` compresses everything into one
per-cell critical voltage.  This module backs that abstraction with the
circuit picture the paper draws in Fig. 6(a): the cross-coupled
inverter voltage-transfer curves (VTCs) form the butterfly plot, the
read static noise margin (SNM) is the side of the largest square
inscribed in the smaller lobe, and both lowering V_DD and
threshold-voltage mismatch visibly squeeze the lobes until the margin
collapses — which is exactly when pseudo-read flips become likely.

Models (behavioural, not SPICE):

* inverter VTC — a logistic transition centred at the switching
  threshold ``Vm = V_DD/2 + δ`` with width ∝ V_DD (sharper inverters at
  higher supply);
* read disturbance — during a (pseudo-)read the access transistor pulls
  the low node up to a fraction of V_DD, flattening the VTC's low rail;
* SNM — Seevinck's rotated-coordinates construction evaluated
  numerically on both lobes.

:func:`critical_voltage_mv` inverts SNM(V_DD) = 0 by bisection, giving
the same quantity :func:`repro.sram.cell.sample_critical_voltages`
draws statistically — the tests check the two views agree on trends.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import SRAMError

#: Fraction of V_DD the access transistor lifts the low node to at read.
READ_DISTURB_FRACTION = 0.15
#: VTC transition width as a fraction of V_DD.
TRANSITION_WIDTH_FRACTION = 0.08


def inverter_vtc(
    vin_mv: np.ndarray,
    vdd_mv: float,
    vth_shift_mv: float = 0.0,
    read_mode: bool = True,
) -> np.ndarray:
    """Logistic inverter voltage-transfer curve.

    Parameters
    ----------
    vin_mv:
        Input voltages (mV).
    vdd_mv:
        Supply voltage (mV).
    vth_shift_mv:
        Mismatch-induced shift of the switching threshold.
    read_mode:
        Model the word-line-on read disturbance: the output low level is
        lifted to ``READ_DISTURB_FRACTION · V_DD``.
    """
    if vdd_mv <= 0:
        raise SRAMError(f"vdd_mv must be > 0, got {vdd_mv}")
    vin = np.asarray(vin_mv, dtype=np.float64)
    vm = vdd_mv / 2.0 + vth_shift_mv
    width = max(TRANSITION_WIDTH_FRACTION * vdd_mv, 1e-6)
    vout = vdd_mv / (1.0 + np.exp((vin - vm) / width))
    if read_mode:
        vout = np.maximum(vout, READ_DISTURB_FRACTION * vdd_mv)
    return vout


def butterfly_curves(
    vdd_mv: float,
    mismatch_mv: float = 0.0,
    n_points: int = 512,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The two read VTCs of a (possibly mismatched) cell.

    Returns ``(v, vtc1(v), vtc2(v))`` where the mismatch is applied
    antisymmetrically (+δ/2 on one inverter, −δ/2 on the other) — the
    worst case for one lobe, as in Fig. 6(a)'s skewed butterfly.
    """
    v = np.linspace(0.0, vdd_mv, n_points)
    vtc1 = inverter_vtc(v, vdd_mv, +mismatch_mv / 2.0)
    vtc2 = inverter_vtc(v, vdd_mv, -mismatch_mv / 2.0)
    return v, vtc1, vtc2


def read_snm_mv(
    vdd_mv: float, mismatch_mv: float = 0.0, n_points: int = 512
) -> float:
    """Read static noise margin via Seevinck's rotated-axes method.

    The butterfly is formed by curve A = (v, vtc1(v)) and curve
    B = (vtc2(v), v).  In coordinates rotated by 45°, the vertical gap
    between the curves equals √2 × the inscribed square's side; the SNM
    is the smaller lobe's maximum square.
    """
    v, vtc1, vtc2 = butterfly_curves(vdd_mv, mismatch_mv, n_points)
    # Rotate both curves by -45°: u = (x − y)/√2 (abscissa),
    # w = (x + y)/√2.  A square of side s inscribed in a lobe touches
    # the two curves at corners separated by (s, s) — same u, and a
    # w-gap of s·√2.
    s2 = np.sqrt(2.0)
    u_a, w_a = (v - vtc1) / s2, (v + vtc1) / s2
    u_b, w_b = (vtc2 - v) / s2, (vtc2 + v) / s2
    # Interpolate on a common abscissa spanning both curves.
    u_lo = max(u_a.min(), u_b.min())
    u_hi = min(u_a.max(), u_b.max())
    if u_hi <= u_lo:
        return 0.0
    grid = np.linspace(u_lo, u_hi, n_points)
    # Curves must be sampled in ascending-u order for interp.
    order_a = np.argsort(u_a)
    order_b = np.argsort(u_b)
    wa = np.interp(grid, u_a[order_a], w_a[order_a])
    wb = np.interp(grid, u_b[order_b], w_b[order_b])
    gap = wa - wb
    upper_lobe = float(gap.max())
    lower_lobe = float(-gap.min())
    snm_diag = min(upper_lobe, lower_lobe)
    return max(0.0, snm_diag / s2)


def critical_voltage_mv(
    mismatch_mv: float,
    snm_threshold_mv: float = 5.0,
    v_lo: float = 50.0,
    v_hi: float = 1000.0,
    tol: float = 0.5,
) -> float:
    """Supply voltage below which the read SNM collapses.

    Bisection on ``read_snm_mv(V) = snm_threshold_mv``: below the
    returned voltage the cell is effectively metastable at read — the
    circuit-level counterpart of the statistical critical voltage in
    :mod:`repro.sram.cell`.
    """
    if snm_threshold_mv <= 0:
        raise SRAMError("snm_threshold_mv must be > 0")
    if read_snm_mv(v_hi, mismatch_mv) <= snm_threshold_mv:
        return v_hi
    if read_snm_mv(v_lo, mismatch_mv) > snm_threshold_mv:
        return v_lo
    lo, hi = v_lo, v_hi
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if read_snm_mv(mid, mismatch_mv) > snm_threshold_mv:
            hi = mid
        else:
            lo = mid
    return (lo + hi) / 2.0
