"""Linear-feedback shift register (LFSR) pseudo-random source.

The conventional digital annealing-noise generator the paper replaces
with intrinsic SRAM variation.  Implemented as a Fibonacci LFSR with
maximal-length taps; used by the ablation benchmark comparing
SRAM-noise annealing against LFSR-noise annealing, and as a
deterministic bit source in tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import SRAMError

#: Maximal-length tap sets (XOR form) for common widths.
_MAXIMAL_TAPS: Dict[int, Tuple[int, ...]] = {
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
}


class LFSR:
    """A Fibonacci LFSR producing bits, integers, and floats.

    Parameters
    ----------
    width:
        Register width in bits (8, 16, 24 or 32 — widths with known
        maximal-length taps).
    seed:
        Non-zero initial register state (the all-zero state is a fixed
        point and is rejected).
    """

    def __init__(self, width: int = 16, seed: int = 0xACE1) -> None:
        if width not in _MAXIMAL_TAPS:
            raise SRAMError(
                f"width must be one of {sorted(_MAXIMAL_TAPS)}, got {width}"
            )
        self.width = width
        self._mask = (1 << width) - 1
        seed &= self._mask
        if seed == 0:
            raise SRAMError("LFSR seed must be non-zero")
        self._state = seed
        self._taps = _MAXIMAL_TAPS[width]

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    @property
    def period(self) -> int:
        """Sequence period (2^width − 1 for maximal-length taps)."""
        return (1 << self.width) - 1

    def next_bit(self) -> int:
        """Shift once and return the output bit."""
        feedback = 0
        for t in self._taps:
            feedback ^= (self._state >> (t - 1)) & 1
        self._state = ((self._state << 1) | feedback) & self._mask
        return self._state & 1

    def next_int(self, bits: int | None = None) -> int:
        """Next ``bits``-wide integer (default: full register width)."""
        if bits is None:
            bits = self.width
        if not 1 <= bits <= 64:
            raise SRAMError(f"bits must be in [1,64], got {bits}")
        value = 0
        for _ in range(bits):
            value = (value << 1) | self.next_bit()
        return value

    def next_float(self) -> float:
        """Next float uniform in [0, 1) with register-width resolution."""
        return self.next_int() / (1 << self.width)

    def bits(self, count: int) -> np.ndarray:
        """Array of the next ``count`` output bits."""
        if count < 0:
            raise SRAMError(f"count must be >= 0, got {count}")
        return np.asarray([self.next_bit() for _ in range(count)], dtype=np.uint8)
