"""SRAM bit-cell process-variation model.

Physical picture (Sec. IV-A): the 6T cell's cross-coupled inverters are
nominally symmetric; threshold-voltage mismatch skews the butterfly
curve and shrinks the read static-noise margin (SNM).  Lowering the
cell supply voltage during a word-line-activated *pseudo-read* shrinks
the SNM further until the bit-line disturbance flips the latch.

We compress this into a single per-cell parameter, the **critical
supply voltage** ``Vc``:

    Vc_i = v50 + s · δ_i,      δ_i ~ N(0, 1)

* pseudo-read at ``V_DD < Vc_i`` destabilises the cell — it resolves to
  its *preferred state* (fixed by the mismatch sign);
* ``V_DD ≥ Vc_i`` reads are non-destructive.

Since stored data is uncorrelated with the preferred state, the error
probability is half the destabilisation probability:

    P_err(V) = 0.5 · Φ((v50 − V) / s)

which is exactly the sigmoid of Fig. 6b.  The mismatch spread ``s``
shrinks with bit-line capacitance (a larger C_BL integrates the
disturbance over more charge, so the outcome is governed by the supply
voltage rather than by per-cell randomness), reproducing the "higher BL
capacitance → sharper transition" observation:

    s(C_BL) = sigma_v / sqrt(1 + C_BL / C_ref)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import SRAMError
from repro.utils.rng import SeedLike, spawn_rng

#: Nominal supply for the 16 nm node used throughout the paper (mV).
NOMINAL_VDD_MV = 800.0


@dataclass(frozen=True)
class SRAMCellParams:
    """Population parameters of the pseudo-read flip model.

    Attributes
    ----------
    v50_mv:
        Supply voltage at which half the cells destabilise (so the
        *error* rate is 25% there).  Calibrated so the paper's 300 mV
        annealing start sits at a high-noise point and 580 mV is
        essentially noise-free.
    sigma_v_mv:
        Mismatch-induced spread of the critical voltage at the
        reference bit-line capacitance.
    bl_cap_ratio:
        Bit-line capacitance relative to the reference (array height
        proxy); > 1 sharpens the error-rate transition.
    """

    v50_mv: float = 300.0
    sigma_v_mv: float = 55.0
    bl_cap_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.v50_mv <= 0:
            raise SRAMError(f"v50_mv must be > 0, got {self.v50_mv}")
        if self.sigma_v_mv <= 0:
            raise SRAMError(f"sigma_v_mv must be > 0, got {self.sigma_v_mv}")
        if self.bl_cap_ratio <= 0:
            raise SRAMError(f"bl_cap_ratio must be > 0, got {self.bl_cap_ratio}")

    @property
    def effective_sigma_mv(self) -> float:
        """Critical-voltage spread after the bit-line-capacitance effect."""
        return self.sigma_v_mv / float(np.sqrt(self.bl_cap_ratio))


def sample_critical_voltages(
    shape: Tuple[int, ...],
    params: SRAMCellParams,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample a fabricated cell population.

    Returns ``(critical_voltage_mv, preferred_state)`` arrays of the
    given shape — the immutable spatial fingerprint of the die.  The
    preferred state is an independent fair coin per cell (mismatch sign).
    """
    rng = spawn_rng(seed)
    vc = params.v50_mv + params.effective_sigma_mv * rng.standard_normal(shape)
    preferred = rng.integers(0, 2, size=shape, dtype=np.uint8)
    return vc, preferred


def pseudo_read(
    stored: np.ndarray,
    critical_voltage_mv: np.ndarray,
    preferred: np.ndarray,
    vdd_mv: float,
) -> np.ndarray:
    """Pseudo-read an array of bits at supply ``vdd_mv``.

    Destabilised cells (``vdd_mv < Vc``) return their preferred state;
    stable cells return the stored bit.  Matches the irreversible-flip
    semantics of the paper: the *returned* array is what the storage
    node now holds (callers model recovery via write-back).
    """
    if vdd_mv <= 0:
        raise SRAMError(f"vdd_mv must be > 0, got {vdd_mv}")
    stored = np.asarray(stored)
    if stored.shape != critical_voltage_mv.shape or stored.shape != preferred.shape:
        raise SRAMError("stored/Vc/preferred shapes must match")
    unstable = critical_voltage_mv > vdd_mv
    return np.where(unstable, preferred, stored).astype(np.uint8)


def analytic_error_rate(vdd_mv: float, params: SRAMCellParams) -> float:
    """Closed-form P_err(V) = 0.5 · Φ((v50 − V)/s) of the cell model."""
    from math import erf, sqrt

    z = (params.v50_mv - vdd_mv) / params.effective_sigma_mv
    phi = 0.5 * (1.0 + erf(z / sqrt(2.0)))
    return 0.5 * phi
