"""Monte-Carlo error-rate extraction (Fig. 6b).

The paper sweeps the cell supply from 800 mV (nominal for 16 nm) down
to 200 mV, taking 1000 Monte-Carlo SPICE samples per point, and reports
the pseudo-read error rate.  This module reruns that experiment on the
behavioural cell model: sample 1000 fabricated cells, store random
data, pseudo-read at each supply voltage, and count bit errors.

The measured points should track the analytic sigmoid
``0.5·Φ((v50−V)/s)`` within binomial sampling noise — asserted by the
test suite — and sharpen with bit-line capacitance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import SRAMError
from repro.sram.cell import (
    SRAMCellParams,
    analytic_error_rate,
    pseudo_read,
    sample_critical_voltages,
)
from repro.utils.rng import SeedLike, spawn_rng

#: The paper's sweep: 800 mV (nominal) down to 200 mV.
DEFAULT_VDD_SWEEP_MV = tuple(float(v) for v in range(200, 801, 25))


@dataclass
class ErrorRateCurve:
    """A measured error-rate-vs-V_DD curve.

    Attributes
    ----------
    vdd_mv:
        Swept supply voltages (mV), ascending.
    error_rate:
        Measured pseudo-read error rate per voltage.
    analytic:
        Closed-form model prediction at the same voltages.
    params:
        Cell-population parameters used.
    n_samples:
        Monte-Carlo samples per voltage point.
    """

    vdd_mv: np.ndarray
    error_rate: np.ndarray
    analytic: np.ndarray
    params: SRAMCellParams
    n_samples: int

    def rate_at(self, vdd_mv: float) -> float:
        """Linearly interpolated measured error rate at ``vdd_mv``."""
        return float(np.interp(vdd_mv, self.vdd_mv, self.error_rate))

    def transition_width_mv(self) -> float:
        """Voltage span between the 5% and 45% error-rate crossings.

        A sharper sigmoid (higher BL capacitance) has a smaller width.
        Interpolates on the analytic curve for robustness to MC noise.
        """
        # analytic is monotonically decreasing in V.
        v_hi = float(np.interp(-0.05, -self.analytic, self.vdd_mv))
        v_lo = float(np.interp(-0.45, -self.analytic, self.vdd_mv))
        return v_hi - v_lo


def monte_carlo_error_rate(
    vdd_sweep_mv: Sequence[float] = DEFAULT_VDD_SWEEP_MV,
    n_samples: int = 1000,
    params: Optional[SRAMCellParams] = None,
    seed: SeedLike = 0,
) -> ErrorRateCurve:
    """Re-run the paper's Fig. 6b Monte-Carlo experiment.

    Parameters
    ----------
    vdd_sweep_mv:
        Supply voltages to sweep (default 200..800 mV).
    n_samples:
        Cells per voltage point (paper: 1000).
    params:
        Cell-population parameters (default paper calibration).
    seed:
        Seed for the fabricated population and the stored data.
    """
    if n_samples < 1:
        raise SRAMError(f"n_samples must be >= 1, got {n_samples}")
    vdds = np.asarray(sorted(float(v) for v in vdd_sweep_mv))
    if vdds.size == 0:
        raise SRAMError("empty V_DD sweep")
    params = params or SRAMCellParams()
    rng = spawn_rng(seed)

    # One fabricated population reused across the sweep, fresh random
    # data per point (matches the paper's averaging over samples).
    vc, preferred = sample_critical_voltages((n_samples,), params, seed=rng)
    rates = np.empty(vdds.size)
    for k, v in enumerate(vdds):
        stored = rng.integers(0, 2, size=n_samples, dtype=np.uint8)
        read = pseudo_read(stored, vc, preferred, float(v))
        rates[k] = float(np.mean(read != stored))

    analytic = np.asarray([analytic_error_rate(float(v), params) for v in vdds])
    return ErrorRateCurve(
        vdd_mv=vdds,
        error_rate=rates,
        analytic=analytic,
        params=params,
        n_samples=n_samples,
    )
