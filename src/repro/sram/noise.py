"""Spatial noise fields over weight memories (Sec. IV-B).

A :class:`SpatialNoiseField` is the fabrication fingerprint of the bit
cells backing one weight array: a critical voltage and a preferred
state per *bit* cell.  Because the paper stores the noise in the
**weights** (not the spins), a pseudo-read at reduced V_DD corrupts the
weight planes deterministically-per-cell — and since each MAC cycle
addresses different rows/columns, the spatial pattern is experienced as
*temporal* noise by the annealing dynamics.

The field corrupts only the selected LSB planes (MSBs stay at nominal
V_DD), giving the two noise knobs of the paper: supply voltage and
number of noisy bits.

Simplification vs silicon: a destabilised cell physically flips the
first time it is pseudo-read within a write-back period and stays
flipped; we apply the flip from the start of the period.  Since almost
every weight column is exercised within the first few iterations of a
50-iteration period, the difference is a sub-iteration transient.
(Recorded in DESIGN.md §2.)
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import SRAMError
from repro.sram.cell import SRAMCellParams, sample_critical_voltages
from repro.utils.rng import SeedLike


class SpatialNoiseField:
    """Per-bit-cell (Vc, preferred-state) pattern for a weight array.

    Parameters
    ----------
    shape:
        Shape of the *weight* array (values, not bits), e.g. the
        ``(p²+2p, p²)`` window or a whole-array stack of windows.
    weight_bits:
        Bit width of each weight (8 in the paper); the field holds
        ``shape + (weight_bits,)`` bit cells.
    params:
        Cell-population parameters.
    seed:
        Fabrication seed — two fields with the same seed are the same
        die.
    """

    def __init__(
        self,
        shape: Tuple[int, ...],
        weight_bits: int = 8,
        params: Optional[SRAMCellParams] = None,
        seed: SeedLike = None,
    ) -> None:
        if weight_bits < 1 or weight_bits > 16:
            raise SRAMError(f"weight_bits must be in [1,16], got {weight_bits}")
        self.shape = tuple(int(s) for s in shape)
        self.weight_bits = weight_bits
        self.params = params or SRAMCellParams()
        bit_shape = self.shape + (weight_bits,)
        self._vc, self._preferred = sample_critical_voltages(
            bit_shape, self.params, seed=seed
        )

    # ------------------------------------------------------------------
    def flip_mask(self, vdd_mv: float, noisy_lsbs: int) -> np.ndarray:
        """Boolean bit-plane mask of destabilised cells.

        True where the cell (a) sits in one of the ``noisy_lsbs`` LSB
        planes (the only ones run at reduced V_DD) and (b) has a
        critical voltage above ``vdd_mv``.
        """
        if vdd_mv <= 0:
            raise SRAMError(f"vdd_mv must be > 0, got {vdd_mv}")
        if not 0 <= noisy_lsbs <= self.weight_bits:
            raise SRAMError(
                f"noisy_lsbs must be in [0, {self.weight_bits}], got {noisy_lsbs}"
            )
        mask = self._vc > vdd_mv
        if noisy_lsbs < self.weight_bits:
            mask = mask.copy()
            mask[..., noisy_lsbs:] = False  # MSB planes at nominal V_DD
        return mask

    def corrupt(
        self, weights: np.ndarray, vdd_mv: float, noisy_lsbs: int
    ) -> np.ndarray:
        """Pseudo-read ``weights`` under reduced V_DD on the LSB planes.

        Destabilised bit cells resolve to their preferred state; the
        corrupted integer weights are returned (stored data unchanged —
        the caller owns write-back bookkeeping).
        """
        w = np.asarray(weights)
        if w.shape != self.shape:
            raise SRAMError(
                f"weights shape {w.shape} does not match field shape {self.shape}"
            )
        if np.any(w < 0) or np.any(w >= (1 << self.weight_bits)):
            raise SRAMError(
                f"weights out of range for {self.weight_bits}-bit storage"
            )
        mask = self.flip_mask(vdd_mv, noisy_lsbs)
        if not mask.any():
            return w.astype(np.int64)
        bits = (w[..., None] >> np.arange(self.weight_bits)) & 1
        bits = np.where(mask, self._preferred, bits.astype(np.uint8))
        out = (bits.astype(np.int64) << np.arange(self.weight_bits)).sum(axis=-1)
        return out

    def error_rate(self, vdd_mv: float, noisy_lsbs: int) -> float:
        """Measured fraction of destabilised cells among the noisy planes."""
        if noisy_lsbs == 0:
            return 0.0
        mask = self.flip_mask(vdd_mv, noisy_lsbs)
        noisy_cells = mask[..., :noisy_lsbs]
        # Half of destabilised cells hold their preferred value already.
        return float(noisy_cells.mean()) * 0.5

    def __repr__(self) -> str:
        return (
            f"SpatialNoiseField(shape={self.shape}, "
            f"weight_bits={self.weight_bits})"
        )
