"""The :class:`TSPInstance` container.

An instance is a set of city coordinates plus a distance metric.  All
solvers in this library consume instances through this class; distances
are computed lazily (full matrix for small instances, on-demand blocks
for large ones, since an 85 900-city matrix would need ~59 GB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import TSPError

#: Instances at or below this size may cache a full distance matrix.
FULL_MATRIX_LIMIT = 8192

#: Supported TSPLIB-style metrics.
SUPPORTED_METRICS = ("GEOM", "EUC_2D", "CEIL_2D", "ATT")


def _euclidean_block(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between two coordinate blocks."""
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def apply_metric(
    raw: np.ndarray, metric: str, sq: Optional[np.ndarray] = None
) -> np.ndarray:
    """Convert raw Euclidean distances to the instance metric.

    Parameters
    ----------
    raw:
        Plain Euclidean distances.
    metric:
        One of :data:`SUPPORTED_METRICS`.  ``GEOM`` is the float
        identity; ``EUC_2D`` rounds to nearest (TSPLIB nint);
        ``CEIL_2D`` rounds up; ``ATT`` is the pseudo-Euclidean metric
        (``r = sqrt(d²/10)`` rounded *up* to the nearest integer).
    sq:
        Optional squared distances (needed by ATT; derived from ``raw``
        when omitted).
    """
    if metric == "GEOM":
        return raw
    if metric == "EUC_2D":
        return np.floor(raw + 0.5)
    if metric == "CEIL_2D":
        return np.ceil(raw)
    if metric == "ATT":
        squared = raw * raw if sq is None else sq
        r = np.sqrt(squared / 10.0)
        t = np.floor(r + 0.5)
        return np.where(t < r, t + 1.0, t)
    raise TSPError(f"unsupported edge_weight_type {metric!r}")


@dataclass
class TSPInstance:
    """A symmetric Euclidean travelling-salesman instance.

    Parameters
    ----------
    coords:
        ``(n, 2)`` float array of city coordinates.
    name:
        Display name (e.g. ``"pcb3038-synthetic"``).
    comment:
        Free-form provenance string (generator parameters, TSPLIB
        COMMENT field, ...).
    edge_weight_type:
        TSPLIB-style metric tag.  ``EUC_2D`` (rounded-to-nearest-int
        Euclidean, the TSPLIB convention) and ``GEOM`` (plain float
        Euclidean) are supported.
    """

    coords: np.ndarray
    name: str = "unnamed"
    comment: str = ""
    edge_weight_type: str = "GEOM"
    _matrix: Optional[np.ndarray] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        coords = np.asarray(self.coords, dtype=np.float64)
        if coords.ndim != 2 or coords.shape[1] != 2:
            raise TSPError(
                f"coords must have shape (n, 2), got {coords.shape}"
            )
        if coords.shape[0] < 2:
            raise TSPError("an instance needs at least 2 cities")
        if not np.all(np.isfinite(coords)):
            raise TSPError("coords contain non-finite values")
        if self.edge_weight_type not in SUPPORTED_METRICS:
            raise TSPError(
                f"unsupported edge_weight_type {self.edge_weight_type!r}; "
                f"supported: {SUPPORTED_METRICS}"
            )
        self.coords = coords

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of cities."""
        return int(self.coords.shape[0])

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return (
            f"TSPInstance(name={self.name!r}, n={self.n}, "
            f"metric={self.edge_weight_type})"
        )

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def _round(self, d: np.ndarray) -> np.ndarray:
        return apply_metric(d, self.edge_weight_type)

    def distance(self, i: int, j: int) -> float:
        """Distance between cities ``i`` and ``j``."""
        d = np.hypot(*(self.coords[i] - self.coords[j]))
        return float(apply_metric(np.asarray(d), self.edge_weight_type))

    def distances_from(self, i: int, targets: Optional[np.ndarray] = None) -> np.ndarray:
        """Distances from city ``i`` to ``targets`` (or all cities)."""
        pts = self.coords if targets is None else self.coords[np.asarray(targets)]
        d = np.hypot(pts[:, 0] - self.coords[i, 0], pts[:, 1] - self.coords[i, 1])
        return self._round(d)

    def distance_block(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Dense distance sub-matrix between city index arrays."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        return self._round(_euclidean_block(self.coords[rows], self.coords[cols]))

    def distance_matrix(self) -> np.ndarray:
        """Full dense distance matrix (small instances only).

        Raises
        ------
        TSPError
            If ``n`` exceeds :data:`FULL_MATRIX_LIMIT` — use
            :meth:`distance_block` instead for large instances.
        """
        if self.n > FULL_MATRIX_LIMIT:
            raise TSPError(
                f"refusing to build a {self.n}x{self.n} distance matrix; "
                f"use distance_block() for instances over {FULL_MATRIX_LIMIT}"
            )
        if self._matrix is None:
            idx = np.arange(self.n)
            self._matrix = self.distance_block(idx, idx)
        return self._matrix

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------
    def subinstance(self, cities: np.ndarray, name: Optional[str] = None) -> "TSPInstance":
        """A new instance restricted to ``cities`` (indices kept in order)."""
        cities = np.asarray(cities, dtype=np.int64)
        if cities.size < 2:
            raise TSPError("a subinstance needs at least 2 cities")
        return TSPInstance(
            coords=self.coords[cities].copy(),
            name=name or f"{self.name}[{cities.size}]",
            comment=f"subinstance of {self.name}",
            edge_weight_type=self.edge_weight_type,
        )

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` of the coordinates."""
        mins = self.coords.min(axis=0)
        maxs = self.coords.max(axis=0)
        return float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1])

    def area(self) -> float:
        """Bounding-box area (used by the BHH tour-length estimate)."""
        xmin, ymin, xmax, ymax = self.bounding_box()
        return (xmax - xmin) * (ymax - ymin)
