"""Reference solution lengths and CPU-baseline constants.

Three kinds of references are provided:

1. :data:`BEST_KNOWN_LENGTHS` — published optimal tour lengths for the
   real TSPLIB instances the paper evaluates (from the TSPLIB optimal
   solutions page; all of these have been solved to proven optimality).
   Used only when the user supplies the *real* TSPLIB files.
2. :data:`CONCORDE_RUNTIMES_S` — the Concorde CPU wall-times the paper
   quotes in Sec. VI (22 h / 7 d / 155 d) as the speedup baseline.
3. :func:`reference_length` — for *synthetic* analogs, the reference is
   computed: the best of greedy-edge and nearest-neighbour construction
   improved with 2-opt + Or-opt.  For random Euclidean instances this
   sits a few percent above the true optimum, so optimal ratios
   measured against it are slightly optimistic (documented in
   EXPERIMENTS.md).
4. :func:`bhh_estimate` — the Beardwood–Halton–Hammersley asymptotic
   expected optimal length ``0.7124 * sqrt(n * A)`` for uniform points,
   useful as an O(1) sanity bound for very large instances.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.tsp.instance import TSPInstance

#: Proven-optimal tour lengths for the paper's TSPLIB instances.
BEST_KNOWN_LENGTHS: Dict[str, float] = {
    "pcb3038": 137_694.0,
    "rl5915": 565_530.0,
    "rl5934": 556_045.0,
    "rl11849": 923_288.0,
    "usa13509": 19_982_859.0,
    "d15112": 1_573_084.0,
    "d18512": 645_238.0,
    "pla33810": 66_048_945.0,
    "pla85900": 142_382_641.0,
}

#: Concorde CPU time-to-optimal quoted by the paper (Sec. VI, ref [13]).
CONCORDE_RUNTIMES_S: Dict[str, float] = {
    "pcb3038": 22 * 3600.0,  # "22 hours"
    "rl5934": 7 * 24 * 3600.0,  # "7 days"
    "rl11849": 155 * 24 * 3600.0,  # "155 days"
}

#: BHH constant for the expected optimal tour length of uniform points.
BHH_CONSTANT = 0.7124


def bhh_estimate(instance: TSPInstance) -> float:
    """Beardwood–Halton–Hammersley estimate ``0.7124 * sqrt(n * A)``.

    ``A`` is the bounding-box area.  Exact asymptotically for uniform
    points; a useful lower-ballpark for clustered instances.
    """
    return BHH_CONSTANT * math.sqrt(instance.n * instance.area())


def reference_length(
    instance: TSPInstance,
    seed: int = 0,
    max_exact_n: int = 12,
    two_opt_rounds: Optional[int] = None,
) -> float:
    """Compute a strong CPU reference tour length for ``instance``.

    * ``n <= max_exact_n``: exact optimum via Held–Karp.
    * otherwise: best of greedy-edge and nearest-neighbour construction,
      improved by neighbour-list 2-opt and Or-opt passes.

    This is the denominator of the "optimal ratio" metric for synthetic
    instances (see module docstring for the bias caveat).
    """
    # Imported here to avoid a circular import at package load time.
    from repro.tsp.baselines.greedy_edge import greedy_edge_tour
    from repro.tsp.baselines.held_karp import held_karp
    from repro.tsp.baselines.nearest_neighbor import nearest_neighbor_tour
    from repro.tsp.baselines.two_opt import or_opt_improve, two_opt_improve
    from repro.tsp.tour import tour_length

    if instance.n <= max_exact_n:
        _, length = held_karp(instance)
        return length

    candidates = []
    for builder in (nearest_neighbor_tour, greedy_edge_tour):
        tour = builder(instance, seed=seed)
        tour = two_opt_improve(instance, tour, max_rounds=two_opt_rounds)
        tour = or_opt_improve(instance, tour)
        candidates.append(tour_length(instance, tour))
    return float(min(candidates))


def lookup_best_known(name: str) -> Optional[float]:
    """Best-known length for a real TSPLIB instance name, if recorded.

    Synthetic analog names (``pcb3038-synthetic``) deliberately do not
    match, so they never get scored against the real optimum.
    """
    return BEST_KNOWN_LENGTHS.get(name)
