"""Tours: validation, length evaluation, and simple manipulations.

A tour is a permutation of ``range(n)`` interpreted cyclically (the
salesman returns from the last city to the first).  :class:`Tour` is a
thin immutable wrapper used by solver results; the free functions
operate on plain integer arrays so hot loops stay allocation-free.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import numpy as np

from repro.errors import TourError
from repro.tsp.instance import TSPInstance
from repro.utils.rng import SeedLike, spawn_rng


def validate_tour(tour: np.ndarray, n: Optional[int] = None) -> np.ndarray:
    """Check that ``tour`` is a permutation of ``range(n)``.

    Returns the tour as an ``int64`` array; raises :class:`TourError`
    otherwise.  When ``n`` is omitted it is taken as ``len(tour)``.
    """
    arr = np.asarray(tour, dtype=np.int64)
    if arr.ndim != 1:
        raise TourError(f"tour must be 1-D, got shape {arr.shape}")
    size = arr.size if n is None else n
    if arr.size != size:
        raise TourError(f"tour has {arr.size} cities, expected {size}")
    if size == 0:
        raise TourError("tour is empty")
    seen = np.zeros(size, dtype=bool)
    if arr.min(initial=0) < 0 or arr.max(initial=0) >= size:
        raise TourError("tour contains out-of-range city indices")
    seen[arr] = True
    if not seen.all():
        raise TourError("tour is not a permutation (missing/duplicate cities)")
    return arr


def tour_length(instance: TSPInstance, tour: np.ndarray) -> float:
    """Total cyclic length of ``tour`` on ``instance``.

    Vectorised: computes all leg lengths in one shot, so it is safe for
    10^5-city tours.
    """
    from repro.tsp.instance import apply_metric

    arr = np.asarray(tour, dtype=np.int64)
    nxt = np.roll(arr, -1)
    a = instance.coords[arr]
    b = instance.coords[nxt]
    d = np.hypot(a[:, 0] - b[:, 0], a[:, 1] - b[:, 1])
    return float(apply_metric(d, instance.edge_weight_type).sum())


def random_tour(n: int, seed: SeedLike = None) -> np.ndarray:
    """A uniformly random permutation of ``range(n)``."""
    if n < 1:
        raise TourError(f"n must be >= 1, got {n}")
    return spawn_rng(seed).permutation(n).astype(np.int64)


class Tour:
    """An immutable validated tour bound to an instance.

    Provides cached length, optimal-ratio computation, and segment
    queries used by examples and reports.
    """

    def __init__(self, instance: TSPInstance, order: Iterable[int]) -> None:
        self._instance = instance
        self._order = validate_tour(np.asarray(list(order)), instance.n)
        self._order.setflags(write=False)
        self._length: Optional[float] = None

    @property
    def instance(self) -> TSPInstance:
        """The instance this tour belongs to."""
        return self._instance

    @property
    def order(self) -> np.ndarray:
        """Read-only city visiting order."""
        return self._order

    @property
    def n(self) -> int:
        """Number of cities."""
        return int(self._order.size)

    @property
    def length(self) -> float:
        """Total cyclic tour length (cached)."""
        if self._length is None:
            self._length = tour_length(self._instance, self._order)
        return self._length

    def ratio_to(self, reference_length: float) -> float:
        """Optimal ratio vs a reference length (paper's quality metric)."""
        if reference_length <= 0:
            raise TourError(f"reference length must be > 0, got {reference_length}")
        return self.length / reference_length

    def position_of(self, city: int) -> int:
        """Index of ``city`` in the visiting order."""
        pos = np.nonzero(self._order == city)[0]
        if pos.size == 0:
            raise TourError(f"city {city} not in tour")
        return int(pos[0])

    def legs(self) -> np.ndarray:
        """``(n, 2)`` array of consecutive city pairs (cyclic)."""
        return np.stack([self._order, np.roll(self._order, -1)], axis=1)

    def __iter__(self) -> Iterator[int]:
        return iter(self._order.tolist())

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Tour(n={self.n}, length={self.length:.1f})"
