"""SVG rendering of instances and tours.

Dependency-free visual output: an instance's cities and (optionally) a
tour polyline are written as a standalone ``.svg``, so results can be
eyeballed without matplotlib.  Used by the examples; the tests parse
the generated XML structure.
"""

from __future__ import annotations

import os
from typing import Optional, TextIO, Union

import numpy as np

from repro.errors import TSPError
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import validate_tour


def render_tour_svg(
    instance: TSPInstance,
    tour: Optional[np.ndarray] = None,
    width: int = 800,
    margin: int = 20,
    point_radius: float = 2.0,
    stroke: str = "#1f6feb",
    title: Optional[str] = None,
) -> str:
    """Render an instance (and optional tour) as an SVG document string.

    The viewport preserves the instance's aspect ratio at the given
    pixel ``width``.
    """
    if width < 2 * margin + 10:
        raise TSPError(f"width {width} too small for margin {margin}")
    xmin, ymin, xmax, ymax = instance.bounding_box()
    span_x = max(xmax - xmin, 1e-12)
    span_y = max(ymax - ymin, 1e-12)
    inner_w = width - 2 * margin
    scale = inner_w / span_x
    height = int(round(span_y * scale)) + 2 * margin

    def to_px(pt: np.ndarray) -> tuple[float, float]:
        x = margin + (pt[0] - xmin) * scale
        # SVG's y axis points down; flip so north stays up.
        y = margin + (ymax - pt[1]) * scale
        return float(x), float(y)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<title>{title or instance.name}</title>',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]

    if tour is not None:
        order = validate_tour(tour, instance.n)
        points = [to_px(instance.coords[int(c)]) for c in order]
        points.append(points[0])  # close the cycle
        path = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        parts.append(
            f'<polyline points="{path}" fill="none" stroke="{stroke}" '
            f'stroke-width="1.2"/>'
        )

    for pt in instance.coords:
        x, y = to_px(pt)
        parts.append(
            f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{point_radius}" '
            f'fill="#24292f"/>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def save_tour_svg(
    instance: TSPInstance,
    path: Union[str, os.PathLike, TextIO],
    tour: Optional[np.ndarray] = None,
    **kwargs,
) -> None:
    """Render and write an SVG to a path or text stream."""
    svg = render_tour_svg(instance, tour=tour, **kwargs)
    if hasattr(path, "write"):
        path.write(svg)
        return
    with open(path, "w", encoding="utf-8") as f:
        f.write(svg)
