"""Greedy-edge (greedy matching) tour construction.

Sort edges by length and add an edge whenever it does not create a
vertex of degree 3 or a premature sub-cycle; the surviving edges form a
Hamiltonian cycle.  Typically ~15% above optimal on uniform instances,
noticeably better than nearest-neighbour.

To avoid materialising all O(n²) edges, only the ``k`` nearest
neighbours of every city are considered as candidates (k-NN via a
simple uniform grid bucketing — no scipy dependency).  If the candidate
set cannot complete the cycle, the remaining path endpoints are linked
greedily, which is rare for k >= 12 on planar point sets.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.tsp.instance import TSPInstance
from repro.utils.rng import SeedLike


def _knn_candidate_edges(
    coords: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (u, v, dist) arrays for the union of k-NN edges."""
    n = coords.shape[0]
    k = min(k, n - 1)
    # Grid bucketing: expected O(n * k) neighbour search.
    from repro.tsp.baselines.two_opt import build_neighbor_lists

    nbrs = build_neighbor_lists(coords, k)
    u = np.repeat(np.arange(n, dtype=np.int64), k)
    v = nbrs.reshape(-1)
    keep = u < v  # dedupe symmetric pairs
    # Keep asymmetric ones too (j may be in i's kNN but not vice versa).
    anti = u > v
    pair_lo = np.where(keep, u, v)[keep | anti]
    pair_hi = np.where(keep, v, u)[keep | anti]
    packed = pair_lo * np.int64(n) + pair_hi
    uniq = np.unique(packed)
    uu = (uniq // n).astype(np.int64)
    vv = (uniq % n).astype(np.int64)
    d = np.hypot(
        coords[uu, 0] - coords[vv, 0], coords[uu, 1] - coords[vv, 1]
    )
    return uu, vv, d


class _DisjointSet:
    """Union-find with path compression for sub-cycle detection."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return int(root)

    def union(self, a: int, b: int) -> None:
        self.parent[self.find(a)] = self.find(b)


def greedy_edge_tour(
    instance: TSPInstance,
    k_neighbors: int = 16,
    seed: SeedLike = None,  # accepted for interface uniformity; unused
) -> np.ndarray:
    """Construct a tour with the greedy-edge heuristic.

    Parameters
    ----------
    instance:
        The TSP instance.
    k_neighbors:
        Number of nearest neighbours per city considered as candidate
        edges.  Larger values improve quality slightly at more memory.
    seed:
        Unused (the heuristic is deterministic); present so all
        constructors share the ``(instance, seed=...)`` signature.
    """
    n = instance.n
    coords = instance.coords
    u, v, d = _knn_candidate_edges(coords, k_neighbors)
    order = np.argsort(d, kind="stable")

    degree = np.zeros(n, dtype=np.int64)
    dsu = _DisjointSet(n)
    adjacency: List[List[int]] = [[] for _ in range(n)]
    added = 0
    for e in order:
        a, b = int(u[e]), int(v[e])
        if degree[a] >= 2 or degree[b] >= 2:
            continue
        if dsu.find(a) == dsu.find(b):
            continue  # would close a sub-cycle early
        adjacency[a].append(b)
        adjacency[b].append(a)
        degree[a] += 1
        degree[b] += 1
        dsu.union(a, b)
        added += 1
        if added == n - 1:
            break

    # Link leftover path endpoints (degree < 2) greedily by proximity.
    endpoints = np.nonzero(degree < 2)[0].tolist()
    while len(endpoints) > 2:
        a = endpoints.pop()
        if degree[a] >= 2:
            continue
        best, best_d = -1, np.inf
        for b in endpoints:
            if b == a or degree[b] >= 2 or dsu.find(a) == dsu.find(b):
                continue
            dist = float(np.hypot(*(coords[a] - coords[b])))
            if dist < best_d:
                best, best_d = b, dist
        if best < 0:
            continue
        adjacency[a].append(best)
        adjacency[best].append(a)
        degree[a] += 1
        degree[best] += 1
        dsu.union(a, best)
        endpoints = [e for e in endpoints if degree[e] < 2] + (
            [a] if degree[a] < 2 else []
        )
    # Close the final cycle between the last two endpoints.
    final = np.nonzero(degree < 2)[0]
    if final.size == 2:
        a, b = int(final[0]), int(final[1])
        adjacency[a].append(b)
        adjacency[b].append(a)

    # Walk the cycle into a tour order.
    tour = np.empty(n, dtype=np.int64)
    tour[0] = 0
    prev, current = -1, 0
    for step in range(1, n):
        nxt = adjacency[current][0]
        if nxt == prev:
            nxt = adjacency[current][1]
        tour[step] = nxt
        prev, current = current, nxt
    return tour
