"""Nearest-neighbour tour construction.

The classic greedy constructive heuristic: start somewhere, repeatedly
hop to the closest unvisited city.  Produces tours ~25% above optimal
on uniform instances; used as one of the starting points for the local
search reference and as the initial tour of the CPU SA baseline.

Implementation is vectorised per step (O(n) distance evaluations per
hop, O(n²) total) which is fine up to ~10^5 cities.
"""

from __future__ import annotations

import numpy as np

from repro.errors import TSPError
from repro.tsp.instance import TSPInstance
from repro.utils.rng import SeedLike, spawn_rng


def nearest_neighbor_tour(
    instance: TSPInstance,
    start: int | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Build a tour by always visiting the closest unvisited city.

    Parameters
    ----------
    instance:
        The TSP instance.
    start:
        Starting city; random when omitted.
    seed:
        Seed used only to pick the starting city when ``start`` is None.
    """
    n = instance.n
    if start is None:
        start = int(spawn_rng(seed).integers(0, n))
    if not 0 <= start < n:
        raise TSPError(f"start city {start} out of range 0..{n - 1}")

    coords = instance.coords
    visited = np.zeros(n, dtype=bool)
    tour = np.empty(n, dtype=np.int64)
    tour[0] = start
    visited[start] = True
    current = start
    # `remaining` holds indices of unvisited cities; we swap-remove.
    remaining = np.concatenate([np.arange(start), np.arange(start + 1, n)])
    for step in range(1, n):
        pts = coords[remaining]
        d = np.hypot(pts[:, 0] - coords[current, 0], pts[:, 1] - coords[current, 1])
        k = int(np.argmin(d))
        current = int(remaining[k])
        tour[step] = current
        visited[current] = True
        remaining[k] = remaining[-1]
        remaining = remaining[:-1]
    return tour
