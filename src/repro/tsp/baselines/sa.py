"""Classical CPU simulated annealing for TSP.

This is the software analogue of what the CIM annealer computes: a
Metropolis chain over city-order *swap* moves (the paper's PBM 4-spin
update corresponds exactly to swapping the visiting order of two
cities) plus 2-opt-style segment reversals, under a geometric
temperature schedule.  It serves as:

* the **CPU baseline** for convergence/quality comparisons
  (Fig. 2-style energy traces, ablation benches);
* a correctness oracle: with enough iterations it approaches the same
  quality band as the hardware-simulated annealer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.ising.numerics import boltzmann_accept_probability
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import tour_length, validate_tour
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class SAParams:
    """Parameters for :func:`simulated_annealing_tsp`.

    Attributes
    ----------
    n_iterations:
        Total proposed moves.
    t_start, t_end:
        Initial / final temperatures of the geometric schedule, as
        multiples of the mean leg length (scale-free).
    move_mix:
        Probability of proposing a segment reversal (2-opt move); the
        complement proposes an order swap (PBM-style move).
    record_every:
        Record the tour length every this many iterations (0 = never).
    """

    n_iterations: int = 200_000
    t_start: float = 1.0
    t_end: float = 0.005
    move_mix: float = 0.5
    record_every: int = 0

    def __post_init__(self) -> None:
        if self.n_iterations < 1:
            raise ConfigError(f"n_iterations must be >= 1, got {self.n_iterations}")
        if self.t_start <= 0 or self.t_end <= 0:
            raise ConfigError("temperatures must be > 0")
        if self.t_end > self.t_start:
            raise ConfigError("t_end must be <= t_start")
        if not 0.0 <= self.move_mix <= 1.0:
            raise ConfigError(f"move_mix must be in [0,1], got {self.move_mix}")


@dataclass
class SAResult:
    """Result of the CPU SA baseline."""

    tour: np.ndarray
    length: float
    accepted_moves: int
    proposed_moves: int
    trace: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposed moves that were accepted."""
        return self.accepted_moves / max(1, self.proposed_moves)


def _leg(coords: np.ndarray, a: int, b: int) -> float:
    return float(np.hypot(coords[a, 0] - coords[b, 0], coords[a, 1] - coords[b, 1]))


def simulated_annealing_tsp(
    instance: TSPInstance,
    params: Optional[SAParams] = None,
    initial_tour: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> SAResult:
    """Anneal a tour with Metropolis swap + reversal moves.

    Parameters
    ----------
    instance:
        The problem.
    params:
        Schedule and move mix; defaults to :class:`SAParams`.
    initial_tour:
        Starting permutation (random when omitted).
    seed:
        RNG seed for the chain.
    """
    params = params or SAParams()
    rng = spawn_rng(seed)
    n = instance.n
    coords = instance.coords

    if initial_tour is None:
        tour = rng.permutation(n).astype(np.int64)
    else:
        tour = validate_tour(initial_tour, n).copy()

    length = tour_length(instance, tour)
    mean_leg = length / n
    t_start = params.t_start * mean_leg
    t_end = params.t_end * mean_leg
    decay = (t_end / t_start) ** (1.0 / max(1, params.n_iterations - 1))

    accepted = 0
    trace: List[Tuple[int, float]] = []
    temp = t_start
    for it in range(params.n_iterations):
        if params.record_every and it % params.record_every == 0:
            trace.append((it, length))
        i, j = rng.integers(0, n, size=2)
        if i == j:
            temp *= decay
            continue
        i, j = int(min(i, j)), int(max(i, j))
        if rng.random() < params.move_mix and j - i >= 2 and not (i == 0 and j == n - 1):
            # Segment reversal (2-opt): swap edges (i-1,i) and (j,j+1).
            a, b = int(tour[(i - 1) % n]), int(tour[i])
            c, d = int(tour[j]), int(tour[(j + 1) % n])
            delta = _leg(coords, a, c) + _leg(coords, b, d) \
                - _leg(coords, a, b) - _leg(coords, c, d)
            if delta <= 0 or rng.random() < boltzmann_accept_probability(
                delta, temp
            ):
                tour[i : j + 1] = tour[i : j + 1][::-1]
                length += delta
                accepted += 1
        else:
            # Order swap (PBM 4-spin move): exchange cities at i and j.
            ci, cj = int(tour[i]), int(tour[j])
            ip, iN = int(tour[(i - 1) % n]), int(tour[(i + 1) % n])
            jp, jN = int(tour[(j - 1) % n]), int(tour[(j + 1) % n])
            if iN == cj:  # adjacent (i, j=i+1)
                delta = (
                    _leg(coords, ip, cj) + _leg(coords, ci, jN)
                    - _leg(coords, ip, ci) - _leg(coords, cj, jN)
                )
            elif jN == ci:  # adjacent wrapping (j = n-1, i = 0)
                delta = (
                    _leg(coords, jp, ci) + _leg(coords, cj, iN)
                    - _leg(coords, jp, cj) - _leg(coords, ci, iN)
                )
            else:
                delta = (
                    _leg(coords, ip, cj) + _leg(coords, cj, iN)
                    + _leg(coords, jp, ci) + _leg(coords, ci, jN)
                    - _leg(coords, ip, ci) - _leg(coords, ci, iN)
                    - _leg(coords, jp, cj) - _leg(coords, cj, jN)
                )
            if delta <= 0 or rng.random() < boltzmann_accept_probability(
                delta, temp
            ):
                tour[i], tour[j] = cj, ci
                length += delta
                accepted += 1
        temp *= decay

    # Re-derive the length to cancel accumulated float error.
    length = tour_length(instance, tour)
    if params.record_every:
        trace.append((params.n_iterations, length))
    return SAResult(
        tour=tour,
        length=length,
        accepted_moves=accepted,
        proposed_moves=params.n_iterations,
        trace=trace,
    )
