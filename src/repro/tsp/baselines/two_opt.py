"""Neighbour-list 2-opt and Or-opt local search.

These improvement heuristics turn the constructive tours into strong
references: greedy-edge + 2-opt + Or-opt lands ~4-6% above optimal on
uniform Euclidean instances, which is the reference quality assumed by
EXPERIMENTS.md for synthetic analogs.

Both searches use:

* **k-nearest-neighbour candidate lists** built with a uniform-grid
  bucketing (:func:`build_neighbor_lists`) so the move neighbourhood is
  O(n·k) rather than O(n²);
* **don't-look bits** so converged cities are skipped until one of
  their tour edges changes.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np

from repro.errors import TSPError
from repro.tsp.instance import TSPInstance

_EPS = 1e-10


def build_neighbor_lists(coords: np.ndarray, k: int) -> np.ndarray:
    """``(n, k)`` array of each city's k nearest neighbours.

    Uses a uniform grid with ~1 point per cell and ring search, giving
    expected O(n·k) work on non-degenerate point sets.  Falls back to
    brute force for tiny inputs.
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = coords.shape[0]
    if k < 1:
        raise TSPError(f"k must be >= 1, got {k}")
    k = min(k, n - 1)
    if n <= 512:
        diff = coords[:, None, :] - coords[None, :, :]
        d = np.sqrt((diff * diff).sum(-1))
        np.fill_diagonal(d, np.inf)
        return np.argsort(d, axis=1, kind="stable")[:, :k].astype(np.int64)

    mins = coords.min(axis=0)
    span = np.maximum(coords.max(axis=0) - mins, 1e-12)
    n_cells = max(1, int(np.sqrt(n)))
    cell_size = span / n_cells
    cell_ids = np.minimum(
        ((coords - mins) / cell_size).astype(np.int64), n_cells - 1
    )
    flat = cell_ids[:, 0] * n_cells + cell_ids[:, 1]
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    starts = np.searchsorted(sorted_flat, np.arange(n_cells * n_cells))
    ends = np.searchsorted(sorted_flat, np.arange(n_cells * n_cells), side="right")

    def cell_points(cx: int, cy: int) -> np.ndarray:
        if not (0 <= cx < n_cells and 0 <= cy < n_cells):
            return np.empty(0, dtype=np.int64)
        f = cx * n_cells + cy
        return order[starts[f] : ends[f]]

    cell_min = float(min(cell_size))
    result = np.empty((n, k), dtype=np.int64)
    for i in range(n):
        cx, cy = int(cell_ids[i, 0]), int(cell_ids[i, 1])
        candidates = [cell_points(cx, cy)]
        count = candidates[0].size - 1
        ring = 0
        # Expand rings until the k-th best distance is provably closed:
        # every point in ring r lies at distance >= (r-1)·cell_min, so
        # once (ring)·cell_min exceeds the current k-th best, farther
        # rings cannot improve the answer.
        while ring < 2 * n_cells:
            if count >= k:
                cand = np.concatenate(candidates)
                cand = cand[cand != i]
                d = np.hypot(
                    coords[cand, 0] - coords[i, 0],
                    coords[cand, 1] - coords[i, 1],
                )
                kth = np.partition(d, k - 1)[k - 1] if cand.size >= k else np.inf
                if ring * cell_min >= kth:
                    break
            ring += 1
            for dx in range(-ring, ring + 1):
                for dy in range(-ring, ring + 1):
                    if max(abs(dx), abs(dy)) != ring:
                        continue
                    pts = cell_points(cx + dx, cy + dy)
                    if pts.size:
                        candidates.append(pts)
                        count += pts.size
        cand = np.concatenate(candidates)
        cand = cand[cand != i]
        d = np.hypot(
            coords[cand, 0] - coords[i, 0], coords[cand, 1] - coords[i, 1]
        )
        if cand.size > k:
            sel = np.argpartition(d, k)[:k]
            sel = sel[np.argsort(d[sel], kind="stable")]
        else:
            sel = np.argsort(d, kind="stable")
        chosen = cand[sel][:k]
        if chosen.size < k:  # degenerate geometry; pad by brute force
            d_all = np.hypot(
                coords[:, 0] - coords[i, 0], coords[:, 1] - coords[i, 1]
            )
            d_all[i] = np.inf
            chosen = np.argsort(d_all, kind="stable")[:k]
        result[i] = chosen
    return result


def _dist(coords: np.ndarray, a: int, b: int) -> float:
    return float(
        np.hypot(coords[a, 0] - coords[b, 0], coords[a, 1] - coords[b, 1])
    )


def two_opt_improve(
    instance: TSPInstance,
    tour: np.ndarray,
    k_neighbors: int = 10,
    max_rounds: Optional[int] = None,
    neighbors: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Improve ``tour`` with neighbour-list 2-opt until a local optimum.

    Parameters
    ----------
    instance, tour:
        Problem and starting permutation (not modified).
    k_neighbors:
        Candidate-list width; 8-12 captures nearly all improving 2-opt
        moves on Euclidean instances.
    max_rounds:
        Optional cap on full improvement sweeps (None = to convergence).
    neighbors:
        Precomputed neighbour lists (from :func:`build_neighbor_lists`)
        to share across calls.
    """
    coords = instance.coords
    n = instance.n
    tour = np.array(tour, dtype=np.int64)
    pos = np.empty(n, dtype=np.int64)
    pos[tour] = np.arange(n)
    if neighbors is None:
        neighbors = build_neighbor_lists(coords, k_neighbors)

    dont_look = np.zeros(n, dtype=bool)
    queue = deque(tour.tolist())

    def reverse_segment(i: int, j: int) -> None:
        """Reverse cyclic tour segment between positions i..j inclusive."""
        if i > j:
            # Wrapping segment: reversing the complement [j+1 .. i-1]
            # swaps the same two tour edges, so reverse that instead.
            # (i == j+1 cannot occur: it would mean reversing the whole
            # tour, and those moves are filtered before we get here.)
            i, j = j + 1, i - 1
        if j - i > n // 2 and i > 0 and j < n - 1:
            # Reverse the shorter complement instead (same cycle).
            seg = np.concatenate([tour[j + 1 :], tour[:i]])
            seg = seg[::-1]
            tour[j + 1 :] = seg[: n - j - 1]
            tour[:i] = seg[n - j - 1 :]
            pos[tour[j + 1 :]] = np.arange(j + 1, n)
            pos[tour[:i]] = np.arange(i)
        else:
            tour[i : j + 1] = tour[i : j + 1][::-1]
            pos[tour[i : j + 1]] = np.arange(i, j + 1)

    rounds = 0
    while queue:
        if max_rounds is not None and rounds >= max_rounds * n:
            break
        rounds += 1
        a = queue.popleft()
        if dont_look[a]:
            continue
        dont_look[a] = True
        improved = False
        for direction in (1, -1):
            pa = pos[a]
            t2 = int(tour[(pa + direction) % n])
            d_at2 = _dist(coords, a, t2)
            for b in neighbors[a]:
                b = int(b)
                d_ab = _dist(coords, a, b)
                if d_ab >= d_at2 - _EPS:
                    break  # neighbours sorted: no gain possible further
                t4 = int(tour[(pos[b] + direction) % n])
                if t4 == a or b == t2:
                    continue
                delta = d_ab + _dist(coords, t2, t4) - d_at2 - _dist(coords, b, t4)
                if delta < -_EPS:
                    if direction == 1:
                        reverse_segment(int((pa + 1) % n), int(pos[b]))
                    else:
                        reverse_segment(int(pos[b]), int((pa - 1) % n))
                    improved = True
                    for city in (a, b, t2, t4):
                        if dont_look[city]:
                            dont_look[city] = False
                            queue.append(city)
                    break
            if improved:
                break
        if improved:
            dont_look[a] = False
            queue.append(a)
    return tour


def or_opt_improve(
    instance: TSPInstance,
    tour: np.ndarray,
    k_neighbors: int = 8,
    segment_lengths: tuple[int, ...] = (1, 2, 3),
    neighbors: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Or-opt: relocate short segments (1-3 cities) to better positions.

    Complements 2-opt (which cannot move a city between two distant
    tour regions without reversing everything in between).
    """
    coords = instance.coords
    n = instance.n
    tour = np.array(tour, dtype=np.int64)
    if n < 5:
        return tour
    pos = np.empty(n, dtype=np.int64)
    pos[tour] = np.arange(n)
    if neighbors is None:
        neighbors = build_neighbor_lists(coords, k_neighbors)

    improved_any = True
    passes = 0
    while improved_any and passes < 8:
        improved_any = False
        passes += 1
        for seg_len in segment_lengths:
            i = 0
            while i < n:
                s_pos = i
                e_pos = (i + seg_len - 1) % n
                if e_pos < s_pos:  # skip wrap segments for simplicity
                    i += 1
                    continue
                s, e = int(tour[s_pos]), int(tour[e_pos])
                prev_city = int(tour[(s_pos - 1) % n])
                next_city = int(tour[(e_pos + 1) % n])
                if prev_city == e or next_city == s:
                    i += 1
                    continue
                removal_gain = (
                    _dist(coords, prev_city, s)
                    + _dist(coords, e, next_city)
                    - _dist(coords, prev_city, next_city)
                )
                if removal_gain <= _EPS:
                    i += 1
                    continue
                best_delta, best_c, best_rev = -_EPS, -1, False
                for c in neighbors[s]:
                    c = int(c)
                    pc = int(pos[c])
                    # c must lie outside the segment (and not be prev).
                    if s_pos <= pc <= e_pos or c == prev_city:
                        continue
                    c_next = int(tour[(pc + 1) % n])
                    if s_pos <= int(pos[c_next]) <= e_pos:
                        continue
                    base = _dist(coords, c, c_next)
                    for rev in (False, True):
                        head, tail = (s, e) if not rev else (e, s)
                        insert_cost = (
                            _dist(coords, c, head)
                            + _dist(coords, tail, c_next)
                            - base
                        )
                        delta = removal_gain - insert_cost
                        if delta > best_delta:
                            best_delta, best_c, best_rev = delta, c, rev
                if best_c >= 0:
                    segment = tour[s_pos : e_pos + 1].copy()
                    if best_rev:
                        segment = segment[::-1]
                    rest = np.concatenate([tour[:s_pos], tour[e_pos + 1 :]])
                    # position of best_c within `rest`
                    c_idx = int(np.nonzero(rest == best_c)[0][0])
                    tour = np.concatenate(
                        [rest[: c_idx + 1], segment, rest[c_idx + 1 :]]
                    )
                    pos[tour] = np.arange(n)
                    improved_any = True
                i += 1
    return tour
