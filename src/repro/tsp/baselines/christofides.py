"""Christofides' algorithm (1.5-approximation for metric TSP).

The classic quality anchor for metric TSP:

1. minimum spanning tree T;
2. minimum-weight perfect matching M on T's odd-degree vertices;
3. Eulerian circuit of T ∪ M, shortcut to a Hamiltonian tour.

With an exact matching the tour is provably ≤ 1.5 × optimal — a bound
no other baseline in this repository carries — so the test suite uses
it to sandwich the annealer's optimal ratios.  The matching uses
:func:`networkx.min_weight_matching` (blossom algorithm); networkx is
an optional dependency, and :class:`repro.errors.TSPError` is raised
with a clear message when it is missing.

Complexity is dominated by the O(k³) matching on k odd-degree nodes,
fine for the few-hundred-city instances the tests use.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import TSPError
from repro.tsp.instance import TSPInstance
from repro.utils.rng import SeedLike


def _minimum_spanning_tree(dist: np.ndarray) -> List[tuple[int, int]]:
    """Prim's MST on a dense distance matrix."""
    n = dist.shape[0]
    in_tree = np.zeros(n, dtype=bool)
    best = np.full(n, np.inf)
    parent = np.full(n, -1, dtype=np.int64)
    in_tree[0] = True
    best_from = dist[0].copy()
    parent[:] = 0
    edges: List[tuple[int, int]] = []
    for _ in range(n - 1):
        candidates = np.where(~in_tree, best_from, np.inf)
        nxt = int(np.argmin(candidates))
        edges.append((int(parent[nxt]), nxt))
        in_tree[nxt] = True
        closer = dist[nxt] < best_from
        update = closer & ~in_tree
        best_from[update] = dist[nxt][update]
        parent[update] = nxt
    return edges


def christofides_tour(
    instance: TSPInstance,
    seed: SeedLike = None,  # accepted for interface uniformity; unused
) -> np.ndarray:
    """Build a Christofides tour (requires networkx for the matching)."""
    try:
        import networkx as nx
    except ImportError:  # pragma: no cover - environment dependent
        raise TSPError(
            "christofides_tour needs networkx for minimum-weight perfect "
            "matching; install the 'analysis' extra"
        ) from None

    n = instance.n
    dist = instance.distance_matrix()

    # 1. Minimum spanning tree.
    mst_edges = _minimum_spanning_tree(dist)
    degree = np.zeros(n, dtype=np.int64)
    for u, v in mst_edges:
        degree[u] += 1
        degree[v] += 1

    # 2. Min-weight perfect matching on odd-degree vertices.  (The
    #    handshake lemma guarantees an even count of odd vertices.)
    odd = np.where(degree % 2 == 1)[0]
    graph = nx.Graph()
    for a_idx in range(odd.size):
        for b_idx in range(a_idx + 1, odd.size):
            a, b = int(odd[a_idx]), int(odd[b_idx])
            graph.add_edge(a, b, weight=float(dist[a, b]))
    matching = nx.min_weight_matching(graph)

    # 3. Eulerian circuit on the multigraph T ∪ M, then shortcut.
    adjacency: Dict[int, List[int]] = {i: [] for i in range(n)}
    for u, v in mst_edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    for u, v in matching:
        adjacency[int(u)].append(int(v))
        adjacency[int(v)].append(int(u))

    # Hierholzer's algorithm.
    stack = [0]
    circuit: List[int] = []
    local = {k: list(v) for k, v in adjacency.items()}
    while stack:
        node = stack[-1]
        if local[node]:
            nxt = local[node].pop()
            local[nxt].remove(node)
            stack.append(nxt)
        else:
            circuit.append(stack.pop())

    seen = np.zeros(n, dtype=bool)
    tour = []
    for node in circuit:
        if not seen[node]:
            seen[node] = True
            tour.append(node)
    return np.asarray(tour, dtype=np.int64)
