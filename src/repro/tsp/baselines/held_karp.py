"""Held–Karp exact TSP solver (dynamic programming over subsets).

O(n² · 2ⁿ) time and O(n · 2ⁿ) memory — practical to ~16 cities, used by
the test suite to verify that heuristics and the clustered annealer
reach (near-)optimal tours on small instances, and by
:func:`repro.tsp.reference.reference_length` for tiny inputs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import TSPError
from repro.tsp.instance import TSPInstance

#: Refuse instances above this size (2^20 subset table ≈ 100 MB+).
MAX_EXACT_N = 16


def held_karp(instance: TSPInstance) -> Tuple[np.ndarray, float]:
    """Solve ``instance`` exactly; return ``(tour, length)``.

    The tour is anchored at city 0 (any rotation is equivalent).

    Raises
    ------
    TSPError
        If the instance has more than :data:`MAX_EXACT_N` cities.
    """
    n = instance.n
    if n > MAX_EXACT_N:
        raise TSPError(
            f"Held-Karp is exponential; refusing n={n} > {MAX_EXACT_N}"
        )
    dist = instance.distance_matrix()
    if n == 2:
        return np.array([0, 1], dtype=np.int64), float(dist[0, 1] * 2)

    m = n - 1  # cities 1..n-1; city 0 is the anchor
    full = 1 << m
    # dp[mask, j] = min cost of a path 0 -> ... -> (j+1) visiting the
    # cities of `mask` (bit j <=> city j+1) exactly.
    dp = np.full((full, m), np.inf)
    parent = np.full((full, m), -1, dtype=np.int64)
    for j in range(m):
        dp[1 << j, j] = dist[0, j + 1]

    for mask in range(1, full):
        # Iterate set bits as path endpoints.
        submask = mask
        while submask:
            jbit = submask & (-submask)
            submask ^= jbit
            j = jbit.bit_length() - 1
            cost = dp[mask, j]
            if not np.isfinite(cost):
                continue
            rest = (~mask) & (full - 1)
            nxt = rest
            while nxt:
                kbit = nxt & (-nxt)
                nxt ^= kbit
                k = kbit.bit_length() - 1
                new_cost = cost + dist[j + 1, k + 1]
                new_mask = mask | kbit
                if new_cost < dp[new_mask, k]:
                    dp[new_mask, k] = new_cost
                    parent[new_mask, k] = j

    closing = dp[full - 1, :] + dist[1:, 0]
    j = int(np.argmin(closing))
    best = float(closing[j])

    # Backtrack the optimal path.
    tour = [0]
    mask = full - 1
    chain = []
    while j >= 0:
        chain.append(j + 1)
        pj = int(parent[mask, j])
        mask ^= 1 << j
        j = pj
    tour.extend(reversed(chain))
    return np.asarray(tour, dtype=np.int64), best
