"""Classical CPU baselines for TSP.

These serve three roles in the reproduction:

* construct *reference tours* for synthetic instances (greedy / NN +
  2-opt + Or-opt), standing in for TSPLIB best-known lengths;
* provide the *CPU simulated-annealing baseline* the clustered
  CIM annealer is compared against;
* provide an *exact solver* (Held–Karp) for small instances, used by
  tests to check optimality gaps.
"""

from repro.tsp.baselines.christofides import christofides_tour
from repro.tsp.baselines.greedy_edge import greedy_edge_tour
from repro.tsp.baselines.held_karp import held_karp
from repro.tsp.baselines.nearest_neighbor import nearest_neighbor_tour
from repro.tsp.baselines.sa import SAParams, simulated_annealing_tsp
from repro.tsp.baselines.two_opt import (
    build_neighbor_lists,
    or_opt_improve,
    two_opt_improve,
)

__all__ = [
    "nearest_neighbor_tour",
    "greedy_edge_tour",
    "christofides_tour",
    "held_karp",
    "two_opt_improve",
    "or_opt_improve",
    "build_neighbor_lists",
    "simulated_annealing_tsp",
    "SAParams",
]
