"""Synthetic TSP instance generators.

The paper evaluates on TSPLIB instances from 3 038 to 85 900 cities
(pcb3038, rl5915, rl5934, rl11849, ..., pla85900).  TSPLIB data is not
redistributable inside this repository and the evaluation environment
has no network access, so every experiment falls back to a
*structure-matched synthetic analog*:

* ``pcb`` instances are drill-hole layouts — points snapped to a fine
  manufacturing grid with dense regular blocks: modelled by
  :func:`pcb_style` (jittered grid with block-structured occupancy).
* ``rl`` instances (Reinelt's "random locations") are non-uniform
  clustered point fields: modelled by :func:`rl_style` (Gaussian
  clusters with a uniform background).
* ``pla`` instances are programmed-logic-array layouts — very large,
  strongly gridded with big empty regions: modelled by
  :func:`pla_style` (coarse macro-blocks of fine grid points).

The analog preserves what the paper's metrics depend on: instance size
``N`` and spatial statistics (cluster structure, local density), which
drive both the clustered annealer's behaviour and the hardware-cost
model (which depends only on ``N``).  Substitution is recorded in
DESIGN.md §2.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import TSPError
from repro.tsp.instance import TSPInstance
from repro.utils.rng import SeedLike, spawn_rng

#: Paper evaluation sizes and their TSPLIB families (Sec. V, Fig. 7).
PAPER_DATASETS = {
    "pcb3038": ("pcb", 3038),
    "rl5915": ("rl", 5915),
    "rl5934": ("rl", 5934),
    "rl11849": ("rl", 11849),
    "usa13509": ("rl", 13509),
    "d15112": ("rl", 15112),
    "d18512": ("rl", 18512),
    "pla33810": ("pla", 33810),
    "pla85900": ("pla", 85900),
}


def circle(
    n: int,
    radius: float = 500.0,
    jitter: float = 0.0,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> TSPInstance:
    """Points on a circle — a known-optimum test oracle.

    With ``jitter == 0`` the optimal tour visits the points in angular
    order and its length is exactly ``2·n·r·sin(π/n)`` (the inscribed
    regular polygon), so solvers can be scored against the true optimum
    at any size.  Points are stored in shuffled order so the identity
    tour is *not* the answer.
    """
    if n < 3:
        raise TSPError(f"n must be >= 3 for a circle, got {n}")
    if radius <= 0:
        raise TSPError(f"radius must be > 0, got {radius}")
    rng = spawn_rng(seed)
    angles = 2.0 * math.pi * np.arange(n) / n
    coords = radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    if jitter > 0:
        coords = coords + rng.normal(0.0, jitter, size=coords.shape)
    rng.shuffle(coords, axis=0)
    return TSPInstance(
        coords,
        name=name or f"circle{n}",
        comment=f"circle r={radius}, jitter={jitter}",
    )


def circle_optimal_length(n: int, radius: float = 500.0) -> float:
    """Exact optimal tour length of :func:`circle` with zero jitter."""
    if n < 3:
        raise TSPError(f"n must be >= 3, got {n}")
    return 2.0 * n * radius * math.sin(math.pi / n)


def random_uniform(
    n: int,
    seed: SeedLike = None,
    side: float = 1000.0,
    name: Optional[str] = None,
) -> TSPInstance:
    """Uniform random points in a ``side`` × ``side`` square."""
    if n < 2:
        raise TSPError(f"n must be >= 2, got {n}")
    rng = spawn_rng(seed)
    coords = rng.uniform(0.0, side, size=(n, 2))
    return TSPInstance(
        coords,
        name=name or f"uniform{n}",
        comment=f"uniform random, side={side}",
    )


def random_clustered(
    n: int,
    n_clusters: int,
    seed: SeedLike = None,
    side: float = 1000.0,
    cluster_std: float = 30.0,
    background_fraction: float = 0.1,
    name: Optional[str] = None,
) -> TSPInstance:
    """Gaussian clusters plus a uniform background.

    ``background_fraction`` of the points are spread uniformly, the rest
    are split evenly across ``n_clusters`` isotropic Gaussians whose
    centres are uniform in the square.
    """
    if n < 2:
        raise TSPError(f"n must be >= 2, got {n}")
    if n_clusters < 1:
        raise TSPError(f"n_clusters must be >= 1, got {n_clusters}")
    if not 0.0 <= background_fraction <= 1.0:
        raise TSPError("background_fraction must be in [0, 1]")
    rng = spawn_rng(seed)
    n_background = int(round(n * background_fraction))
    n_clustered = n - n_background
    centers = rng.uniform(0.1 * side, 0.9 * side, size=(n_clusters, 2))
    assignment = rng.integers(0, n_clusters, size=n_clustered)
    pts = centers[assignment] + rng.normal(0.0, cluster_std, size=(n_clustered, 2))
    background = rng.uniform(0.0, side, size=(n_background, 2))
    coords = np.clip(np.vstack([pts, background]), 0.0, side)
    rng.shuffle(coords, axis=0)
    return TSPInstance(
        coords,
        name=name or f"clustered{n}",
        comment=(
            f"clustered random, k={n_clusters}, std={cluster_std}, "
            f"bg={background_fraction}"
        ),
    )


def pcb_style(n: int, seed: SeedLike = None, name: Optional[str] = None) -> TSPInstance:
    """A pcbXXXX-style drill-layout analog.

    Points are snapped to a fine grid; occupancy follows rectangular
    "component" blocks with dense hole patterns, plus sparse routing
    vias in between — mimicking the banded, gridded structure of the
    TSPLIB ``pcb`` family.
    """
    if n < 2:
        raise TSPError(f"n must be >= 2, got {n}")
    rng = spawn_rng(seed)
    side = 100.0 * math.sqrt(n)  # keep density roughly constant with n
    pitch = side / (4.0 * math.sqrt(n))  # fine drill grid
    n_blocks = max(4, int(math.sqrt(n) / 4))
    blocks = []
    for _ in range(n_blocks):
        cx, cy = rng.uniform(0.1 * side, 0.9 * side, size=2)
        w = rng.uniform(0.05, 0.2) * side
        h = rng.uniform(0.02, 0.1) * side
        blocks.append((cx, cy, w, h))

    n_block_pts = int(n * 0.8)
    n_via_pts = n - n_block_pts
    # Dense hole rows inside component blocks.
    choice = rng.integers(0, n_blocks, size=n_block_pts)
    pts = []
    for b in range(n_blocks):
        count = int(np.sum(choice == b))
        if count == 0:
            continue
        cx, cy, w, h = blocks[b]
        xs = rng.uniform(cx - w / 2, cx + w / 2, size=count)
        ys = rng.uniform(cy - h / 2, cy + h / 2, size=count)
        pts.append(np.stack([xs, ys], axis=1))
    vias = rng.uniform(0.0, side, size=(n_via_pts, 2))
    pts.append(vias)
    coords = np.vstack(pts)[:n]
    # Snap to the drill grid (collisions are fine: EUC distances of 0
    # between duplicate holes exist in the real pcb files too).
    coords = np.round(coords / pitch) * pitch
    rng.shuffle(coords, axis=0)
    return TSPInstance(
        coords,
        name=name or f"pcb{n}-synthetic",
        comment="pcb-style analog: gridded drill blocks + vias",
    )


def rl_style(n: int, seed: SeedLike = None, name: Optional[str] = None) -> TSPInstance:
    """An rlXXXX-style clustered "random locations" analog."""
    n_clusters = max(8, int(math.sqrt(n) / 2))
    return random_clustered(
        n,
        n_clusters=n_clusters,
        seed=seed,
        side=100.0 * math.sqrt(n),
        cluster_std=2.0 * math.sqrt(n),
        background_fraction=0.15,
        name=name or f"rl{n}-synthetic",
    )


def pla_style(n: int, seed: SeedLike = None, name: Optional[str] = None) -> TSPInstance:
    """A plaXXXXX-style programmed-logic-array analog.

    Coarse macro-blocks on a regular super-grid, each filled with a
    fine sub-grid of points — the strongly Manhattan-regular structure
    of the TSPLIB ``pla`` family.
    """
    if n < 2:
        raise TSPError(f"n must be >= 2, got {n}")
    rng = spawn_rng(seed)
    side = 100.0 * math.sqrt(n)
    n_macro = max(4, int(round(math.sqrt(n) / 8)))
    macro_pitch = side / n_macro
    pts_per_block = max(1, n // (n_macro * n_macro))
    sub = max(1, int(math.ceil(math.sqrt(pts_per_block))))
    sub_pitch = macro_pitch * 0.7 / sub
    coords = []
    total = 0
    for bi in range(n_macro):
        for bj in range(n_macro):
            if total >= n:
                break
            # Some macro-cells are empty (logic vs wiring regions).
            if rng.random() < 0.2:
                continue
            ox = bi * macro_pitch + 0.15 * macro_pitch
            oy = bj * macro_pitch + 0.15 * macro_pitch
            count = min(pts_per_block, n - total)
            k = np.arange(count)
            xs = ox + (k % sub) * sub_pitch
            ys = oy + (k // sub) * sub_pitch
            coords.append(np.stack([xs, ys], axis=1))
            total += count
    # Top up with uniform points if empty cells left us short.
    if total < n:
        extra = rng.uniform(0.0, side, size=(n - total, 2))
        coords.append(extra)
    coords = np.vstack(coords)[:n]
    rng.shuffle(coords, axis=0)
    return TSPInstance(
        coords,
        name=name or f"pla{n}-synthetic",
        comment="pla-style analog: macro-block grid layout",
    )


def make_paper_instance(dataset: str, seed: SeedLike = 2024) -> TSPInstance:
    """Build the synthetic analog of a paper dataset by name.

    Parameters
    ----------
    dataset:
        One of the keys of :data:`PAPER_DATASETS`, e.g. ``"pcb3038"``.
    seed:
        Seed for the generator (default 2024 for reproducibility across
        the benchmark suite).
    """
    if dataset not in PAPER_DATASETS:
        raise TSPError(
            f"unknown paper dataset {dataset!r}; "
            f"choose from {sorted(PAPER_DATASETS)}"
        )
    family, n = PAPER_DATASETS[dataset]
    builder = {"pcb": pcb_style, "rl": rl_style, "pla": pla_style}[family]
    return builder(n, seed=seed, name=f"{dataset}-synthetic")
