"""TSPLIB file format support.

Parses the subset of the TSPLIB95 specification needed for the paper's
benchmark families (``pcb``, ``rl``, ``pla``, ``d``, ``usa``): 2-D
coordinate instances with ``EUC_2D`` or ``CEIL_2D`` edge weights, plus
``.opt.tour`` files.  A writer is provided so synthetic analogs can be
exported and inspected with standard TSPLIB tooling.

If the user drops real TSPLIB files into a directory, benchmarks can
load them via :func:`load_tsplib` instead of the synthetic analogs.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, TextIO, Tuple, Union

import numpy as np

from repro.errors import TSPLIBFormatError
from repro.tsp.instance import TSPInstance

_SUPPORTED_EDGE_WEIGHTS = {"EUC_2D", "CEIL_2D", "ATT"}


def _parse_header(lines: List[str]) -> Tuple[Dict[str, str], int]:
    """Parse ``KEY : VALUE`` header lines, return (header, body_start)."""
    header: Dict[str, str] = {}
    i = 0
    for i, raw in enumerate(lines):
        line = raw.strip()
        if not line:
            continue
        if line in ("NODE_COORD_SECTION", "TOUR_SECTION", "EOF"):
            return header, i
        if ":" in line:
            key, _, value = line.partition(":")
            header[key.strip().upper()] = value.strip()
        else:
            raise TSPLIBFormatError(f"unparseable header line: {line!r}")
    return header, i


def parse_tsplib(text: str) -> TSPInstance:
    """Parse TSPLIB file contents into a :class:`TSPInstance`.

    Only ``TYPE: TSP`` with ``NODE_COORD_SECTION`` and a supported
    ``EDGE_WEIGHT_TYPE`` is accepted.
    """
    lines = text.splitlines()
    header, body_start = _parse_header(lines)

    ftype = header.get("TYPE", "TSP").split()[0].upper()
    if ftype != "TSP":
        raise TSPLIBFormatError(f"unsupported TYPE {ftype!r} (only TSP)")
    ewt = header.get("EDGE_WEIGHT_TYPE", "").upper()
    if ewt not in _SUPPORTED_EDGE_WEIGHTS:
        raise TSPLIBFormatError(
            f"unsupported EDGE_WEIGHT_TYPE {ewt!r}; "
            f"supported: {sorted(_SUPPORTED_EDGE_WEIGHTS)}"
        )
    try:
        dimension = int(header["DIMENSION"])
    except KeyError:
        raise TSPLIBFormatError("missing DIMENSION header") from None
    except ValueError:
        raise TSPLIBFormatError(
            f"bad DIMENSION value {header['DIMENSION']!r}"
        ) from None

    if body_start >= len(lines) or lines[body_start].strip() != "NODE_COORD_SECTION":
        raise TSPLIBFormatError("missing NODE_COORD_SECTION")

    coords = np.full((dimension, 2), np.nan)
    seen = np.zeros(dimension, dtype=bool)
    for raw in lines[body_start + 1 :]:
        line = raw.strip()
        if not line:
            continue
        if line == "EOF":
            break
        parts = line.split()
        if len(parts) != 3:
            raise TSPLIBFormatError(f"bad coordinate line: {line!r}")
        try:
            idx = int(parts[0]) - 1  # TSPLIB is 1-indexed
            x, y = float(parts[1]), float(parts[2])
        except ValueError:
            raise TSPLIBFormatError(f"bad coordinate line: {line!r}") from None
        if not 0 <= idx < dimension:
            raise TSPLIBFormatError(f"node id {idx + 1} out of range 1..{dimension}")
        if seen[idx]:
            raise TSPLIBFormatError(f"duplicate node id {idx + 1}")
        coords[idx] = (x, y)
        seen[idx] = True

    if not seen.all():
        missing = int(np.count_nonzero(~seen))
        raise TSPLIBFormatError(f"{missing} node(s) missing coordinates")

    return TSPInstance(
        coords,
        name=header.get("NAME", "tsplib"),
        comment=header.get("COMMENT", ""),
        edge_weight_type=ewt,
    )


def load_tsplib(path: Union[str, os.PathLike]) -> TSPInstance:
    """Read and parse a ``.tsp`` file from disk."""
    with open(path, "r", encoding="utf-8") as f:
        return parse_tsplib(f.read())


def parse_opt_tour(text: str, dimension: Optional[int] = None) -> np.ndarray:
    """Parse a TSPLIB ``.opt.tour`` file into a 0-indexed tour array."""
    lines = text.splitlines()
    header, body_start = _parse_header(lines)
    ftype = header.get("TYPE", "TOUR").split()[0].upper()
    if ftype != "TOUR":
        raise TSPLIBFormatError(f"unsupported TYPE {ftype!r} (only TOUR)")
    if body_start >= len(lines) or lines[body_start].strip() != "TOUR_SECTION":
        raise TSPLIBFormatError("missing TOUR_SECTION")
    tour: List[int] = []
    for raw in lines[body_start + 1 :]:
        for token in raw.split():
            if token in ("-1", "EOF"):
                arr = np.asarray(tour, dtype=np.int64)
                if dimension is not None and arr.size != dimension:
                    raise TSPLIBFormatError(
                        f"tour has {arr.size} cities, expected {dimension}"
                    )
                return arr
            try:
                tour.append(int(token) - 1)
            except ValueError:
                raise TSPLIBFormatError(f"bad tour token {token!r}") from None
    raise TSPLIBFormatError("tour not terminated with -1 or EOF")


def write_tsplib(instance: TSPInstance, f: TextIO) -> None:
    """Write an instance in TSPLIB EUC_2D format to a text stream."""
    f.write(f"NAME : {instance.name}\n")
    if instance.comment:
        f.write(f"COMMENT : {instance.comment}\n")
    f.write("TYPE : TSP\n")
    f.write(f"DIMENSION : {instance.n}\n")
    f.write("EDGE_WEIGHT_TYPE : EUC_2D\n")
    f.write("NODE_COORD_SECTION\n")
    for i, (x, y) in enumerate(instance.coords, start=1):
        f.write(f"{i} {x:.6f} {y:.6f}\n")
    f.write("EOF\n")
