"""TSP substrate: instances, tours, TSPLIB I/O, synthetic generators,
reference solutions, and classical CPU baselines.

This subpackage is the problem-side foundation of the reproduction:
every experiment in the paper is run on a travelling-salesman instance,
either a TSPLIB benchmark (parsed from disk if available) or a
structure-matched synthetic analog (see :mod:`repro.tsp.generators`).
"""

from repro.tsp.generators import (
    circle,
    circle_optimal_length,
    make_paper_instance,
    pcb_style,
    pla_style,
    random_clustered,
    random_uniform,
    rl_style,
)
from repro.tsp.instance import TSPInstance
from repro.tsp.reference import (
    BEST_KNOWN_LENGTHS,
    CONCORDE_RUNTIMES_S,
    bhh_estimate,
    reference_length,
)
from repro.tsp.tour import (
    Tour,
    random_tour,
    tour_length,
    validate_tour,
)
from repro.tsp.svg import render_tour_svg, save_tour_svg
from repro.tsp.tsplib import load_tsplib, parse_tsplib, write_tsplib

__all__ = [
    "TSPInstance",
    "Tour",
    "tour_length",
    "validate_tour",
    "random_tour",
    "load_tsplib",
    "parse_tsplib",
    "write_tsplib",
    "render_tour_svg",
    "save_tour_svg",
    "random_uniform",
    "circle",
    "circle_optimal_length",
    "random_clustered",
    "pcb_style",
    "rl_style",
    "pla_style",
    "make_paper_instance",
    "BEST_KNOWN_LENGTHS",
    "CONCORDE_RUNTIMES_S",
    "bhh_estimate",
    "reference_length",
]
