"""Max-Cut solvers: annealed, greedy, and local search.

The annealed solver is the software analogue of the Table III chips:
single-spin Metropolis flips under a geometric temperature ramp, with
O(degree) incremental gain updates.  Greedy construction and
steepest-descent local search serve as baselines and as the reference
for quality checks (local search is a ½-approximation on non-negative
weights; the planted generators provide known-good cuts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.ising.numerics import boltzmann_accept_probability
from repro.maxcut.problem import MaxCutProblem
from repro.utils.rng import SeedLike, spawn_rng


@dataclass
class MaxCutResult:
    """Result of a Max-Cut solve."""

    spins: np.ndarray
    cut_value: float
    flips_accepted: int = 0
    flips_proposed: int = 0
    trace: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposed flips accepted."""
        return self.flips_accepted / max(1, self.flips_proposed)


def _adjacency_lists(
    problem: MaxCutProblem,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    neighbors: List[List[int]] = [[] for _ in range(problem.n_nodes)]
    weights: List[List[float]] = [[] for _ in range(problem.n_nodes)]
    for (u, v), w in zip(problem.edges, problem.weights):
        neighbors[int(u)].append(int(v))
        weights[int(u)].append(float(w))
        neighbors[int(v)].append(int(u))
        weights[int(v)].append(float(w))
    return (
        [np.asarray(n, dtype=np.int64) for n in neighbors],
        [np.asarray(w) for w in weights],
    )


def greedy_maxcut(problem: MaxCutProblem, seed: SeedLike = None) -> MaxCutResult:
    """Assign nodes one by one to the side that maximises the cut."""
    rng = spawn_rng(seed)
    nbrs, wts = _adjacency_lists(problem)
    spins = np.zeros(problem.n_nodes)
    order = rng.permutation(problem.n_nodes)
    for node in order:
        assigned = spins[nbrs[node]] != 0
        # Gain of +1 vs -1: edges to already-assigned neighbours.
        bias = float(np.sum(wts[node][assigned] * spins[nbrs[node]][assigned]))
        spins[node] = -1.0 if bias > 0 else 1.0
    return MaxCutResult(spins=spins, cut_value=problem.cut_value(spins))


def local_search_improve(
    problem: MaxCutProblem, spins: np.ndarray, max_passes: int = 50
) -> MaxCutResult:
    """Flip any node with positive gain until a local optimum."""
    s = problem.validate_state(spins).copy()
    nbrs, wts = _adjacency_lists(problem)
    # gain(i) = σᵢ Σ w_ij σⱼ (see MaxCutProblem.flip_gain).
    gains = np.array(
        [s[i] * float(np.sum(wts[i] * s[nbrs[i]])) for i in range(problem.n_nodes)]
    )
    flips = 0
    for _ in range(max_passes):
        improved = False
        for i in np.argsort(-gains):
            i = int(i)
            if gains[i] <= 1e-12:
                break
            s[i] = -s[i]
            flips += 1
            improved = True
            gains[i] = -gains[i]
            for j, w in zip(nbrs[i], wts[i]):
                gains[int(j)] += 2.0 * w * s[int(j)] * s[i]
        if not improved:
            break
    return MaxCutResult(
        spins=s, cut_value=problem.cut_value(s), flips_accepted=flips
    )


def anneal_maxcut(
    problem: MaxCutProblem,
    n_sweeps: int = 200,
    t_start: float = 2.0,
    t_end: float = 0.01,
    seed: SeedLike = None,
    initial_spins: Optional[np.ndarray] = None,
    record_every: int = 0,
) -> MaxCutResult:
    """Metropolis single-spin-flip annealing.

    Temperatures are in units of the mean |edge weight| (scale-free).
    One sweep proposes ``n_nodes`` flips.
    """
    if n_sweeps < 1:
        raise ReproError(f"n_sweeps must be >= 1, got {n_sweeps}")
    if t_start <= 0 or t_end <= 0 or t_end > t_start:
        raise ReproError("need 0 < t_end <= t_start")
    rng = spawn_rng(seed)
    n = problem.n_nodes
    s = (
        rng.choice([-1.0, 1.0], size=n)
        if initial_spins is None
        else problem.validate_state(initial_spins).copy()
    )
    nbrs, wts = _adjacency_lists(problem)
    mean_w = float(np.mean(np.abs(problem.weights))) or 1.0
    t0, t1 = t_start * mean_w, t_end * mean_w
    decay = (t1 / t0) ** (1.0 / max(1, n_sweeps - 1))

    cut = problem.cut_value(s)
    accepted = 0
    proposed = 0
    trace: List[Tuple[int, float]] = []
    temp = t0
    for sweep in range(n_sweeps):
        if record_every and sweep % record_every == 0:
            trace.append((sweep, cut))
        for i in rng.integers(0, n, size=n):
            i = int(i)
            proposed += 1
            gain = s[i] * float(np.sum(wts[i] * s[nbrs[i]]))
            # A flip worsens the cut by -gain; standard Metropolis accept.
            if gain >= 0 or rng.random() < boltzmann_accept_probability(
                -gain, temp
            ):
                s[i] = -s[i]
                cut += gain
                accepted += 1
        temp *= decay

    cut = problem.cut_value(s)  # cancel float drift
    if record_every:
        trace.append((n_sweeps, cut))
    return MaxCutResult(
        spins=s,
        cut_value=cut,
        flips_accepted=accepted,
        flips_proposed=proposed,
        trace=trace,
    )
