"""Max-Cut solvers: annealed, greedy, and local search.

The annealed solver is the software analogue of the Table III chips:
single-spin Metropolis flips under a geometric temperature ramp, with
O(degree) incremental gain updates.  Greedy construction and
steepest-descent local search serve as baselines and as the reference
for quality checks (local search is a ½-approximation on non-negative
weights; the planted generators provide known-good cuts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.ising.numerics import boltzmann_accept_probability
from repro.maxcut.problem import MaxCutProblem
from repro.utils.deprecation import merge_legacy_args
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class MaxCutAnnealParams:
    """Tuning of the Metropolis Max-Cut annealer.

    The keyword-only configuration object :func:`anneal_maxcut` takes
    (API 1.3; the loose ``n_sweeps=...`` keywords are deprecated, see
    ``docs/serving.md``).  Temperatures are in units of the mean
    \\|edge weight\\| (scale-free); one sweep proposes ``n_nodes``
    flips.
    """

    n_sweeps: int = 200
    t_start: float = 2.0
    t_end: float = 0.01
    record_every: int = 0

    def __post_init__(self) -> None:
        if self.n_sweeps < 1:
            raise ReproError(f"n_sweeps must be >= 1, got {self.n_sweeps}")
        if self.t_start <= 0 or self.t_end <= 0 or self.t_end > self.t_start:
            raise ReproError("need 0 < t_end <= t_start")
        if self.record_every < 0:
            raise ReproError(
                f"record_every must be >= 0, got {self.record_every}"
            )


@dataclass
class MaxCutResult:
    """Result of a Max-Cut solve."""

    spins: np.ndarray
    cut_value: float
    flips_accepted: int = 0
    flips_proposed: int = 0
    trace: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposed flips accepted."""
        return self.flips_accepted / max(1, self.flips_proposed)


def _adjacency_lists(
    problem: MaxCutProblem,
) -> Tuple[List[np.ndarray], List[np.ndarray]]:
    neighbors: List[List[int]] = [[] for _ in range(problem.n_nodes)]
    weights: List[List[float]] = [[] for _ in range(problem.n_nodes)]
    for (u, v), w in zip(problem.edges, problem.weights):
        neighbors[int(u)].append(int(v))
        weights[int(u)].append(float(w))
        neighbors[int(v)].append(int(u))
        weights[int(v)].append(float(w))
    return (
        [np.asarray(n, dtype=np.int64) for n in neighbors],
        [np.asarray(w) for w in weights],
    )


def greedy_maxcut(problem: MaxCutProblem, seed: SeedLike = None) -> MaxCutResult:
    """Assign nodes one by one to the side that maximises the cut."""
    rng = spawn_rng(seed)
    nbrs, wts = _adjacency_lists(problem)
    spins = np.zeros(problem.n_nodes)
    order = rng.permutation(problem.n_nodes)
    for node in order:
        assigned = spins[nbrs[node]] != 0
        # Gain of +1 vs -1: edges to already-assigned neighbours.
        bias = float(np.sum(wts[node][assigned] * spins[nbrs[node]][assigned]))
        spins[node] = -1.0 if bias > 0 else 1.0
    return MaxCutResult(spins=spins, cut_value=problem.cut_value(spins))


def local_search_improve(
    problem: MaxCutProblem, spins: np.ndarray, max_passes: int = 50
) -> MaxCutResult:
    """Flip any node with positive gain until a local optimum."""
    s = problem.validate_state(spins).copy()
    nbrs, wts = _adjacency_lists(problem)
    # gain(i) = σᵢ Σ w_ij σⱼ (see MaxCutProblem.flip_gain).
    gains = np.array(
        [s[i] * float(np.sum(wts[i] * s[nbrs[i]])) for i in range(problem.n_nodes)]
    )
    flips = 0
    for _ in range(max_passes):
        improved = False
        for i in np.argsort(-gains):
            i = int(i)
            if gains[i] <= 1e-12:
                break
            s[i] = -s[i]
            flips += 1
            improved = True
            gains[i] = -gains[i]
            for j, w in zip(nbrs[i], wts[i]):
                gains[int(j)] += 2.0 * w * s[int(j)] * s[i]
        if not improved:
            break
    return MaxCutResult(
        spins=s, cut_value=problem.cut_value(s), flips_accepted=flips
    )


#: Positional order of the retired pre-1.3 ``anneal_maxcut`` signature.
_LEGACY_ANNEAL_ORDER = (
    "n_sweeps",
    "t_start",
    "t_end",
    "seed",
    "initial_spins",
    "record_every",
)


def anneal_maxcut(
    problem: MaxCutProblem,
    *legacy_args: Any,
    params: Optional[MaxCutAnnealParams] = None,
    seed: SeedLike = None,
    initial_spins: Optional[np.ndarray] = None,
    **legacy_kwargs: Any,
) -> MaxCutResult:
    """Metropolis single-spin-flip annealing.

    API (1.3): tuning goes through the keyword-only ``params``
    dataclass; ``seed`` and ``initial_spins`` are per-call state and
    stay direct keywords::

        anneal_maxcut(problem, params=MaxCutAnnealParams(n_sweeps=400),
                      seed=7)

    The pre-1.3 loose form (``anneal_maxcut(problem, n_sweeps=400,
    t_start=2.0, ...)``, keyword or positional) still works for
    exactly one release behind a :class:`DeprecationWarning` and is
    removed in 1.4 (``docs/serving.md``, *Deprecation timeline*).
    """
    if legacy_args or legacy_kwargs:
        if params is not None:
            raise TypeError(
                "anneal_maxcut() takes either params= or the deprecated "
                "loose tuning arguments, not both"
            )
        merged = merge_legacy_args(
            "anneal_maxcut",
            _LEGACY_ANNEAL_ORDER,
            legacy_args,
            legacy_kwargs,
            params_hint="params=MaxCutAnnealParams(...)",
            since="1.3",
            removal="1.4",
        )
        seed = merged.pop("seed", seed)
        initial_spins = merged.pop("initial_spins", initial_spins)
        params = MaxCutAnnealParams(**merged)
    p = params if params is not None else MaxCutAnnealParams()
    n_sweeps = p.n_sweeps
    t_start, t_end, record_every = p.t_start, p.t_end, p.record_every
    rng = spawn_rng(seed)
    n = problem.n_nodes
    s = (
        rng.choice([-1.0, 1.0], size=n)
        if initial_spins is None
        else problem.validate_state(initial_spins).copy()
    )
    nbrs, wts = _adjacency_lists(problem)
    mean_w = float(np.mean(np.abs(problem.weights))) or 1.0
    t0, t1 = t_start * mean_w, t_end * mean_w
    decay = (t1 / t0) ** (1.0 / max(1, n_sweeps - 1))

    cut = problem.cut_value(s)
    accepted = 0
    proposed = 0
    trace: List[Tuple[int, float]] = []
    temp = t0
    for sweep in range(n_sweeps):
        if record_every and sweep % record_every == 0:
            trace.append((sweep, cut))
        for i in rng.integers(0, n, size=n):
            i = int(i)
            proposed += 1
            gain = s[i] * float(np.sum(wts[i] * s[nbrs[i]]))
            # A flip worsens the cut by -gain; standard Metropolis accept.
            if gain >= 0 or rng.random() < boltzmann_accept_probability(
                -gain, temp
            ):
                s[i] = -s[i]
                cut += gain
                accepted += 1
        temp *= decay

    cut = problem.cut_value(s)  # cancel float drift
    if record_every:
        trace.append((n_sweeps, cut))
    return MaxCutResult(
        spins=s,
        cut_value=cut,
        flips_accepted=accepted,
        flips_proposed=proposed,
        trace=trace,
    )
