"""The spin-scaling argument behind Table III's normalisation.

Paper (Sec. VI): "the number of required spins for Max-Cut is equal to
its number of nodes, instead of the quadratic relationship for TSP, and
thus Max-Cut is a much simpler problem."  This module turns that into
numbers: for a given problem size, how many spins and weight bits does
each formulation need, and what is the TSP-to-Max-Cut resource ratio
that justifies comparing *functionally normalised* metrics.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.errors import ReproError


def maxcut_spins(n_nodes: int) -> int:
    """Spins a Max-Cut annealer needs: one per node."""
    if n_nodes < 1:
        raise ReproError(f"n_nodes must be >= 1, got {n_nodes}")
    return n_nodes


def maxcut_weight_bits(n_nodes: int, bits: int = 8) -> float:
    """Weight bits for all-to-all Max-Cut couplings: n² · bits.

    Matches how the Table III chips report weight memory (e.g. STATICA:
    512 spins, 512²·... ≈ 1.31 Mb at their precision).
    """
    return float(n_nodes) ** 2 * bits


def tsp_spins(n_cities: int) -> float:
    """Spins an unclustered Ising TSP needs: N²."""
    if n_cities < 1:
        raise ReproError(f"n_cities must be >= 1, got {n_cities}")
    return float(n_cities) ** 2


def tsp_weight_bits(n_cities: int, bits: int = 8) -> float:
    """Weight bits for unclustered Ising TSP: N⁴ · bits."""
    return float(n_cities) ** 4 * bits


def spin_scaling_comparison(
    sizes: Sequence[int], bits: int = 8
) -> Dict[int, Dict[str, float]]:
    """Per-size resource comparison Max-Cut vs (unoptimised) TSP.

    Returns, for every problem size n, the spins/weight-bits of a
    Max-Cut annealer on an n-node graph vs an Ising TSP on n cities,
    plus the blow-up ratios — the quantities Table III's footnotes
    normalise away.
    """
    out: Dict[int, Dict[str, float]] = {}
    for n in sizes:
        mc_s, mc_w = maxcut_spins(n), maxcut_weight_bits(n, bits)
        t_s, t_w = tsp_spins(n), tsp_weight_bits(n, bits)
        out[int(n)] = {
            "maxcut_spins": float(mc_s),
            "maxcut_weight_bits": mc_w,
            "tsp_spins": t_s,
            "tsp_weight_bits": t_w,
            "spin_blowup": t_s / mc_s,
            "weight_blowup": t_w / mc_w,
        }
    return out
