"""Max-Cut → Ising mapping.

With cut(σ) = Σ w_ij (1 − σᵢσⱼ)/2 and the :class:`repro.ising.model`
convention H = −Σ_{i,j} J_ij σᵢσⱼ (double-counted ordered pairs, zero
field), choosing

    J_ij = −w_ij / 4        (for each undirected edge, both triangles)

gives H(σ) = Σ_{edges} w_ij σᵢσⱼ / 2 = W/2 − cut(σ), so minimising the
Ising energy maximises the cut, and

    cut(σ) = W/2 − H(σ)        with W = Σ w_ij.

This is the mapping every Table III chip implements in hardware; here
it lets the Max-Cut solver reuse the Gibbs/SA machinery unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.ising.model import IsingModel
from repro.maxcut.problem import MaxCutProblem


def maxcut_to_ising(problem: MaxCutProblem) -> IsingModel:
    """Build the dense :class:`IsingModel` whose ground state is the max cut.

    Dense: limited to the sizes :meth:`MaxCutProblem.adjacency` allows.
    """
    A = problem.adjacency()
    J = -A / 4.0
    return IsingModel(J, convention="pm1")


def cut_from_energy(problem: MaxCutProblem, energy: float) -> float:
    """Recover the cut value from an Ising energy: cut = W/2 − H."""
    return problem.total_weight / 2.0 - energy


def verify_mapping(problem: MaxCutProblem, spins: np.ndarray) -> None:
    """Assert cut(σ) == W/2 − H(σ) for a given state (test helper).

    Raises :class:`ReproError` on mismatch beyond float tolerance.
    """
    model = maxcut_to_ising(problem)
    direct = problem.cut_value(spins)
    via_energy = cut_from_energy(problem, model.energy(spins))
    if abs(direct - via_energy) > 1e-6 * max(1.0, abs(direct)):
        raise ReproError(
            f"mapping inconsistent: cut={direct} vs W/2-H={via_energy}"
        )
