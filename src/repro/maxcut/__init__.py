"""Max-Cut substrate.

Every comparison chip in Table III (STATICA, CIM-Spin, Amorphica, ...)
is a Max-Cut annealer: Max-Cut needs only #spins = #nodes, which is
exactly why the paper calls it "a much simpler problem" than TSP's N²
spins and argues for functional normalisation.  This subpackage makes
that argument executable:

* :class:`MaxCutProblem` — weighted graphs with cut evaluation;
* generators for the standard benchmark families (G-set-style random
  graphs, planted bisections);
* the Max-Cut → Ising mapping (cut maximisation = Ising ground state
  with J = +w/... antiferromagnetic couplings);
* an annealed solver reusing :mod:`repro.ising`, plus greedy and
  random-rounding baselines;
* :func:`spin_scaling_comparison` — the #spins-vs-problem-size law that
  motivates Table III's normalisation;
* :func:`load_rudy` (re-exported from :mod:`repro.problems.io`) —
  reader for published rudy/``.mc`` edge-list benchmark files.
"""

from typing import TYPE_CHECKING, Any

from repro.maxcut.bifurcation import (
    SBParams,
    SBResult,
    simulated_bifurcation_maxcut,
)
from repro.maxcut.problem import MaxCutProblem
from repro.maxcut.generators import gset_style, planted_bisection, random_graph
from repro.maxcut.mapping import maxcut_to_ising
from repro.maxcut.solver import (
    MaxCutAnnealParams,
    MaxCutResult,
    anneal_maxcut,
    greedy_maxcut,
    local_search_improve,
)
from repro.maxcut.scaling import spin_scaling_comparison

if TYPE_CHECKING:
    from repro.problems.io import load_rudy


def __getattr__(name: str) -> Any:
    """Lazy alias: ``load_rudy`` lives in :mod:`repro.problems.io`.

    Imported on first access (PEP 562) because an eager import would
    cycle — ``repro.problems.io`` itself imports
    :class:`~repro.maxcut.problem.MaxCutProblem`.
    """
    if name == "load_rudy":
        from repro.problems.io import load_rudy

        return load_rudy
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "MaxCutProblem",
    "load_rudy",
    "random_graph",
    "gset_style",
    "planted_bisection",
    "maxcut_to_ising",
    "MaxCutAnnealParams",
    "anneal_maxcut",
    "greedy_maxcut",
    "local_search_improve",
    "MaxCutResult",
    "spin_scaling_comparison",
    "SBParams",
    "SBResult",
    "simulated_bifurcation_maxcut",
]
