"""Discrete simulated bifurcation (dSB) for Max-Cut.

The paper's related work (Sec. VI, refs [14-16]) lists quantum-inspired
simulated bifurcation as a competing parallel-update family.  This is
the ballistic/discrete SB of Goto et al. (Sci. Adv. 2021): each spin
gets a continuous position x and momentum y evolved symplectically,

    y += [-(a0 - a(t)) x + c0 · Σ J_ij sign(x_j)] dt
    x += a0 · y · dt

with a(t) ramping 0 → a0 (the bifurcation); positions are clamped to
[-1, 1] with inelastic walls (y = 0 on contact).  All spins update in
parallel — the same pitch as the paper's odd/even cluster updates —
and sign(x) is the Ising state.

Couplings come from :func:`repro.maxcut.mapping.maxcut_to_ising`, so
minimising H maximises the cut.  Used by the extension bench as the
second related-work algorithm implemented end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.maxcut.mapping import maxcut_to_ising
from repro.maxcut.problem import MaxCutProblem
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class SBParams:
    """Discrete-simulated-bifurcation parameters.

    Attributes
    ----------
    n_steps:
        Symplectic integration steps.
    dt:
        Time step.
    a0:
        Final bifurcation parameter (also the position stiffness).
    c0:
        Coupling strength; ``None`` uses the 0.5/(σ_J·√n) heuristic of
        Goto et al.
    """

    n_steps: int = 1000
    dt: float = 0.5
    a0: float = 1.0
    c0: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_steps < 1:
            raise ReproError(f"n_steps must be >= 1, got {self.n_steps}")
        if self.dt <= 0 or self.a0 <= 0:
            raise ReproError("dt and a0 must be > 0")
        if self.c0 is not None and self.c0 <= 0:
            raise ReproError("c0 must be > 0 when given")


@dataclass
class SBResult:
    """Result of a simulated-bifurcation run."""

    spins: np.ndarray
    cut_value: float
    trace: List[Tuple[int, float]] = field(default_factory=list)


def simulated_bifurcation_maxcut(
    problem: MaxCutProblem,
    params: Optional[SBParams] = None,
    seed: SeedLike = None,
    record_every: int = 0,
) -> SBResult:
    """Solve Max-Cut with discrete simulated bifurcation."""
    params = params or SBParams()
    rng = spawn_rng(seed)
    model = maxcut_to_ising(problem)
    J = model.couplings  # H = -sigma J sigma (double-counted)
    n = problem.n_nodes

    c0 = params.c0
    if c0 is None:
        sigma_j = float(np.sqrt((J**2).sum() / max(1, n * (n - 1))))
        c0 = 0.5 / (sigma_j * np.sqrt(n)) if sigma_j > 0 else 0.5

    x = 0.02 * (rng.random(n) - 0.5)
    y = 0.02 * (rng.random(n) - 0.5)
    best_spins = np.sign(x) + (np.sign(x) == 0)
    best_cut = problem.cut_value(best_spins)
    trace: List[Tuple[int, float]] = []

    for step in range(params.n_steps):
        a_t = params.a0 * step / params.n_steps  # linear bifurcation ramp
        # dSB: the coupling force uses sign(x) (discretised positions).
        # With H = -sigma J sigma, dH/dx_i = -2 (J s)_i, so descending
        # the energy applies force +2 c0 (J s).
        s = np.sign(x)
        s[s == 0] = 1.0
        force = -(params.a0 - a_t) * x + 2.0 * c0 * (J @ s)
        y = y + force * params.dt
        x = x + params.a0 * y * params.dt
        # Inelastic walls at |x| = 1.
        out = np.abs(x) > 1.0
        x[out] = np.sign(x[out])
        y[out] = 0.0

        if record_every and step % record_every == 0:
            spins = np.sign(x)
            spins[spins == 0] = 1.0
            cut = problem.cut_value(spins)
            trace.append((step, cut))
            if cut > best_cut:
                best_cut, best_spins = cut, spins.copy()

    spins = np.sign(x)
    spins[spins == 0] = 1.0
    final_cut = problem.cut_value(spins)
    if final_cut >= best_cut:
        best_cut, best_spins = final_cut, spins
    if record_every:
        trace.append((params.n_steps, best_cut))
    return SBResult(spins=best_spins, cut_value=best_cut, trace=trace)
