"""Max-Cut benchmark graph generators.

The SOTA annealer chips of Table III report results on random graphs in
the spirit of the G-set suite (Erdős–Rényi and toroidal families with
unit or ±1 weights) and on planted instances.  Three generators cover
the behaviours the benches need:

* :func:`random_graph` — Erdős–Rényi G(n, p) with optional ±1 weights;
* :func:`gset_style` — fixed average degree with ±1 weights (the G-set
  look);
* :func:`planted_bisection` — a known-good partition planted by making
  cross-partition edges heavier/denser, so solvers can be scored
  against a known reference cut.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.maxcut.problem import MaxCutProblem
from repro.utils.rng import SeedLike, spawn_rng


def _all_pairs(n: int) -> np.ndarray:
    iu = np.triu_indices(n, k=1)
    return np.stack(iu, axis=1)


def random_graph(
    n_nodes: int,
    edge_prob: float,
    seed: SeedLike = None,
    signed: bool = False,
    name: Optional[str] = None,
) -> MaxCutProblem:
    """Erdős–Rényi G(n, p), optionally with ±1 edge weights."""
    if not 0.0 < edge_prob <= 1.0:
        raise ReproError(f"edge_prob must be in (0,1], got {edge_prob}")
    if n_nodes > 2000:
        raise ReproError("random_graph enumerates all pairs; n must be <= 2000")
    rng = spawn_rng(seed)
    pairs = _all_pairs(n_nodes)
    keep = rng.random(pairs.shape[0]) < edge_prob
    edges = pairs[keep]
    if edges.shape[0] == 0:
        # Guarantee connectivity of at least one edge.
        edges = pairs[:1]
    weights = (
        rng.choice([-1.0, 1.0], size=edges.shape[0]) if signed else None
    )
    return MaxCutProblem(
        n_nodes, edges, weights, name=name or f"er{n_nodes}-p{edge_prob:g}"
    )


def gset_style(
    n_nodes: int,
    avg_degree: float = 6.0,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> MaxCutProblem:
    """Sparse random graph with ±1 weights (G-set flavour)."""
    if avg_degree <= 0:
        raise ReproError(f"avg_degree must be > 0, got {avg_degree}")
    p = min(1.0, avg_degree / max(1, n_nodes - 1))
    return random_graph(
        n_nodes, p, seed=seed, signed=True,
        name=name or f"gset{n_nodes}-d{avg_degree:g}",
    )


def planted_bisection(
    n_nodes: int,
    p_cross: float = 0.5,
    p_within: float = 0.05,
    seed: SeedLike = None,
    name: Optional[str] = None,
) -> Tuple[MaxCutProblem, np.ndarray, float]:
    """A graph with a planted near-optimal bisection.

    Returns ``(problem, planted_spins, planted_cut)``.  Cross-partition
    pairs get edges with probability ``p_cross``; within-partition
    pairs with ``p_within`` — so cutting along the planted partition
    captures most of the total weight.
    """
    if n_nodes < 4:
        raise ReproError(f"n_nodes must be >= 4, got {n_nodes}")
    if not (0 <= p_within < p_cross <= 1.0):
        raise ReproError("need 0 <= p_within < p_cross <= 1")
    rng = spawn_rng(seed)
    side = rng.permutation(n_nodes) < n_nodes // 2  # balanced partition
    pairs = _all_pairs(n_nodes)
    crossing = side[pairs[:, 0]] != side[pairs[:, 1]]
    prob = np.where(crossing, p_cross, p_within)
    keep = rng.random(pairs.shape[0]) < prob
    edges = pairs[keep]
    problem = MaxCutProblem(
        n_nodes, edges, name=name or f"planted{n_nodes}"
    )
    spins = np.where(side, 1.0, -1.0)
    return problem, spins, problem.cut_value(spins)
