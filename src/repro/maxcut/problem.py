"""The Max-Cut problem container.

Max-Cut: partition the nodes of a weighted graph into two sets so the
total weight of edges crossing the partition is maximised.  A partition
is a ±1 spin vector; the cut value of state σ is

    cut(σ) = Σ_{(i,j) ∈ E} w_ij · (1 − σᵢσⱼ) / 2
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ReproError


class MaxCutProblem:
    """A weighted undirected graph for Max-Cut.

    Parameters
    ----------
    n_nodes:
        Number of nodes.
    edges:
        ``(m, 2)`` integer array of endpoints (u < v enforced
        internally; duplicates are merged by summing weights).
    weights:
        ``(m,)`` edge weights (default: all ones).
    name:
        Display name.
    """

    def __init__(
        self,
        n_nodes: int,
        edges: np.ndarray,
        weights: Optional[np.ndarray] = None,
        name: str = "maxcut",
    ) -> None:
        if n_nodes < 2:
            raise ReproError(f"n_nodes must be >= 2, got {n_nodes}")
        e = np.asarray(edges, dtype=np.int64)
        if e.ndim != 2 or e.shape[1] != 2:
            raise ReproError(f"edges must be (m, 2), got {e.shape}")
        if e.size and (e.min() < 0 or e.max() >= n_nodes):
            raise ReproError("edge endpoints out of range")
        if np.any(e[:, 0] == e[:, 1]):
            raise ReproError("self-loops are not allowed")
        w = (
            np.ones(e.shape[0])
            if weights is None
            else np.asarray(weights, dtype=np.float64)
        )
        if w.shape != (e.shape[0],):
            raise ReproError("weights must match edge count")

        # Canonicalise (u < v) and merge duplicates.
        lo = np.minimum(e[:, 0], e[:, 1])
        hi = np.maximum(e[:, 0], e[:, 1])
        packed = lo * np.int64(n_nodes) + hi
        uniq, inverse = np.unique(packed, return_inverse=True)
        merged_w = np.zeros(uniq.size)
        np.add.at(merged_w, inverse, w)
        self.n_nodes = int(n_nodes)
        self.edges = np.stack([uniq // n_nodes, uniq % n_nodes], axis=1)
        self.weights = merged_w
        self.name = name

    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of (merged) edges."""
        return int(self.edges.shape[0])

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights — an upper bound on any cut."""
        return float(self.weights.sum())

    def validate_state(self, spins: np.ndarray) -> np.ndarray:
        """Check a ±1 partition vector."""
        s = np.asarray(spins, dtype=np.float64)
        if s.shape != (self.n_nodes,):
            raise ReproError(
                f"state must have shape ({self.n_nodes},), got {s.shape}"
            )
        if not set(np.unique(s).tolist()) <= {-1.0, 1.0}:
            raise ReproError("state values must be +-1")
        return s

    def cut_value(self, spins: np.ndarray) -> float:
        """Total weight crossing the partition."""
        s = self.validate_state(spins)
        u, v = self.edges[:, 0], self.edges[:, 1]
        return float(np.sum(self.weights * (1.0 - s[u] * s[v]) / 2.0))

    def adjacency(self) -> np.ndarray:
        """Dense symmetric weight matrix (small graphs only)."""
        if self.n_nodes > 4096:
            raise ReproError(
                f"refusing dense adjacency for n={self.n_nodes} > 4096"
            )
        A = np.zeros((self.n_nodes, self.n_nodes))
        u, v = self.edges[:, 0], self.edges[:, 1]
        A[u, v] = self.weights
        A[v, u] = self.weights
        return A

    def flip_gain(self, spins: np.ndarray, node: int) -> float:
        """Cut-value change from flipping ``node`` (O(degree))."""
        s = self.validate_state(spins)
        mask_u = self.edges[:, 0] == node
        mask_v = self.edges[:, 1] == node
        other = np.concatenate(
            [self.edges[mask_u, 1], self.edges[mask_v, 0]]
        )
        w = np.concatenate([self.weights[mask_u], self.weights[mask_v]])
        # Edges currently cut become uncut and vice versa.
        return float(np.sum(w * s[other]) * s[node])

    def __repr__(self) -> str:
        return (
            f"MaxCutProblem(name={self.name!r}, n_nodes={self.n_nodes}, "
            f"n_edges={self.n_edges})"
        )
