"""Clients for the serving gateway (stdlib only).

Two clients over the same wire protocol (:mod:`repro.gateway.
protocol`):

* :class:`GatewayClient` — blocking, built on :mod:`http.client`;
  what the CLI (``repro submit --url``) and thread-based tests use;
* :class:`AsyncGatewayClient` — coroutine-based, built on
  ``asyncio.open_connection``; usable from the same event loop that
  hosts a :class:`~repro.gateway.server.GatewayServer` under test.

Both raise :class:`GatewayHTTPError` for any non-2xx response; the
server's ``repro.error/v1`` body is preserved on the exception so
callers can branch on ``status`` (429 = retry later) without string
matching.  Streaming methods yield
:class:`~repro.runtime.telemetry.RunTelemetry` records parsed from
the SSE ``run`` events and end when the server sends the terminal
``end`` event.

Resilience: submissions that bounce off backpressure (429), a
not-ready gateway (503), or a refused connection are retried through
the sanctioned :class:`~repro.runtime.faults.Backoff` pacing, bounded
by ``submit_retries``; everything else surfaces immediately.
``stream(..., reconnect=N)`` re-attaches a dropped SSE connection up
to N times, resuming via the server's replay path and deduplicating
frames whose seed was already delivered.
"""

from __future__ import annotations

import asyncio
import http.client
import json
from dataclasses import replace
from typing import Any, AsyncIterator, Dict, Iterator, Optional, Set, Tuple
from urllib.parse import urlsplit

from repro.errors import GatewayError
from repro.gateway.protocol import (
    ProtocolError,
    encode_solve_request,
    parse_telemetry_frame,
)
from repro.runtime.faults import Backoff
from repro.runtime.options import SolveRequest
from repro.runtime.telemetry import RunTelemetry

#: HTTP statuses a submission may retry: backpressure and not-ready
#: are transient by definition; anything else is deterministic.
_RETRYABLE_STATUSES = frozenset({429, 503})


class GatewayHTTPError(GatewayError):
    """A non-2xx gateway response; carries the wire error body.

    ``status`` is the HTTP status (429 = all shards at capacity, 404 =
    unknown job, 400 = protocol violation — e.g. an unknown backend
    name); ``payload`` is the decoded ``repro.error/v1`` document
    (empty when the body was not JSON).  The exception message carries
    the server's error code *and* message verbatim, so an
    unknown-backend rejection reads ``gateway answered 400: protocol:
    invalid solve request: unknown backend ...`` without any client
    decoding.
    """

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        message = str(payload.get("message", "")) or f"HTTP {status}"
        code = str(payload.get("error", ""))
        detail = f"{code}: {message}" if code else message
        super().__init__(f"gateway answered {status}: {detail}")
        self.status = status
        self.payload = payload


def _split_url(url: str) -> Tuple[str, int]:
    """Host and port of a gateway base URL (http only)."""
    parts = urlsplit(url)
    if parts.scheme != "http" or not parts.hostname:
        raise GatewayError(
            f"gateway URL must be http://host:port, got {url!r}"
        )
    return parts.hostname, parts.port or 80


def _raise_for_status(status: int, body: bytes) -> None:
    if 200 <= status < 300:
        return
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        payload = {}
    if not isinstance(payload, dict):
        payload = {}
    raise GatewayHTTPError(status, payload)


class _SSEAssembler:
    """Incremental Server-Sent-Events parser (shared by both clients).

    Feed decoded lines one at a time; a blank line completes an event
    and :meth:`feed` returns its ``(event, data)`` pair (None while an
    event is still accumulating).
    """

    def __init__(self) -> None:
        self._event = ""
        self._data = ""

    def feed(self, line: str) -> Optional[Tuple[str, str]]:
        line = line.rstrip("\r\n")
        if not line:
            if not self._event and not self._data:
                return None
            out = (self._event or "message", self._data)
            self._event = ""
            self._data = ""
            return out
        name, sep, value = line.partition(":")
        if not sep:
            return None
        value = value.lstrip(" ")
        if name == "event":
            self._event = value
        elif name == "data":
            self._data = f"{self._data}\n{value}" if self._data else value
        return None


def _with_backend(
    request: SolveRequest, backend: Optional[str]
) -> SolveRequest:
    """Re-target a request at another backend before encoding it.

    ``dataclasses.replace`` re-runs ``SolveRequest.__post_init__``, so
    the backend name and problem-kind capability are validated on the
    client before anything crosses the wire; a backend only the server
    knows must be set via the request itself.
    """
    if backend is None or backend == request.backend:
        return request
    return replace(request, backend=backend)


def _frame_from_event(event: str, data: str) -> Optional[RunTelemetry]:
    """Map one SSE event to a telemetry record (None = end of stream).

    Unknown event names are skipped — a newer server may interleave
    new event types; only ``run`` and ``end`` are load-bearing.
    """
    if event == "end":
        return None
    if event != "run":
        raise ProtocolError(f"unexpected SSE event {event!r}")
    return parse_telemetry_frame(data)


class GatewayClient:
    """Blocking gateway client (one HTTP connection per call).

    >>> client = GatewayClient("http://127.0.0.1:8642")
    >>> handle = client.submit(request)             # doctest: +SKIP
    >>> for record in client.stream(handle["job_id"]):  # doctest: +SKIP
    ...     print(record.seed, record.length)
    """

    def __init__(
        self,
        url: str,
        *,
        timeout_s: float = 300.0,
        submit_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 1.0,
    ) -> None:
        if submit_retries < 0:
            raise GatewayError(
                f"submit_retries must be >= 0, got {submit_retries}"
            )
        self.url = url.rstrip("/")
        self.host, self.port = _split_url(self.url)
        self.timeout_s = timeout_s
        self.submit_retries = int(submit_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)

    # -- plumbing ------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            _raise_for_status(response.status, raw)
            decoded = json.loads(raw)
            if not isinstance(decoded, dict):
                raise ProtocolError(
                    f"gateway response is not a JSON object: {decoded!r}"
                )
            return decoded
        finally:
            conn.close()

    # -- API -----------------------------------------------------------
    def submit(
        self, request: SolveRequest, *, backend: Optional[str] = None
    ) -> Dict[str, Any]:
        """Submit a solve; returns the ``repro.job/v1`` handle.

        ``backend`` re-targets the request at another registered
        solver backend without rebuilding it (validated client-side).
        Backpressure (429), not-ready (503), and refused connections
        are retried up to ``submit_retries`` times with deterministic
        jittered backoff; other failures surface immediately.
        """
        body = encode_solve_request(_with_backend(request, backend))
        backoff = Backoff(
            self.backoff_base_s,
            self.backoff_cap_s,
            seed=int(request.seeds[0]),
        )
        for attempt in range(self.submit_retries + 1):
            try:
                return self._request("POST", "/v1/jobs", body=body)
            except GatewayHTTPError as exc:
                if (
                    exc.status not in _RETRYABLE_STATUSES
                    or attempt >= self.submit_retries
                ):
                    raise
            except ConnectionRefusedError:
                if attempt >= self.submit_retries:
                    raise
            backoff.wait(attempt + 1)
        raise GatewayError("unreachable: submit retry loop exhausted")

    def result(self, job_id: str) -> Dict[str, Any]:
        """Long-poll the final ``repro.job_result/v1`` document."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cooperative cancellation of a job."""
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def metrics(self) -> Dict[str, Any]:
        """Fetch the gateway's ``repro.gateway_metrics/v1`` counters."""
        return self._request("GET", "/metrics")

    def _stream_once(self, job_id: str) -> Iterator[Optional[RunTelemetry]]:
        """One SSE attach: yields records, then ``None`` on a clean
        ``end`` event.  A generator that returns *without* yielding
        ``None`` saw the connection drop mid-stream."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status != 200:
                _raise_for_status(response.status, response.read())
            assembler = _SSEAssembler()
            while True:
                line = response.readline()
                if not line:
                    return  # server closed without an end event
                completed = assembler.feed(line.decode("utf-8"))
                if completed is None:
                    continue
                record = _frame_from_event(*completed)
                if record is None:
                    yield None
                    return
                yield record
        finally:
            conn.close()

    def stream(
        self, job_id: str, *, reconnect: int = 0
    ) -> Iterator[RunTelemetry]:
        """Yield each seed's telemetry record as the server streams it.

        Replays from the first record (the server buffers), ends at
        the terminal ``end`` event.  With ``reconnect > 0`` a dropped
        connection (mid-stream EOF or a connection error) is
        re-attached up to that many times; the server replays from the
        start and frames whose seed was already delivered are skipped,
        so consumers see each seed exactly once.
        """
        if reconnect < 0:
            raise GatewayError(f"reconnect must be >= 0, got {reconnect}")
        seen: Set[int] = set()
        backoff = Backoff(self.backoff_base_s, self.backoff_cap_s, seed=0)
        for attempt in range(reconnect + 1):
            ended = False
            try:
                for item in self._stream_once(job_id):
                    if item is None:
                        ended = True
                        break
                    if int(item.seed) in seen:
                        continue  # replayed after a reconnect
                    seen.add(int(item.seed))
                    yield item
            except (ConnectionError, http.client.HTTPException, TimeoutError):
                if attempt >= reconnect:
                    raise
                backoff.wait(attempt + 1)
                continue
            if ended or attempt >= reconnect:
                return  # clean end, or out of reconnect budget
            backoff.wait(attempt + 1)

    def solve(
        self, request: SolveRequest, *, backend: Optional[str] = None
    ) -> Dict[str, Any]:
        """Submit and block for the final result (convenience)."""
        handle = self.submit(request, backend=backend)
        return self.result(str(handle["job_id"]))


class AsyncGatewayClient:
    """Coroutine gateway client (one connection per call).

    Safe to use on the same event loop as the server it talks to —
    every await yields to the loop, so the server's handlers make
    progress between client reads (which is exactly how the e2e tests
    run both sides single-process).
    """

    def __init__(
        self,
        url: str,
        *,
        submit_retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 1.0,
    ) -> None:
        if submit_retries < 0:
            raise GatewayError(
                f"submit_retries must be >= 0, got {submit_retries}"
            )
        self.url = url.rstrip("/")
        self.host, self.port = _split_url(self.url)
        self.submit_retries = int(submit_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)

    # -- plumbing ------------------------------------------------------
    async def _connect(
        self, method: str, path: str, body: Optional[Dict[str, Any]]
    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter, int]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        payload = b"" if body is None else json.dumps(body).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        status_line = (await reader.readline()).decode("latin-1")
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ProtocolError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        while True:  # consume response headers up to the blank line
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        return reader, writer, status

    async def _request(
        self, method: str, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        reader, writer, status = await self._connect(method, path, body)
        try:
            raw = await reader.read()
            _raise_for_status(status, raw)
            decoded = json.loads(raw)
            if not isinstance(decoded, dict):
                raise ProtocolError(
                    f"gateway response is not a JSON object: {decoded!r}"
                )
            return decoded
        finally:
            writer.close()

    # -- API -----------------------------------------------------------
    async def submit(
        self, request: SolveRequest, *, backend: Optional[str] = None
    ) -> Dict[str, Any]:
        """Submit a solve; returns the ``repro.job/v1`` handle.

        ``backend`` re-targets the request at another registered
        solver backend without rebuilding it (validated client-side).
        Backpressure (429), not-ready (503), and refused connections
        are retried up to ``submit_retries`` times with deterministic
        jittered backoff (non-blocking: ``asyncio.sleep``); other
        failures surface immediately.
        """
        body = encode_solve_request(_with_backend(request, backend))
        backoff = Backoff(
            self.backoff_base_s,
            self.backoff_cap_s,
            seed=int(request.seeds[0]),
        )
        for attempt in range(self.submit_retries + 1):
            try:
                return await self._request("POST", "/v1/jobs", body=body)
            except GatewayHTTPError as exc:
                if (
                    exc.status not in _RETRYABLE_STATUSES
                    or attempt >= self.submit_retries
                ):
                    raise
            except ConnectionRefusedError:
                if attempt >= self.submit_retries:
                    raise
            await asyncio.sleep(backoff.delay_s(attempt + 1))
        raise GatewayError("unreachable: submit retry loop exhausted")

    async def result(self, job_id: str) -> Dict[str, Any]:
        """Long-poll the final ``repro.job_result/v1`` document."""
        return await self._request("GET", f"/v1/jobs/{job_id}")

    async def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cooperative cancellation of a job."""
        return await self._request("DELETE", f"/v1/jobs/{job_id}")

    async def metrics(self) -> Dict[str, Any]:
        """Fetch the gateway's ``repro.gateway_metrics/v1`` counters."""
        return await self._request("GET", "/metrics")

    async def _stream_once(
        self, job_id: str
    ) -> AsyncIterator[Optional[RunTelemetry]]:
        """One SSE attach: yields records, then ``None`` on a clean
        ``end`` event (see the blocking client's ``_stream_once``)."""
        reader, writer, status = await self._connect(
            "GET", f"/v1/jobs/{job_id}/events", None
        )
        try:
            if status != 200:
                _raise_for_status(status, await reader.read())
            assembler = _SSEAssembler()
            while True:
                line = await reader.readline()
                if not line:
                    return  # server closed without an end event
                completed = assembler.feed(line.decode("utf-8"))
                if completed is None:
                    continue
                record = _frame_from_event(*completed)
                if record is None:
                    yield None
                    return
                yield record
        finally:
            writer.close()

    async def stream(
        self, job_id: str, *, reconnect: int = 0
    ) -> AsyncIterator[RunTelemetry]:
        """Yield telemetry records from the SSE stream as they arrive.

        With ``reconnect > 0`` a dropped connection is re-attached up
        to that many times, resuming via the server's replay path and
        skipping frames whose seed was already delivered.
        """
        if reconnect < 0:
            raise GatewayError(f"reconnect must be >= 0, got {reconnect}")
        seen: Set[int] = set()
        backoff = Backoff(self.backoff_base_s, self.backoff_cap_s, seed=0)
        for attempt in range(reconnect + 1):
            ended = False
            try:
                async for item in self._stream_once(job_id):
                    if item is None:
                        ended = True
                        break
                    if int(item.seed) in seen:
                        continue  # replayed after a reconnect
                    seen.add(int(item.seed))
                    yield item
            except (ConnectionError, asyncio.IncompleteReadError):
                if attempt >= reconnect:
                    raise
                await asyncio.sleep(backoff.delay_s(attempt + 1))
                continue
            if ended or attempt >= reconnect:
                return  # clean end, or out of reconnect budget
            await asyncio.sleep(backoff.delay_s(attempt + 1))
