"""Shard health probing: liveness, eviction, probation, re-admission.

The shard-tier analogue of the worker-tier supervision in
:mod:`repro.runtime.faults`: the router cannot trust a shard just
because it accepted a job, so :class:`ShardHealth` probes every shard
on a fixed cadence and maintains a per-shard state machine::

    HEALTHY --(eviction_threshold consecutive probe failures)--> EVICTED
    EVICTED --(first probe success)--> PROBATION
    PROBATION --(probation_probes consecutive successes)--> HEALTHY
    PROBATION --(any probe failure)--> EVICTED

The router routes only to non-``EVICTED`` shards and fails admitted
jobs over when their shard is evicted mid-run (see
:meth:`repro.gateway.router.ShardRouter`).

Chaos is first-class: a seeded
:class:`~repro.runtime.faults.ShardFaultPlan` executes *through the
prober* — each probe tick the plan may crash a shard, blackhole its
probe, or stall its streams — so a whole gateway-failover scenario is
a pure function of one chaos seed, exactly like worker-tier
:class:`~repro.runtime.faults.FaultPlan` runs.

Timing note: probe cadence uses the event loop's clock
(``loop.time()``); kernel timing stays with
:class:`~repro.runtime.telemetry.Stopwatch` (lint rule RL006).
"""

from __future__ import annotations

import asyncio
from enum import Enum
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.errors import GatewayError
from repro.runtime.faults import ShardFaultKind, ShardFaultPlan

if TYPE_CHECKING:
    from repro.runtime.service import AnnealingService


class ShardState(str, Enum):
    """Health state of one shard, as seen by the prober."""

    HEALTHY = "healthy"
    PROBATION = "probation"
    EVICTED = "evicted"


class ShardHealth:
    """Periodic liveness prober + eviction state machine over shards.

    Owned by the :class:`~repro.gateway.router.ShardRouter`; probing is
    cheap (an in-process ``started`` check per shard), so the default
    cadence is aggressive.  All state transitions happen inside
    :meth:`probe_once`, which tests drive manually — the background
    task started by :meth:`start` only provides the cadence.

    Parameters
    ----------
    shards:
        The shard services to probe (shared with the router; never
        copied).
    probe_interval_s:
        Cadence of the background probe loop.
    eviction_threshold:
        Consecutive probe failures before a ``HEALTHY`` shard is
        evicted.
    probation_probes:
        Consecutive probe successes an ``EVICTED`` shard must pass
        (after its first success moves it to ``PROBATION``) before
        re-admission to ``HEALTHY``.
    fault_plan:
        Optional seeded :class:`ShardFaultPlan`; executed at the top
        of each probe tick.
    on_evict:
        Router hook, called with the shard index the moment it is
        evicted (the router uses it to fail over the shard's jobs).
    on_stall:
        Router hook for injected ``STREAM_STALL`` faults, called with
        the shard index.
    """

    def __init__(
        self,
        shards: Sequence["AnnealingService"],
        *,
        probe_interval_s: float = 0.25,
        eviction_threshold: int = 3,
        probation_probes: int = 2,
        fault_plan: Optional[ShardFaultPlan] = None,
        on_evict: Optional[Callable[[int], None]] = None,
        on_stall: Optional[Callable[[int], None]] = None,
    ) -> None:
        if probe_interval_s <= 0:
            raise GatewayError(
                f"probe_interval_s must be > 0, got {probe_interval_s}"
            )
        if eviction_threshold < 1:
            raise GatewayError(
                f"eviction_threshold must be >= 1, got {eviction_threshold}"
            )
        if probation_probes < 1:
            raise GatewayError(
                f"probation_probes must be >= 1, got {probation_probes}"
            )
        self._shards = list(shards)
        self.probe_interval_s = float(probe_interval_s)
        self.eviction_threshold = int(eviction_threshold)
        self.probation_probes = int(probation_probes)
        self.fault_plan = fault_plan
        self._on_evict = on_evict
        self._on_stall = on_stall
        self._states = [ShardState.HEALTHY for _ in self._shards]
        self._fail_streaks = [0 for _ in self._shards]
        self._pass_streaks = [0 for _ in self._shards]
        self._tick = 0
        self._probes = 0
        self._evictions = 0
        self._readmissions = 0
        self._faults_injected: Dict[str, int] = {}
        self._task: Optional["asyncio.Task[None]"] = None

    # -- read surface ---------------------------------------------------
    @property
    def tick(self) -> int:
        """Probe ticks executed so far (the fault plan's time axis)."""
        return self._tick

    @property
    def probes(self) -> int:
        """Individual shard probes executed (ticks × shards)."""
        return self._probes

    @property
    def evictions(self) -> int:
        """Shards evicted over the prober's lifetime (re-evictions
        after probation count again)."""
        return self._evictions

    @property
    def readmissions(self) -> int:
        """Shards re-admitted to ``HEALTHY`` after probation."""
        return self._readmissions

    @property
    def faults_injected(self) -> Dict[str, int]:
        """Injected shard-fault counts by kind value."""
        return dict(self._faults_injected)

    def state(self, shard_index: int) -> ShardState:
        """Current health state of one shard."""
        return self._states[shard_index]

    def is_routable(self, shard_index: int) -> bool:
        """True when new jobs may be placed on the shard.

        Probation counts: a recovering shard takes traffic (its solves
        are deterministic, so a relapse just costs another failover).
        """
        return self._states[shard_index] is not ShardState.EVICTED

    def shard_states(self) -> Dict[str, int]:
        """State-name → shard-count summary (the ``/metrics`` shape)."""
        counts = {state.value: 0 for state in ShardState}
        for state in self._states:
            counts[state.value] += 1
        return counts

    # -- probing --------------------------------------------------------
    async def probe_once(self) -> None:
        """Execute one probe tick: inject faults, probe, transition.

        Deterministic given the fault plan and the shards' lifecycle
        state — tests call this directly instead of sleeping through
        the background cadence.
        """
        tick = self._tick
        self._tick += 1
        blackholed: List[bool] = [False for _ in self._shards]
        if self.fault_plan is not None and self.fault_plan.enabled:
            for index, shard in enumerate(self._shards):
                kind = self.fault_plan.fault_for(index, tick)
                if kind is None:
                    continue
                self._faults_injected[kind.value] = (
                    self._faults_injected.get(kind.value, 0) + 1
                )
                if kind is ShardFaultKind.SHARD_CRASH:
                    if not shard.closed:
                        await shard.shutdown(drain=False)
                elif kind is ShardFaultKind.PROBE_BLACKHOLE:
                    blackholed[index] = True
                elif self._on_stall is not None:
                    self._on_stall(index)
        for index, shard in enumerate(self._shards):
            self._probes += 1
            alive = shard.started and not blackholed[index]
            self._observe(index, alive)

    def _observe(self, index: int, alive: bool) -> None:
        """Feed one probe outcome through the state machine."""
        state = self._states[index]
        if alive:
            self._fail_streaks[index] = 0
            if state is ShardState.EVICTED:
                self._states[index] = ShardState.PROBATION
                self._pass_streaks[index] = 1
            elif state is ShardState.PROBATION:
                self._pass_streaks[index] += 1
                if self._pass_streaks[index] >= self.probation_probes:
                    self._states[index] = ShardState.HEALTHY
                    self._readmissions += 1
            return
        self._pass_streaks[index] = 0
        self._fail_streaks[index] += 1
        if state is ShardState.PROBATION:
            # A relapse during probation re-evicts immediately: the
            # shard already spent its benefit of the doubt.
            self._evict(index)
        elif (
            state is ShardState.HEALTHY
            and self._fail_streaks[index] >= self.eviction_threshold
        ):
            self._evict(index)

    def _evict(self, index: int) -> None:
        self._states[index] = ShardState.EVICTED
        self._fail_streaks[index] = 0
        self._evictions += 1
        if self._on_evict is not None:
            self._on_evict(index)

    # -- background cadence ---------------------------------------------
    async def start(self) -> None:
        """Start the background probe loop (idempotent)."""
        if self._task is not None:
            return
        self._task = asyncio.get_running_loop().create_task(
            self._probe_loop(), name="repro-shard-health"
        )

    async def stop(self) -> None:
        """Cancel the background probe loop (idempotent)."""
        task = self._task
        self._task = None
        if task is None:
            return
        task.cancel()
        await asyncio.gather(task, return_exceptions=True)

    async def _probe_loop(self) -> None:
        while True:
            await self.probe_once()
            await asyncio.sleep(self.probe_interval_s)
