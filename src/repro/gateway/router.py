"""Horizontal shard routing over :class:`AnnealingService` backends.

A :class:`ShardRouter` owns N in-process shards — independent
:class:`~repro.runtime.service.AnnealingService` instances, each with
its *own* worker pool and admission queue — and places every incoming
:class:`~repro.runtime.options.SolveRequest` on one of them via a
pluggable :class:`RoutingPolicy`:

* :class:`RoundRobinPolicy` — rotate through the shards, skipping any
  at capacity;
* :class:`LeastInflightPolicy` — pick the shard with the fewest
  admitted-and-unsettled jobs (ties break to the lowest index).

The router is the *non-blocking* front of the admission stack.  A
single service applies backpressure by making ``submit`` wait; a
gateway cannot hold an HTTP client hostage like that, so the router
checks :attr:`AnnealingService.at_capacity` instead and raises
:class:`GatewayOverloadedError` (the server's 429) only when **every**
shard is full.

The router also owns the job-id space: ids are generated *before*
dispatch (``<tag>-NNNN``, unique across shards) and passed down via
``submit(request, job_id=...)``, so the id a client polls is exactly
the id in each telemetry record's ``worker`` field —
``shard0/pool@job-0001``.
"""

from __future__ import annotations

import itertools
from typing import (
    TYPE_CHECKING,
    Any,
    AsyncIterator,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import GatewayError
from repro.runtime.options import EnsembleOptions, SolveRequest
from repro.runtime.service import AnnealingService, Job, JobState
from repro.runtime.telemetry import RunTelemetry

if TYPE_CHECKING:  # import cycle: repro.annealer.batch imports runtime
    from repro.annealer.batch import EnsembleResult

METRICS_SCHEMA = "repro.gateway_metrics/v1"


class GatewayOverloadedError(GatewayError):
    """Every shard is at capacity (HTTP 429); retry later."""


class UnknownJobError(GatewayError):
    """No job with the requested id exists on any shard (HTTP 404)."""


class RoutingPolicy:
    """How the router picks a shard for the next job.

    Subclasses implement :meth:`choose` over the candidate indices
    whose shards still have admission capacity; the router has already
    filtered out full shards (and raises
    :class:`GatewayOverloadedError` itself when none remain).
    """

    name = "abstract"

    def choose(
        self, candidates: Sequence[int], shards: Sequence[AnnealingService]
    ) -> int:
        """Return the index (into ``shards``) to place the job on."""
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    """Rotate through the shards, skipping any at capacity.

    Fair under uniform job sizes; oblivious to per-shard load, so a
    shard stuck with one huge ensemble keeps receiving its turn.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(
        self, candidates: Sequence[int], shards: Sequence[AnnealingService]
    ) -> int:
        n = len(shards)
        for step in range(n):
            index = (self._cursor + step) % n
            if index in candidates:
                self._cursor = (index + 1) % n
                return index
        # The router guarantees candidates is non-empty and every
        # candidate indexes into shards, so the loop always returns.
        raise GatewayError("round-robin found no candidate shard")


class LeastInflightPolicy(RoutingPolicy):
    """Pick the shard with the fewest unsettled jobs.

    Load-aware: concurrent submissions spread across shards instead of
    queueing behind a busy one.  Ties break to the lowest index, so
    placement stays deterministic for a given load pattern.
    """

    name = "least-inflight"

    def choose(
        self, candidates: Sequence[int], shards: Sequence[AnnealingService]
    ) -> int:
        return min(candidates, key=lambda i: (shards[i].inflight_jobs, i))


_POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastInflightPolicy.name: LeastInflightPolicy,
}


def policy_from_name(name: str) -> RoutingPolicy:
    """Build a routing policy from its CLI/config label."""
    try:
        return _POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise GatewayError(
            f"unknown routing policy {name!r}; known policies: {known}"
        ) from None


class GatewayJob:
    """A routed job: the shard placement plus the underlying handle.

    Thin pass-through over :class:`repro.runtime.service.Job` that
    remembers *where* the job landed, so the HTTP layer can report the
    shard and the metrics can attribute the work.
    """

    def __init__(self, job: Job, shard_index: int, shard_name: str) -> None:
        self.job = job
        self.shard_index = shard_index
        self.shard_name = shard_name

    @property
    def job_id(self) -> str:
        """Router-assigned id, unique across all shards."""
        return self.job.job_id

    @property
    def state(self) -> JobState:
        """Current lifecycle state of the underlying job."""
        return self.job.state

    @property
    def done(self) -> bool:
        """True once the underlying job settled."""
        return self.job.done

    @property
    def records(self) -> Tuple[RunTelemetry, ...]:
        """Telemetry records streamed so far."""
        return self.job.records

    def cancel(self) -> None:
        """Request cooperative cancellation on the owning shard."""
        self.job.cancel()

    def stream(self) -> AsyncIterator[RunTelemetry]:
        """Replayable per-seed telemetry stream (see :meth:`Job.stream`)."""
        return self.job.stream()

    async def result(self) -> "EnsembleResult":
        """Await the seed-ordered terminal result (see :meth:`Job.result`)."""
        return await self.job.result()


class ShardRouter:
    """N in-process :class:`AnnealingService` shards behind one front.

    Use as an async context manager::

        async with ShardRouter(shards=2, policy="least-inflight") as router:
            job = await router.submit(request)
            async for record in job.stream():
                ...
            result = await job.result()

    Each shard is named ``shard<i>`` and prefixes its name into every
    telemetry record's ``worker`` field.  ``shard_options`` applies to
    every shard (pool width per shard = ``shard_options.max_workers``).
    """

    def __init__(
        self,
        shard_options: Optional[EnsembleOptions] = None,
        *,
        shards: int = 2,
        policy: str = RoundRobinPolicy.name,
    ) -> None:
        if shards < 1:
            raise GatewayError(f"need at least one shard, got {shards}")
        options = shard_options if shard_options is not None else EnsembleOptions()
        self.options = options
        self.policy = policy_from_name(policy)
        self._shards: List[AnnealingService] = [
            AnnealingService(options, name=f"shard{i}") for i in range(shards)
        ]
        self._jobs: Dict[str, GatewayJob] = {}
        self._counter = itertools.count(1)
        self._submitted = 0
        self._rejected = 0
        self._by_backend: Dict[str, int] = {}
        self._skips = [0 for _ in range(shards)]
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def shards(self) -> Tuple[AnnealingService, ...]:
        """The backend services, in index order."""
        return tuple(self._shards)

    @property
    def jobs(self) -> Dict[str, GatewayJob]:
        """Snapshot of every routed job, keyed by job id."""
        return dict(self._jobs)

    async def start(self) -> None:
        """Start every shard (idempotent; :meth:`submit` auto-starts)."""
        if self._closed:
            raise GatewayError("router has been shut down; build a new one")
        for shard in self._shards:
            await shard.start()

    async def submit(self, request: SolveRequest) -> GatewayJob:
        """Route one request to a shard; returns its handle.

        Non-blocking admission: raises :class:`GatewayOverloadedError`
        when every shard is at capacity, instead of queueing the
        caller.  The routed job's id is unique across shards.
        """
        if self._closed:
            raise GatewayError("router is shut down; no new jobs accepted")
        await self.start()
        candidates = [
            i for i, shard in enumerate(self._shards) if not shard.at_capacity
        ]
        for i, shard in enumerate(self._shards):
            if shard.at_capacity:
                self._skips[i] += 1
        if not candidates:
            self._rejected += 1
            raise GatewayOverloadedError(
                f"all {len(self._shards)} shards at capacity "
                f"({self.options.max_pending_jobs} pending jobs each); "
                "retry later"
            )
        index = self.policy.choose(candidates, self._shards)
        shard = self._shards[index]
        label = request.tag or "job"
        job_id = f"{label}-{next(self._counter):04d}"
        job = await shard.submit(request, job_id=job_id)
        routed = GatewayJob(job, index, shard.name)
        self._jobs[job_id] = routed
        self._submitted += 1
        self._by_backend[request.backend] = (
            self._by_backend.get(request.backend, 0) + 1
        )
        return routed

    def get(self, job_id: str) -> GatewayJob:
        """Look up a routed job; :class:`UnknownJobError` when absent."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"no such job: {job_id!r}") from None

    async def shutdown(self, drain: bool = True) -> None:
        """Shut every shard down (drain or cancel). Idempotent."""
        self._closed = True
        for shard in self._shards:
            await shard.shutdown(drain=drain)

    async def __aenter__(self) -> "ShardRouter":
        await self.start()
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.shutdown(drain=exc_type is None)

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        """Gateway + per-shard counters (``repro.gateway_metrics/v1``).

        Per-shard ``faults_by_kind`` aggregates the chaos faults
        injected into that shard's jobs so far (from the records each
        job has streamed), and ``skips`` counts submit attempts that
        found the shard at capacity — the per-shard view of admission
        pressure behind gateway-level ``jobs_rejected``.  Gateway-level
        ``jobs_by_backend`` counts accepted submissions per solver
        backend (``{"cluster-cim": 3, "maxcut-sb": 1}``), so operators
        can see the dispatch mix without scraping job records.
        """
        per_shard: List[Dict[str, Any]] = []
        for i, shard in enumerate(self._shards):
            shard_jobs = shard.jobs
            faults: Dict[str, int] = {}
            states: Dict[str, int] = {}
            for job in shard_jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
                for record in job.records:
                    for kind in record.faults_injected:
                        faults[kind] = faults.get(kind, 0) + 1
            per_shard.append(
                {
                    "name": shard.name,
                    "jobs": len(shard_jobs),
                    "inflight": shard.inflight_jobs,
                    "at_capacity": shard.at_capacity,
                    "skips": self._skips[i],
                    "pool_rebuilds": shard.pool_rebuilds,
                    "states": states,
                    "faults_by_kind": faults,
                }
            )
        return {
            "schema": METRICS_SCHEMA,
            "policy": self.policy.name,
            "shards": len(self._shards),
            "jobs_submitted": self._submitted,
            "jobs_rejected": self._rejected,
            "jobs_by_backend": dict(sorted(self._by_backend.items())),
            "inflight": sum(s.inflight_jobs for s in self._shards),
            "per_shard": per_shard,
        }
