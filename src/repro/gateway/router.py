"""Horizontal shard routing over :class:`AnnealingService` backends.

A :class:`ShardRouter` owns N in-process shards — independent
:class:`~repro.runtime.service.AnnealingService` instances, each with
its *own* worker pool and admission queue — and places every incoming
:class:`~repro.runtime.options.SolveRequest` on one of them via a
pluggable :class:`RoutingPolicy`:

* :class:`RoundRobinPolicy` — rotate through the shards, skipping any
  at capacity;
* :class:`LeastInflightPolicy` — pick the shard with the fewest
  admitted-and-unsettled jobs (ties break to the lowest index).

The router is the *non-blocking* front of the admission stack.  A
single service applies backpressure by making ``submit`` wait; a
gateway cannot hold an HTTP client hostage like that, so the router
checks :attr:`AnnealingService.at_capacity` instead and raises
:class:`GatewayOverloadedError` (the server's 429) only when **every**
routable shard is full — and :class:`GatewayUnavailableError` (503)
when no shard is routable at all.

The router also owns the job-id space: ids are generated *before*
dispatch (``<tag>-NNNN``, unique across shards) and passed down via
``submit(request, job_id=...)``, so the id a client polls is exactly
the id in each telemetry record's ``worker`` field —
``shard0/pool@job-0001``.

Resilience: every routed job is backed by a *supervisor* task.  A
:class:`~repro.gateway.health.ShardHealth` prober evicts shards that
stop answering liveness probes; when a job's shard is evicted, its
stream stalls past ``stall_timeout_s``, or the shard crashes outright,
the supervisor re-dispatches the job's full :class:`SolveRequest` to a
different healthy shard (never the same shard twice), paced by the
sanctioned :class:`~repro.runtime.faults.Backoff` and bounded by
``failover_budget``.  Runs are pure functions of their seed, so the
re-run is bit-identical and the :class:`GatewayJob` deduplicates
frames by seed — subscribers see one seamless stream across the
failover.  A request's ``deadline_s`` shrinks across failovers: the
re-dispatch carries only the remaining budget.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import replace
from typing import (
    TYPE_CHECKING,
    Any,
    AsyncIterator,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.backends.base import problem_kind
from repro.errors import AnnealerError, DeadlineExceededError, GatewayError
from repro.gateway.health import ShardHealth, ShardState
from repro.runtime.faults import Backoff, ShardFaultPlan
from repro.runtime.options import EnsembleOptions, SolveRequest
from repro.runtime.service import AnnealingService, Job, JobState
from repro.runtime.telemetry import RunTelemetry

if TYPE_CHECKING:  # import cycle: repro.annealer.batch imports runtime
    from repro.annealer.batch import EnsembleResult

METRICS_SCHEMA = "repro.gateway_metrics/v1"


class GatewayOverloadedError(GatewayError):
    """Every routable shard is at capacity (HTTP 429); retry later."""


class GatewayUnavailableError(GatewayError):
    """No healthy shard can take jobs at all (HTTP 503)."""


class UnknownJobError(GatewayError):
    """No job with the requested id exists on any shard (HTTP 404)."""


class RoutingPolicy:
    """How the router picks a shard for the next job.

    Subclasses implement :meth:`choose` over the candidate indices
    whose shards still have admission capacity; the router has already
    filtered out full shards (and raises
    :class:`GatewayOverloadedError` itself when none remain).
    """

    name = "abstract"

    def choose(
        self, candidates: Sequence[int], shards: Sequence[AnnealingService]
    ) -> int:
        """Return the index (into ``shards``) to place the job on."""
        raise NotImplementedError


class RoundRobinPolicy(RoutingPolicy):
    """Rotate through the shards, skipping any at capacity.

    Fair under uniform job sizes; oblivious to per-shard load, so a
    shard stuck with one huge ensemble keeps receiving its turn.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(
        self, candidates: Sequence[int], shards: Sequence[AnnealingService]
    ) -> int:
        n = len(shards)
        for step in range(n):
            index = (self._cursor + step) % n
            if index in candidates:
                self._cursor = (index + 1) % n
                return index
        # The router guarantees candidates is non-empty and every
        # candidate indexes into shards, so the loop always returns.
        raise GatewayError("round-robin found no candidate shard")


class LeastInflightPolicy(RoutingPolicy):
    """Pick the shard with the fewest unsettled jobs.

    Load-aware: concurrent submissions spread across shards instead of
    queueing behind a busy one.  Ties break to the lowest index, so
    placement stays deterministic for a given load pattern.
    """

    name = "least-inflight"

    def choose(
        self, candidates: Sequence[int], shards: Sequence[AnnealingService]
    ) -> int:
        return min(candidates, key=lambda i: (shards[i].inflight_jobs, i))


_POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastInflightPolicy.name: LeastInflightPolicy,
}


def policy_from_name(name: str) -> RoutingPolicy:
    """Build a routing policy from its CLI/config label."""
    try:
        return _POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise GatewayError(
            f"unknown routing policy {name!r}; known policies: {known}"
        ) from None


class GatewayJob:
    """A routed job that survives its shard.

    The client-facing handle the router hands out.  Unlike the
    underlying per-shard :class:`~repro.runtime.service.Job`, a
    ``GatewayJob`` owns its *own* record buffer and terminal state:
    the router's supervisor forwards telemetry frames from whichever
    shard attempt is currently running, **deduplicating by seed** —
    runs are pure functions of their seed, so after a failover the
    replacement attempt re-produces frames the first attempt already
    streamed, and subscribers must see each seed exactly once.

    :attr:`shard_index` / :attr:`shard_name` always name the shard the
    job is (or last was) running on; :attr:`failovers` counts
    re-dispatches.
    """

    def __init__(self, job_id: str, request: SolveRequest) -> None:
        self.job_id = job_id
        self.request = request
        self.shard_index = -1
        self.shard_name = ""
        self.failovers = 0
        self._records: List[RunTelemetry] = []
        self._seen_seeds: Set[int] = set()
        self._state = JobState.PENDING
        self._result: Optional["EnsembleResult"] = None
        self._error: Optional[BaseException] = None
        self._finished = asyncio.Event()
        self._wakeup = asyncio.Event()
        self._cancel_requested = False
        self._stall_injected = False
        self._used_shards: Set[int] = set()
        self._current: Optional[Job] = None
        self._admitted_t = 0.0
        self._last_progress_t = 0.0

    # -- public read surface -------------------------------------------
    @property
    def state(self) -> JobState:
        """Current lifecycle state (the gateway's view, not a shard's).

        While a failover is in flight the dead attempt's CANCELLED
        state is *not* surfaced — the job is still running as far as
        any client is concerned.
        """
        if self._finished.is_set():
            return self._state
        inner = self._current
        if inner is not None and not inner.done:
            return inner.state
        return JobState.RUNNING if inner is not None else self._state

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self._finished.is_set()

    @property
    def records(self) -> Tuple[RunTelemetry, ...]:
        """Deduplicated telemetry records streamed so far."""
        return tuple(self._records)

    def cancel(self) -> None:
        """Request cooperative cancellation.

        Sticky across failovers: the supervisor will not re-dispatch a
        cancelled job, whichever attempt the cancellation lands on.
        """
        self._cancel_requested = True
        inner = self._current
        if inner is not None:
            inner.cancel()

    async def stream(self) -> AsyncIterator[RunTelemetry]:
        """Yield each seed's telemetry record exactly once.

        Replayable and failover-transparent: late consumers see the
        buffered records first, and records produced by a replacement
        shard attempt appear only for seeds the first attempt never
        delivered.
        """
        idx = 0
        while True:
            # Capture the wakeup event *before* scanning: a record
            # posted after the scan then sets this captured event, so
            # the await below cannot miss it.
            wakeup = self._wakeup
            while idx < len(self._records):
                yield self._records[idx]
                idx += 1
            if self._finished.is_set() and idx >= len(self._records):
                return
            await wakeup.wait()

    async def result(self) -> "EnsembleResult":
        """Await the terminal outcome (bit-identical across failovers)."""
        await self._finished.wait()
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    # -- supervisor-side mutation --------------------------------------
    def _notify(self) -> None:
        wakeup = self._wakeup
        self._wakeup = asyncio.Event()
        wakeup.set()

    def _attach(self, inner: Job, shard_index: int, shard_name: str) -> None:
        """Bind the handle to the shard attempt currently running it."""
        self._current = inner
        self.shard_index = shard_index
        self.shard_name = shard_name
        self._used_shards.add(shard_index)
        self._last_progress_t = asyncio.get_running_loop().time()
        if self._cancel_requested:
            inner.cancel()

    def _post_record(self, record: RunTelemetry) -> None:
        self._last_progress_t = asyncio.get_running_loop().time()
        if self._state is JobState.PENDING:
            self._state = JobState.RUNNING
        if record.seed in self._seen_seeds:
            return  # replayed by a failover attempt: already delivered
        self._seen_seeds.add(int(record.seed))
        self._records.append(record)
        self._notify()

    def _finish(
        self,
        state: JobState,
        result: Optional["EnsembleResult"] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        if self._finished.is_set():
            return
        self._state = state
        self._result = result
        self._error = error
        self._finished.set()
        self._notify()


class ShardRouter:
    """N in-process :class:`AnnealingService` shards behind one front.

    Use as an async context manager::

        async with ShardRouter(shards=2, policy="least-inflight") as router:
            job = await router.submit(request)
            async for record in job.stream():
                ...
            result = await job.result()

    Each shard is named ``shard<i>`` and prefixes its name into every
    telemetry record's ``worker`` field.  ``shard_options`` applies to
    every shard (pool width per shard = ``shard_options.max_workers``).

    Resilience knobs (see module docstring): ``probe_interval_s`` /
    ``eviction_threshold`` / ``probation_probes`` configure the
    :class:`ShardHealth` prober, ``failover_budget`` bounds
    re-dispatches per job, ``stall_timeout_s`` is the frameless-stream
    threshold that triggers a failover, and ``shard_fault_plan``
    injects seeded shard-tier chaos for tests.
    """

    def __init__(
        self,
        shard_options: Optional[EnsembleOptions] = None,
        *,
        shards: int = 2,
        policy: str = RoundRobinPolicy.name,
        probe_interval_s: float = 0.25,
        eviction_threshold: int = 3,
        probation_probes: int = 2,
        failover_budget: int = 2,
        stall_timeout_s: float = 30.0,
        shard_fault_plan: Optional[ShardFaultPlan] = None,
    ) -> None:
        if shards < 1:
            raise GatewayError(f"need at least one shard, got {shards}")
        if failover_budget < 0:
            raise GatewayError(
                f"failover_budget must be >= 0, got {failover_budget}"
            )
        if stall_timeout_s <= 0:
            raise GatewayError(
                f"stall_timeout_s must be > 0, got {stall_timeout_s}"
            )
        options = shard_options if shard_options is not None else EnsembleOptions()
        self.options = options
        self.policy = policy_from_name(policy)
        self._shards: List[AnnealingService] = [
            AnnealingService(options, name=f"shard{i}") for i in range(shards)
        ]
        self.health = ShardHealth(
            self._shards,
            probe_interval_s=probe_interval_s,
            eviction_threshold=eviction_threshold,
            probation_probes=probation_probes,
            fault_plan=shard_fault_plan,
            on_evict=self._on_evict,
            on_stall=self._on_stall,
        )
        self.failover_budget = int(failover_budget)
        self.stall_timeout_s = float(stall_timeout_s)
        self._stall_poll_s = max(0.01, min(0.25, stall_timeout_s / 4.0))
        self._jobs: Dict[str, GatewayJob] = {}
        self._supervisors: Set["asyncio.Task[None]"] = set()
        self._counter = itertools.count(1)
        self._submitted = 0
        self._rejected = 0
        self._failovers = 0
        self._stalls = 0
        self._by_backend: Dict[str, int] = {}
        self._by_kind: Dict[str, int] = {}
        self._skips = [0 for _ in range(shards)]
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def shards(self) -> Tuple[AnnealingService, ...]:
        """The backend services, in index order."""
        return tuple(self._shards)

    @property
    def jobs(self) -> Dict[str, GatewayJob]:
        """Snapshot of every routed job, keyed by job id."""
        return dict(self._jobs)

    @property
    def healthy_shards(self) -> int:
        """Shards currently routable and accepting work (``/readyz``)."""
        return sum(
            1
            for i, shard in enumerate(self._shards)
            if self.health.is_routable(i) and shard.started
        )

    async def start(self) -> None:
        """Start every live shard and the health prober (idempotent;
        :meth:`submit` auto-starts).  Crashed (closed) shards are
        skipped — they stay down until replaced."""
        if self._closed:
            raise GatewayError("router has been shut down; build a new one")
        for shard in self._shards:
            if not shard.closed:
                await shard.start()
        await self.health.start()

    async def submit(self, request: SolveRequest) -> GatewayJob:
        """Route one request to a shard; returns its handle.

        Non-blocking admission: raises :class:`GatewayOverloadedError`
        when every routable shard is at capacity (instead of queueing
        the caller) and :class:`GatewayUnavailableError` when no shard
        is routable at all.  The routed job's id is unique across
        shards, and a supervisor task follows the job through any
        failovers.
        """
        if self._closed:
            raise GatewayError("router is shut down; no new jobs accepted")
        await self.start()
        routable = [
            i
            for i, shard in enumerate(self._shards)
            if self.health.is_routable(i) and shard.started
        ]
        if not routable:
            self._rejected += 1
            raise GatewayUnavailableError(
                f"all {len(self._shards)} shards are evicted or down; "
                "no shard can take jobs"
            )
        candidates = []
        for i in routable:
            if self._shards[i].at_capacity:
                self._skips[i] += 1
            else:
                candidates.append(i)
        if not candidates:
            self._rejected += 1
            raise GatewayOverloadedError(
                f"all {len(routable)} routable shards at capacity "
                f"({self.options.max_pending_jobs} pending jobs each); "
                "retry later"
            )
        index = self.policy.choose(candidates, self._shards)
        shard = self._shards[index]
        label = request.tag or "job"
        job_id = f"{label}-{next(self._counter):04d}"
        inner = await shard.submit(request, job_id=job_id)
        routed = GatewayJob(job_id, request)
        routed._admitted_t = asyncio.get_running_loop().time()
        routed._attach(inner, index, shard.name)
        self._jobs[job_id] = routed
        self._submitted += 1
        self._by_backend[request.backend] = (
            self._by_backend.get(request.backend, 0) + 1
        )
        kind = problem_kind(request.instance)
        self._by_kind[kind] = self._by_kind.get(kind, 0) + 1
        supervisor = asyncio.get_running_loop().create_task(
            self._supervise(routed), name=f"repro-supervise-{job_id}"
        )
        self._supervisors.add(supervisor)
        supervisor.add_done_callback(self._supervisors.discard)
        return routed

    def get(self, job_id: str) -> GatewayJob:
        """Look up a routed job; :class:`UnknownJobError` when absent."""
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"no such job: {job_id!r}") from None

    async def shutdown(self, drain: bool = True) -> None:
        """Shut every shard down (drain or cancel). Idempotent."""
        self._closed = True
        await self.health.stop()
        for shard in self._shards:
            if not shard.closed:
                await shard.shutdown(drain=drain)
        if self._supervisors:
            await asyncio.gather(
                *list(self._supervisors), return_exceptions=True
            )
        for job in self._jobs.values():
            if not job.done:
                job._finish(
                    JobState.CANCELLED,
                    error=AnnealerError(
                        f"job {job.job_id} cancelled: router shut down"
                    ),
                )

    async def __aenter__(self) -> "ShardRouter":
        await self.start()
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.shutdown(drain=exc_type is None)

    # -- failover machinery --------------------------------------------
    def _on_evict(self, shard_index: int) -> None:
        """Health hook: a shard was evicted — cut its jobs loose.

        Cancelling the per-shard attempts makes every affected
        supervisor observe a not-client-requested cancellation, which
        is the retryable outcome that triggers a failover.
        """
        for job in self._jobs.values():
            inner = job._current
            if (
                not job.done
                and job.shard_index == shard_index
                and inner is not None
                and not inner.done
            ):
                inner.cancel()

    def _on_stall(self, shard_index: int) -> None:
        """Chaos hook: an injected ``STREAM_STALL`` hit a shard."""
        for job in self._jobs.values():
            if not job.done and job.shard_index == shard_index:
                job._stall_injected = True

    def _pick_failover_shard(self, job: GatewayJob) -> Optional[int]:
        """A healthy, started, non-full shard the job has not used yet.

        Never re-uses a shard (its job-id space already holds this id),
        ties break to the least-loaded shard.
        """
        fresh = [
            i
            for i, shard in enumerate(self._shards)
            if self.health.is_routable(i)
            and shard.started
            and not shard.at_capacity
            and i not in job._used_shards
        ]
        if not fresh:
            return None
        return min(fresh, key=lambda i: (self._shards[i].inflight_jobs, i))

    async def _supervise(self, job: GatewayJob) -> None:
        """Follow one routed job to a terminal state, failing it over
        to fresh shards (bounded by ``failover_budget``) whenever an
        attempt dies for a non-client, non-deterministic reason."""
        loop = asyncio.get_running_loop()
        backoff = Backoff(
            self.options.backoff_base_s,
            self.options.backoff_cap_s,
            seed=int(job.request.seeds[0]),
        )
        for attempt in range(self.failover_budget + 1):
            if attempt > 0:
                delay = backoff.delay_s(attempt)
                if delay > 0:
                    await asyncio.sleep(delay)
                if job._cancel_requested or self._closed:
                    job._finish(
                        JobState.CANCELLED,
                        error=AnnealerError(
                            f"job {job.job_id} cancelled during failover"
                        ),
                    )
                    return
                request = job.request
                if request.deadline_s is not None:
                    remaining = request.deadline_s - (
                        loop.time() - job._admitted_t
                    )
                    if remaining <= 0:
                        job._finish(
                            JobState.FAILED,
                            error=DeadlineExceededError(
                                f"job {job.job_id} deadline of "
                                f"{request.deadline_s}s expired before "
                                f"failover attempt {attempt}"
                            ),
                        )
                        return
                    request = replace(request, deadline_s=remaining)
                index = self._pick_failover_shard(job)
                if index is None:
                    job._finish(
                        JobState.FAILED,
                        error=GatewayError(
                            f"job {job.job_id} lost its shard and no "
                            "unused healthy shard is available to fail "
                            "over to"
                        ),
                    )
                    return
                shard = self._shards[index]
                try:
                    inner = await shard.submit(request, job_id=job.job_id)
                except DeadlineExceededError as exc:
                    job._finish(JobState.FAILED, error=exc)
                    return
                except AnnealerError:
                    # Shard died between pick and admit: burn the
                    # attempt and look again.
                    continue
                job._attach(inner, index, shard.name)
                job._stall_injected = False
                job.failovers += 1
                self._failovers += 1
            if await self._watch_attempt(job):
                return
        job._finish(
            JobState.FAILED,
            error=GatewayError(
                f"job {job.job_id} exhausted its failover budget "
                f"({self.failover_budget}) without completing"
            ),
        )

    async def _watch_attempt(self, job: GatewayJob) -> bool:
        """Watch the current shard attempt until it settles.

        Returns True when the gateway job reached a terminal outcome
        (finished), False when the attempt died retryably (evicted /
        crashed / stalled) and the supervisor should fail over.
        """
        inner = job._current
        assert inner is not None
        loop = asyncio.get_running_loop()
        forward = loop.create_task(self._forward_records(job, inner))
        while True:
            done, _ = await asyncio.wait(
                {forward}, timeout=self._stall_poll_s
            )
            if done:
                break
            if job._cancel_requested:
                inner.cancel()
                continue
            stalled = job._stall_injected or (
                bool(job._records)
                and loop.time() - job._last_progress_t
                > self.stall_timeout_s
            )
            if stalled and not inner.done:
                # The stream went quiet mid-job: treat the attempt as
                # wedged and cut it loose so the failover path takes
                # over (the injected chaos variant skips the wait).
                job._stall_injected = False
                self._stalls += 1
                inner.cancel()
        if inner.state is JobState.DONE:
            job._finish(JobState.DONE, result=await inner.result())
            return True
        error = inner.error
        if isinstance(error, DeadlineExceededError):
            job._finish(JobState.FAILED, error=error)
            return True
        if inner.state is JobState.CANCELLED:
            if job._cancel_requested:
                job._finish(
                    JobState.CANCELLED,
                    error=error
                    or AnnealerError(f"job {job.job_id} cancelled"),
                )
                return True
            return False  # evicted / crashed / stalled: retryable
        # FAILED for a run-level reason: runs are deterministic, a
        # re-dispatch would fail identically — surface it.
        job._finish(
            JobState.FAILED,
            error=error or GatewayError(f"job {job.job_id} failed"),
        )
        return True

    async def _forward_records(self, job: GatewayJob, inner: Job) -> None:
        """Pump one attempt's telemetry into the gateway job buffer."""
        async for record in inner.stream():
            job._post_record(record)

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        """Gateway + per-shard counters (``repro.gateway_metrics/v1``).

        Per-shard ``faults_by_kind`` aggregates the chaos faults
        injected into that shard's jobs so far (from the records each
        job has streamed), ``skips`` counts submit attempts that found
        the shard at capacity, and ``state`` is the health prober's
        view (``healthy`` / ``probation`` / ``evicted``).  Gateway-
        level counters add the resilience ledger: ``failovers``
        (jobs re-dispatched to another shard), ``evictions`` /
        ``readmissions`` / ``probes`` from the health subsystem,
        ``stalls`` (attempts cut loose for a quiet stream), and
        ``shard_states`` (state-name → shard count).  ``jobs_by_
        backend`` counts accepted submissions per solver backend.
        """
        per_shard: List[Dict[str, Any]] = []
        for i, shard in enumerate(self._shards):
            shard_jobs = shard.jobs
            faults: Dict[str, int] = {}
            states: Dict[str, int] = {}
            for job in shard_jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
                for record in job.records:
                    for kind in record.faults_injected:
                        faults[kind] = faults.get(kind, 0) + 1
            per_shard.append(
                {
                    "name": shard.name,
                    "jobs": len(shard_jobs),
                    "inflight": shard.inflight_jobs,
                    "at_capacity": shard.at_capacity,
                    "state": self.health.state(i).value,
                    "skips": self._skips[i],
                    "pool_rebuilds": shard.pool_rebuilds,
                    "states": states,
                    "faults_by_kind": faults,
                }
            )
        return {
            "schema": METRICS_SCHEMA,
            "policy": self.policy.name,
            "shards": len(self._shards),
            "jobs_submitted": self._submitted,
            "jobs_rejected": self._rejected,
            "jobs_by_backend": dict(sorted(self._by_backend.items())),
            "jobs_by_problem_kind": dict(sorted(self._by_kind.items())),
            "inflight": sum(s.inflight_jobs for s in self._shards),
            "failovers": self._failovers,
            "stalls": self._stalls,
            "evictions": self.health.evictions,
            "readmissions": self.health.readmissions,
            "probes": self.health.probes,
            "shard_states": self.health.shard_states(),
            "per_shard": per_shard,
        }


# Re-exported for convenience: the health types live in their own
# module but arrive with the router in practice.
__all__ = [
    "GatewayJob",
    "GatewayOverloadedError",
    "GatewayUnavailableError",
    "LeastInflightPolicy",
    "METRICS_SCHEMA",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "ShardHealth",
    "ShardRouter",
    "ShardState",
    "UnknownJobError",
    "policy_from_name",
]
