"""Wire protocol of the serving gateway.

Everything that crosses the HTTP boundary is JSON with an explicit
``schema`` tag, so clients can verify what they are talking to and the
formats can evolve without guessing:

* ``repro.solve_request/v1`` — a complete
  :class:`~repro.runtime.options.SolveRequest` (problem payload,
  seeds, backend name, annealer config, runtime options including the
  chaos :class:`~repro.runtime.faults.FaultPlan`), produced by
  :func:`encode_solve_request` and validated strictly by
  :func:`decode_solve_request`.  The problem payload is a tagged union
  (:func:`encode_problem`): a TSP instance (``kind: "tsp"``, and the
  backward-compatible default when the tag is absent — pre-registry
  payloads decode unchanged), a dense Ising model (``"ising"``), or a
  Max-Cut graph (``"maxcut"``), each dispatchable to any registered
  backend that declares the kind;
* ``repro.run_telemetry/v1`` — the per-seed stream frame; the SSE
  ``data:`` payload is exactly
  :meth:`repro.runtime.telemetry.RunTelemetry.to_json_line`, parsed
  back (unknown-field tolerant, so newer servers can add fields) by
  :func:`parse_telemetry_frame`;
* ``repro.job/v1`` / ``repro.job_result/v1`` — job handles and the
  final seed-ordered result (:func:`encode_job_result`);
* ``repro.error/v1`` — every non-2xx response body
  (:func:`error_payload`).

Decoding is *strict*: unknown keys, wrong types, and out-of-range
values raise :class:`ProtocolError` (mapped to HTTP 400 by the
server), never a silent default.  Only the telemetry stream is
tolerant of unknown fields — readers of a long-lived stream must not
break when the server learns new counters.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, Mapping, Optional

import numpy as np

from repro.errors import GatewayError, ReproError
from repro.runtime.faults import FaultPlan
from repro.runtime.options import EnsembleOptions, SolveRequest
from repro.runtime.telemetry import RunTelemetry
from repro.tsp.instance import TSPInstance

if TYPE_CHECKING:  # import cycle: repro.annealer.batch imports runtime
    from repro.annealer.batch import EnsembleResult
    from repro.annealer.config import AnnealerConfig
    from repro.backends.base import ProblemLike
    from repro.ising.model import IsingModel
    from repro.maxcut.problem import MaxCutProblem
    from repro.problems.qubo import QUBOProblem

REQUEST_SCHEMA = "repro.solve_request/v1"
TELEMETRY_SCHEMA = "repro.run_telemetry/v1"
JOB_SCHEMA = "repro.job/v1"
RESULT_SCHEMA = "repro.job_result/v1"
ERROR_SCHEMA = "repro.error/v1"
METRICS_SCHEMA = "repro.gateway_metrics/v1"
END_SCHEMA = "repro.job_end/v1"
HEALTH_SCHEMA = "repro.health/v1"


class ProtocolError(GatewayError):
    """A wire payload violates the schema (HTTP 400)."""


# ----------------------------------------------------------------------
# Validation helpers — small, strict, and loud.
# ----------------------------------------------------------------------
def _require_mapping(payload: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise ProtocolError(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _reject_unknown(
    payload: Mapping[str, Any], allowed: FrozenSet[str], what: str
) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ProtocolError(f"{what} has unknown fields {unknown}")


def _get_str(payload: Mapping[str, Any], key: str, default: str = "") -> str:
    value = payload.get(key, default)
    if not isinstance(value, str):
        raise ProtocolError(f"field {key!r} must be a string")
    return value


def _get_bool(payload: Mapping[str, Any], key: str, default: bool) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise ProtocolError(f"field {key!r} must be a boolean")
    return value


def _get_int(payload: Mapping[str, Any], key: str, default: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {key!r} must be an integer")
    return value


def _get_float(
    payload: Mapping[str, Any], key: str, default: float
) -> float:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"field {key!r} must be a number")
    return float(value)


def _get_opt_int(
    payload: Mapping[str, Any], key: str, default: Optional[int]
) -> Optional[int]:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"field {key!r} must be an integer or null")
    return value


def _get_opt_float(
    payload: Mapping[str, Any], key: str, default: Optional[float]
) -> Optional[float]:
    value = payload.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"field {key!r} must be a number or null")
    return float(value)


# ----------------------------------------------------------------------
# Instance
# ----------------------------------------------------------------------
_INSTANCE_FIELDS = frozenset(
    {"coords", "name", "comment", "edge_weight_type"}
)


def encode_instance(instance: TSPInstance) -> Dict[str, Any]:
    """JSON view of a :class:`TSPInstance` (coordinates inline)."""
    return {
        "name": instance.name,
        "comment": instance.comment,
        "edge_weight_type": instance.edge_weight_type,
        "coords": [[float(x), float(y)] for x, y in instance.coords],
    }


def decode_instance(payload: Any) -> TSPInstance:
    """Rebuild a :class:`TSPInstance`; strict about shape and types."""
    payload = _require_mapping(payload, "instance")
    _reject_unknown(payload, _INSTANCE_FIELDS, "instance")
    coords = payload.get("coords")
    if not isinstance(coords, list) or not coords:
        raise ProtocolError("instance.coords must be a non-empty list")
    try:
        arr = np.asarray(coords, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"instance.coords not numeric: {exc}") from exc
    try:
        return TSPInstance(
            coords=arr,
            name=_get_str(payload, "name", "unnamed"),
            comment=_get_str(payload, "comment", ""),
            edge_weight_type=_get_str(payload, "edge_weight_type", "GEOM"),
        )
    except ReproError as exc:
        raise ProtocolError(f"invalid instance: {exc}") from exc


# ----------------------------------------------------------------------
# Problem union — the tagged payload of a solve request
# ----------------------------------------------------------------------
_ISING_FIELDS = frozenset({"kind", "couplings", "field", "convention"})
_MAXCUT_FIELDS = frozenset({"kind", "n_nodes", "edges", "weights", "name"})
_QUBO_FIELDS = frozenset({"kind", "n_vars", "terms", "offset", "name"})


def encode_ising_model(model: "IsingModel") -> Dict[str, Any]:
    """JSON view of an :class:`~repro.ising.model.IsingModel`."""
    return {
        "kind": "ising",
        "couplings": [
            [float(x) for x in row] for row in model.couplings
        ],
        "field": [float(h) for h in model.field],
        "convention": model.convention,
    }


def decode_ising_model(payload: Mapping[str, Any]) -> "IsingModel":
    """Rebuild an :class:`IsingModel`; strict about shape and types."""
    from repro.ising.model import IsingModel

    _reject_unknown(payload, _ISING_FIELDS, "instance")
    couplings = payload.get("couplings")
    if not isinstance(couplings, list) or not couplings:
        raise ProtocolError("instance.couplings must be a non-empty list")
    try:
        j = np.asarray(couplings, dtype=np.float64)
        h = (
            None
            if payload.get("field") is None
            else np.asarray(payload["field"], dtype=np.float64)
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"instance payload not numeric: {exc}") from exc
    try:
        return IsingModel(
            j, field=h, convention=_get_str(payload, "convention", "pm1")
        )
    except ReproError as exc:
        raise ProtocolError(f"invalid ising model: {exc}") from exc


def encode_maxcut_problem(problem: "MaxCutProblem") -> Dict[str, Any]:
    """JSON view of a :class:`~repro.maxcut.problem.MaxCutProblem`."""
    return {
        "kind": "maxcut",
        "n_nodes": int(problem.n_nodes),
        "edges": [[int(u), int(v)] for u, v in problem.edges],
        "weights": [float(w) for w in problem.weights],
        "name": problem.name,
    }


def decode_maxcut_problem(payload: Mapping[str, Any]) -> "MaxCutProblem":
    """Rebuild a :class:`MaxCutProblem`; strict about shape and types."""
    from repro.maxcut.problem import MaxCutProblem

    _reject_unknown(payload, _MAXCUT_FIELDS, "instance")
    edges = payload.get("edges")
    if not isinstance(edges, list) or any(
        not isinstance(e, list) or len(e) != 2 for e in edges
    ):
        raise ProtocolError("instance.edges must be a list of [u, v] pairs")
    weights = payload.get("weights")
    try:
        w = None if weights is None else np.asarray(weights, dtype=np.float64)
        pairs = [(int(u), int(v)) for u, v in edges]
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"instance payload not numeric: {exc}") from exc
    try:
        return MaxCutProblem(
            _get_int(payload, "n_nodes", 0),
            pairs,
            weights=w,
            name=_get_str(payload, "name", "maxcut"),
        )
    except ReproError as exc:
        raise ProtocolError(f"invalid maxcut problem: {exc}") from exc


def encode_qubo_problem(problem: "QUBOProblem") -> Dict[str, Any]:
    """JSON view of a :class:`~repro.problems.qubo.QUBOProblem`.

    COO terms over the canonical upper triangle — the same layout as
    the ``repro.qubo/v1`` file interchange, minus the schema tag (the
    ``kind`` discriminator plays that role on the wire).
    """
    from repro.problems.io import qubo_to_dict

    doc = qubo_to_dict(problem)
    return {
        "kind": "qubo",
        "n_vars": doc["n_vars"],
        "terms": doc["terms"],
        "offset": doc["offset"],
        "name": doc["name"],
    }


def decode_qubo_problem(payload: Mapping[str, Any]) -> "QUBOProblem":
    """Rebuild a :class:`QUBOProblem`; strict about shape and types."""
    from repro.problems.io import QUBO_SCHEMA, qubo_from_dict

    _reject_unknown(payload, _QUBO_FIELDS, "instance")
    doc = {
        "schema": QUBO_SCHEMA,
        "n_vars": payload.get("n_vars"),
        "terms": payload.get("terms"),
        "offset": payload.get("offset", 0.0),
        "name": _get_str(payload, "name", "qubo"),
    }
    try:
        return qubo_from_dict(doc)
    except ReproError as exc:
        raise ProtocolError(f"invalid qubo problem: {exc}") from exc


def encode_problem(problem: "ProblemLike") -> Dict[str, Any]:
    """Tagged JSON view of any problem payload.

    The ``kind`` key discriminates the union on the wire; TSP
    instances keep their original field layout (plus the tag), so
    pre-registry clients and recorded payloads stay compatible.
    """
    from repro.ising.model import IsingModel
    from repro.maxcut.problem import MaxCutProblem
    from repro.problems.qubo import QUBOProblem

    if isinstance(problem, IsingModel):
        return encode_ising_model(problem)
    if isinstance(problem, MaxCutProblem):
        return encode_maxcut_problem(problem)
    if isinstance(problem, QUBOProblem):
        return encode_qubo_problem(problem)
    return {"kind": "tsp", **encode_instance(problem)}


def decode_problem(payload: Any) -> "ProblemLike":
    """Rebuild a problem payload; the ``kind`` tag discriminates.

    A payload without ``kind`` is a TSP instance: every
    ``repro.solve_request/v1`` body encoded before the problem union
    existed decodes unchanged (and dispatches to the default
    cluster-CIM backend).
    """
    payload = _require_mapping(payload, "instance")
    kind = _get_str(payload, "kind", "tsp")
    if kind == "ising":
        return decode_ising_model(payload)
    if kind == "maxcut":
        return decode_maxcut_problem(payload)
    if kind == "qubo":
        return decode_qubo_problem(payload)
    if kind != "tsp":
        raise ProtocolError(f"unknown problem kind {kind!r}")
    return decode_instance(
        {key: value for key, value in payload.items() if key != "kind"}
    )


# ----------------------------------------------------------------------
# Annealer config
# ----------------------------------------------------------------------
_CONFIG_FIELDS = frozenset(
    {
        "strategy",
        "schedule",
        "top_size",
        "weight_bits",
        "cell_params",
        "noise_source",
        "noise_target",
        "parallel_update",
        "seed",
        "record_trace",
        "trace_every",
    }
)


def encode_config(config: "AnnealerConfig") -> Dict[str, Any]:
    """JSON view of an :class:`AnnealerConfig`.

    The cluster strategy travels as its Table I label (``"1/2/3"``,
    ``"4"``, ``"arbitrary"``) — the same form the CLI accepts — so the
    wire never carries arbitrary pickled objects.
    """
    from repro.clustering.strategies import ClusterStrategy

    strategy = config.strategy
    label = (
        strategy.name if isinstance(strategy, ClusterStrategy) else str(strategy)
    )
    return {
        "strategy": label,
        "schedule": asdict(config.schedule),
        "top_size": config.top_size,
        "weight_bits": config.weight_bits,
        "cell_params": asdict(config.cell_params),
        "noise_source": config.noise_source.value,
        "noise_target": config.noise_target.value,
        "parallel_update": config.parallel_update,
        "seed": config.seed,
        "record_trace": config.record_trace,
        "trace_every": config.trace_every,
    }


def decode_config(payload: Any) -> "AnnealerConfig":
    """Rebuild an :class:`AnnealerConfig` from its wire form."""
    from repro.annealer.config import AnnealerConfig
    from repro.ising.schedule import VddSchedule
    from repro.sram.cell import SRAMCellParams

    payload = _require_mapping(payload, "config")
    _reject_unknown(payload, _CONFIG_FIELDS, "config")
    defaults = AnnealerConfig()
    try:
        schedule = defaults.schedule
        if "schedule" in payload:
            sched = _require_mapping(payload["schedule"], "config.schedule")
            _reject_unknown(
                sched,
                frozenset(asdict(defaults.schedule)),
                "config.schedule",
            )
            schedule = VddSchedule(**{**asdict(defaults.schedule), **sched})
        cell_params = defaults.cell_params
        if "cell_params" in payload:
            cp = _require_mapping(payload["cell_params"], "config.cell_params")
            _reject_unknown(
                cp,
                frozenset(asdict(defaults.cell_params)),
                "config.cell_params",
            )
            cell_params = SRAMCellParams(
                **{**asdict(defaults.cell_params), **cp}
            )
        return AnnealerConfig(
            strategy=_get_str(payload, "strategy", "1/2/3"),
            schedule=schedule,
            top_size=_get_int(payload, "top_size", defaults.top_size),
            weight_bits=_get_int(
                payload, "weight_bits", defaults.weight_bits
            ),
            cell_params=cell_params,
            noise_source=_get_str(
                payload, "noise_source", defaults.noise_source.value
            ),
            noise_target=_get_str(
                payload, "noise_target", defaults.noise_target.value
            ),
            parallel_update=_get_bool(
                payload, "parallel_update", defaults.parallel_update
            ),
            seed=_get_int(payload, "seed", defaults.seed),
            record_trace=_get_bool(
                payload, "record_trace", defaults.record_trace
            ),
            trace_every=_get_int(
                payload, "trace_every", defaults.trace_every
            ),
        )
    except ProtocolError:
        raise
    except (ReproError, ValueError, TypeError) as exc:
        raise ProtocolError(f"invalid config: {exc}") from exc


# ----------------------------------------------------------------------
# Runtime options (incl. the chaos plan)
# ----------------------------------------------------------------------
_PLAN_FIELDS = frozenset(
    {
        "seed",
        "crash_rate",
        "hang_rate",
        "corrupt_rate",
        "broken_pool_rate",
        "hang_s",
        "max_faults_per_run",
    }
)
_OPTIONS_FIELDS = frozenset(
    {
        "max_workers",
        "timeout_s",
        "max_retries",
        "chunk_size",
        "strict",
        "max_inflight_per_job",
        "max_pending_jobs",
        "backoff_base_s",
        "backoff_cap_s",
        "self_heal_budget",
        "breaker_threshold",
        "fault_plan",
        "batch_size",
    }
)


def encode_fault_plan(plan: Optional[FaultPlan]) -> Optional[Dict[str, Any]]:
    """JSON view of a chaos :class:`FaultPlan` (None passes through)."""
    return None if plan is None else asdict(plan)


def decode_fault_plan(payload: Any) -> Optional[FaultPlan]:
    """Rebuild a :class:`FaultPlan`; null means no chaos."""
    if payload is None:
        return None
    payload = _require_mapping(payload, "options.fault_plan")
    _reject_unknown(payload, _PLAN_FIELDS, "options.fault_plan")
    defaults = FaultPlan()
    try:
        return FaultPlan(
            seed=_get_int(payload, "seed", defaults.seed),
            crash_rate=_get_float(
                payload, "crash_rate", defaults.crash_rate
            ),
            hang_rate=_get_float(payload, "hang_rate", defaults.hang_rate),
            corrupt_rate=_get_float(
                payload, "corrupt_rate", defaults.corrupt_rate
            ),
            broken_pool_rate=_get_float(
                payload, "broken_pool_rate", defaults.broken_pool_rate
            ),
            hang_s=_get_float(payload, "hang_s", defaults.hang_s),
            max_faults_per_run=_get_int(
                payload, "max_faults_per_run", defaults.max_faults_per_run
            ),
        )
    except ReproError as exc:
        raise ProtocolError(f"invalid fault_plan: {exc}") from exc


def encode_options(options: EnsembleOptions) -> Dict[str, Any]:
    """JSON view of :class:`EnsembleOptions`."""
    return {
        "max_workers": options.max_workers,
        "timeout_s": options.timeout_s,
        "max_retries": options.max_retries,
        "chunk_size": options.chunk_size,
        "strict": options.strict,
        "max_inflight_per_job": options.max_inflight_per_job,
        "max_pending_jobs": options.max_pending_jobs,
        "backoff_base_s": options.backoff_base_s,
        "backoff_cap_s": options.backoff_cap_s,
        "self_heal_budget": options.self_heal_budget,
        "breaker_threshold": options.breaker_threshold,
        "fault_plan": encode_fault_plan(options.fault_plan),
        "batch_size": options.batch_size,
    }


def decode_options(payload: Any) -> EnsembleOptions:
    """Rebuild :class:`EnsembleOptions`; validation errors are 400s."""
    payload = _require_mapping(payload, "options")
    _reject_unknown(payload, _OPTIONS_FIELDS, "options")
    defaults = EnsembleOptions()
    try:
        return EnsembleOptions(
            max_workers=_get_int(
                payload, "max_workers", defaults.max_workers
            ),
            timeout_s=_get_opt_float(
                payload, "timeout_s", defaults.timeout_s
            ),
            max_retries=_get_int(
                payload, "max_retries", defaults.max_retries
            ),
            chunk_size=_get_opt_int(
                payload, "chunk_size", defaults.chunk_size
            ),
            strict=_get_bool(payload, "strict", defaults.strict),
            max_inflight_per_job=_get_opt_int(
                payload, "max_inflight_per_job", defaults.max_inflight_per_job
            ),
            max_pending_jobs=_get_int(
                payload, "max_pending_jobs", defaults.max_pending_jobs
            ),
            backoff_base_s=_get_float(
                payload, "backoff_base_s", defaults.backoff_base_s
            ),
            backoff_cap_s=_get_float(
                payload, "backoff_cap_s", defaults.backoff_cap_s
            ),
            self_heal_budget=_get_int(
                payload, "self_heal_budget", defaults.self_heal_budget
            ),
            breaker_threshold=_get_opt_int(
                payload, "breaker_threshold", defaults.breaker_threshold
            ),
            fault_plan=decode_fault_plan(payload.get("fault_plan")),
            batch_size=_get_int(
                payload, "batch_size", defaults.batch_size
            ),
        )
    except ProtocolError:
        raise
    except ReproError as exc:
        raise ProtocolError(f"invalid options: {exc}") from exc


# ----------------------------------------------------------------------
# SolveRequest — the unit of work on the wire
# ----------------------------------------------------------------------
_REQUEST_FIELDS = frozenset(
    {
        "schema",
        "instance",
        "seeds",
        "config",
        "reference",
        "options",
        "tag",
        "backend",
        "deadline_s",
    }
)


def encode_solve_request(request: SolveRequest) -> Dict[str, Any]:
    """Serialize a :class:`SolveRequest` to its ``repro.solve_request/v1``
    wire form (pure JSON-native values, no pickles)."""
    return {
        "schema": REQUEST_SCHEMA,
        "instance": encode_problem(request.instance),
        "seeds": [int(s) for s in request.seeds],
        "config": (
            None if request.config is None else encode_config(request.config)
        ),
        "reference": request.reference,
        "options": encode_options(request.options),
        "tag": request.tag,
        "backend": request.backend,
        "deadline_s": request.deadline_s,
    }


def decode_solve_request(payload: Any) -> SolveRequest:
    """Parse and validate a ``repro.solve_request/v1`` body.

    Strict: the schema tag must match, unknown fields are rejected,
    and every nested object is validated by its own decoder.  All
    failures raise :class:`ProtocolError` (the server's 400 path).
    """
    payload = _require_mapping(payload, "solve request")
    schema = payload.get("schema")
    if schema != REQUEST_SCHEMA:
        raise ProtocolError(
            f"expected schema {REQUEST_SCHEMA!r}, got {schema!r}"
        )
    _reject_unknown(payload, _REQUEST_FIELDS, "solve request")
    if "instance" not in payload:
        raise ProtocolError("solve request is missing 'instance'")
    seeds = payload.get("seeds")
    if (
        not isinstance(seeds, list)
        or not seeds
        or any(isinstance(s, bool) or not isinstance(s, int) for s in seeds)
    ):
        raise ProtocolError("'seeds' must be a non-empty list of integers")
    instance = decode_problem(payload["instance"])
    config = (
        None
        if payload.get("config") is None
        else decode_config(payload["config"])
    )
    options = (
        EnsembleOptions()
        if payload.get("options") is None
        else decode_options(payload["options"])
    )
    try:
        return SolveRequest.build(
            instance,
            seeds,
            config=config,
            reference=_get_opt_float(payload, "reference", None),
            options=options,
            tag=_get_str(payload, "tag", ""),
            backend=_get_str(payload, "backend", "cluster-cim"),
            deadline_s=_get_opt_float(payload, "deadline_s", None),
        )
    except ReproError as exc:
        raise ProtocolError(f"invalid solve request: {exc}") from exc


# ----------------------------------------------------------------------
# Telemetry frames (the SSE payload)
# ----------------------------------------------------------------------
_TELEMETRY_FIELDS = frozenset(
    RunTelemetry(seed=0).to_dict()
)


def parse_telemetry_frame(line: str) -> RunTelemetry:
    """Parse one ``repro.run_telemetry/v1`` JSON line back to a record.

    Unknown fields are ignored (a newer server may stream counters
    this client predates); a missing/foreign schema tag or a frame
    without a seed is a :class:`ProtocolError`.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"telemetry frame is not JSON: {exc}") from exc
    payload = _require_mapping(payload, "telemetry frame")
    schema = payload.get("schema")
    if not isinstance(schema, str) or not schema.startswith(
        "repro.run_telemetry/"
    ):
        raise ProtocolError(
            f"expected a repro.run_telemetry/* frame, got {schema!r}"
        )
    if "seed" not in payload:
        raise ProtocolError("telemetry frame has no 'seed'")
    known = {
        key: value
        for key, value in payload.items()
        if key in _TELEMETRY_FIELDS
    }
    try:
        return RunTelemetry(**known)
    except TypeError as exc:
        raise ProtocolError(f"malformed telemetry frame: {exc}") from exc


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def error_payload(code: str, message: str, **extra: Any) -> Dict[str, Any]:
    """The ``repro.error/v1`` body every non-2xx response carries."""
    return {
        "schema": ERROR_SCHEMA,
        "error": code,
        "message": message,
        **extra,
    }


def health_payload(status: str, **extra: Any) -> Dict[str, Any]:
    """The ``repro.health/v1`` body (``/healthz`` and ``/readyz``)."""
    return {
        "schema": HEALTH_SCHEMA,
        "status": status,
        **extra,
    }


def job_payload(
    job_id: str, state: str, shard: str, **extra: Any
) -> Dict[str, Any]:
    """The ``repro.job/v1`` body (submit/cancel acknowledgements)."""
    return {
        "schema": JOB_SCHEMA,
        "job_id": job_id,
        "state": state,
        "shard": shard,
        **extra,
    }


def encode_job_result(
    job_id: str, shard: str, result: "EnsembleResult"
) -> Dict[str, Any]:
    """The ``repro.job_result/v1`` body: the final seed-ordered result.

    Per-seed tours travel as plain index lists, so a client can verify
    bit-identity against a local :func:`solve_ensemble` run.
    """
    telemetry = result.telemetry
    ok_seeds = (
        [r.seed for r in telemetry.runs if r.ok]
        if telemetry is not None
        else []
    )
    stats = result.ratio_stats
    return {
        "schema": RESULT_SCHEMA,
        "job_id": job_id,
        "shard": shard,
        "state": "done",
        "reference": float(result.reference),
        "seeds": ok_seeds,
        "lengths": [float(r.length) for r in result.results],
        "tours": [[int(c) for c in r.tour] for r in result.results],
        "ratios": [float(x) for x in result.ratios],
        "best": {
            "length": float(result.best.length),
            "tour": [int(c) for c in result.best.tour],
        },
        "ratio_stats": (
            None
            if stats is None
            else {
                "mean": stats.mean,
                "minimum": stats.minimum,
                "maximum": stats.maximum,
            }
        ),
        "telemetry": None if telemetry is None else telemetry.to_dict(),
    }
