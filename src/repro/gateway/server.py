"""Stdlib-only HTTP/SSE front of the serving gateway.

:class:`GatewayServer` exposes a :class:`~repro.gateway.router.
ShardRouter` over plain HTTP/1.1 on ``asyncio.start_server`` — no web
framework, no third-party dependency — with a deliberately small
surface:

* ``POST /v1/jobs`` — submit a ``repro.solve_request/v1`` body;
  answers ``202`` with a ``repro.job/v1`` handle, or ``429`` when
  every shard is at capacity (the router's aggregated backpressure);
* ``GET /v1/jobs/{id}/events`` — Server-Sent Events: one ``run``
  event per completed seed whose ``data:`` line is exactly
  :meth:`RunTelemetry.to_json_line`, replayed from the start for late
  subscribers, terminated by an ``end`` event carrying the job's
  final state;
* ``GET /v1/jobs/{id}`` — long-polls the final seed-ordered
  ``repro.job_result/v1`` (bit-identical to an in-process
  :func:`~repro.annealer.batch.solve_ensemble` of the same request);
* ``DELETE /v1/jobs/{id}`` — cooperative cancellation;
* ``GET /metrics`` — gateway + per-shard counters
  (``repro.gateway_metrics/v1``);
* ``GET /healthz`` — process liveness (always ``200`` while the
  socket answers);
* ``GET /readyz`` — readiness: ``200`` while at least one healthy
  shard can take jobs, ``503`` with a ``repro.error/v1`` body
  otherwise.

Every non-2xx body is a ``repro.error/v1`` document.  Connections are
one-request (``Connection: close``): the server is a test/benchmark
harness and a reference wire format, not a hardened internet-facing
proxy.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.errors import DeadlineExceededError, GatewayError, ReproError
from repro.gateway.protocol import (
    END_SCHEMA,
    ProtocolError,
    decode_solve_request,
    encode_job_result,
    error_payload,
    health_payload,
    job_payload,
)
from repro.gateway.router import (
    GatewayJob,
    GatewayOverloadedError,
    GatewayUnavailableError,
    ShardRouter,
    UnknownJobError,
)
from repro.runtime.service import JobState

MAX_BODY_BYTES = 16 * 1024 * 1024
_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(GatewayError):
    """Internal: carries the status + wire body of a failed request."""

    def __init__(self, status: int, payload: Dict[str, Any]) -> None:
        super().__init__(payload.get("message", _REASONS.get(status, "")))
        self.status = status
        self.payload = payload


class GatewayServer:
    """One listening socket in front of a :class:`ShardRouter`.

    ``port=0`` (default) binds an ephemeral port — read the real
    address from :attr:`url` after :meth:`start`; tests and the CLI
    both rely on this to avoid port races.  The server owns the
    router's lifecycle: :meth:`stop` shuts the shards down too
    (``drain=True`` finishes admitted jobs first).

    Use as an async context manager::

        async with GatewayServer(ShardRouter(shards=2)) as server:
            print(server.url)
            await server.serve_forever()
    """

    def __init__(
        self,
        router: ShardRouter,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.router = router
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)``; raises before :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise GatewayError("server is not listening; call start() first")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        """Base URL of the listening socket (``http://host:port``)."""
        host, port = self.address
        return f"http://{host}:{port}"

    async def start(self) -> None:
        """Start the shards and bind the listening socket."""
        if self._server is not None:
            return
        await self.router.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self.address[1]

    async def stop(self, drain: bool = True) -> None:
        """Close the socket and shut the router down. Idempotent."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.router.shutdown(drain=drain)

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        await self._server.serve_forever()

    async def __aenter__(self) -> "GatewayServer":
        await self.start()
        return self

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.stop(drain=exc_type is None)

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One request per connection; never raises into the loop."""
        try:
            method, path, body = await _read_request(reader)
            await self._dispatch(method, path, body, writer)
        except _HttpError as exc:
            await _send_json(writer, exc.status, exc.payload)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # client went away mid-request/stream; nothing to answer
        # The connection boundary is the last line of defence: an
        # unexpected fault must answer 500 (best effort) and close the
        # socket, never kill the accept loop.
        except Exception as exc:  # repro-lint: ignore[RL005]
            try:
                await _send_json(
                    writer,
                    500,
                    error_payload("internal", f"unhandled error: {exc!r}"),
                )
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Route one parsed request to its handler."""
        if path == "/v1/jobs":
            if method != "POST":
                raise _method_not_allowed(method, path)
            await self._submit(body, writer)
            return
        if path == "/metrics":
            if method != "GET":
                raise _method_not_allowed(method, path)
            await _send_json(writer, 200, self.router.metrics())
            return
        if path == "/healthz":
            if method != "GET":
                raise _method_not_allowed(method, path)
            # Process liveness: answering at all is the signal.
            await _send_json(
                writer,
                200,
                health_payload("alive", shards=len(self.router.shards)),
            )
            return
        if path == "/readyz":
            if method != "GET":
                raise _method_not_allowed(method, path)
            healthy = self.router.healthy_shards
            if healthy < 1:
                raise _HttpError(
                    503,
                    error_payload(
                        "not_ready",
                        "no healthy shard can take jobs",
                        retry=True,
                    ),
                )
            await _send_json(
                writer,
                200,
                health_payload(
                    "ready",
                    shards=len(self.router.shards),
                    healthy_shards=healthy,
                ),
            )
            return
        if path.startswith("/v1/jobs/"):
            tail = path[len("/v1/jobs/") :]
            if tail.endswith("/events"):
                job_id = tail[: -len("/events")]
                if method != "GET":
                    raise _method_not_allowed(method, path)
                await self._stream_events(self._get_job(job_id), writer)
                return
            if "/" not in tail:
                if method == "GET":
                    await self._final_result(self._get_job(tail), writer)
                    return
                if method == "DELETE":
                    await self._cancel(self._get_job(tail), writer)
                    return
                raise _method_not_allowed(method, path)
        raise _HttpError(
            404, error_payload("not_found", f"no route for {path!r}")
        )

    def _get_job(self, job_id: str) -> GatewayJob:
        try:
            return self.router.get(job_id)
        except UnknownJobError as exc:
            raise _HttpError(404, error_payload("unknown_job", str(exc))) from exc

    # -- handlers ------------------------------------------------------
    async def _submit(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        """``POST /v1/jobs``: validate, route, answer 202 (or 429)."""
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(
                400, error_payload("protocol", f"body is not JSON: {exc}")
            ) from exc
        try:
            request = decode_solve_request(payload)
        except ProtocolError as exc:
            raise _HttpError(400, error_payload("protocol", str(exc))) from exc
        try:
            job = await self.router.submit(request)
        except GatewayOverloadedError as exc:
            raise _HttpError(
                429, error_payload("overloaded", str(exc), retry=True)
            ) from exc
        except GatewayUnavailableError as exc:
            raise _HttpError(
                503, error_payload("unavailable", str(exc), retry=True)
            ) from exc
        except DeadlineExceededError as exc:
            raise _HttpError(
                504, error_payload("deadline_exceeded", str(exc))
            ) from exc
        await _send_json(
            writer,
            202,
            job_payload(
                job.job_id,
                job.state.value,
                job.shard_name,
                seeds=len(request.seeds),
            ),
        )

    async def _final_result(
        self, job: GatewayJob, writer: asyncio.StreamWriter
    ) -> None:
        """``GET /v1/jobs/{id}``: long-poll the seed-ordered result."""
        try:
            result = await job.result()
        except DeadlineExceededError as exc:
            raise _HttpError(
                504,
                error_payload(
                    "deadline_exceeded", str(exc), job_id=job.job_id
                ),
            ) from exc
        except ReproError as exc:
            if job.state is JobState.CANCELLED:
                raise _HttpError(
                    409, error_payload("cancelled", str(exc), job_id=job.job_id)
                ) from exc
            raise _HttpError(
                500, error_payload("job_failed", str(exc), job_id=job.job_id)
            ) from exc
        await _send_json(
            writer, 200, encode_job_result(job.job_id, job.shard_name, result)
        )

    async def _cancel(
        self, job: GatewayJob, writer: asyncio.StreamWriter
    ) -> None:
        """``DELETE /v1/jobs/{id}``: cooperative cancellation."""
        job.cancel()
        await _send_json(
            writer,
            202,
            job_payload(job.job_id, job.state.value, job.shard_name),
        )

    async def _stream_events(
        self, job: GatewayJob, writer: asyncio.StreamWriter
    ) -> None:
        """``GET /v1/jobs/{id}/events``: replayable SSE stream."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()
        index = 0
        async for record in job.stream():
            frame = (
                f"id: {index}\r\n"
                f"event: run\r\n"
                f"data: {record.to_json_line()}\r\n"
                f"\r\n"
            )
            writer.write(frame.encode("utf-8"))
            await writer.drain()
            index += 1
        end = json.dumps(
            {
                "schema": END_SCHEMA,
                "job_id": job.job_id,
                "state": job.state.value,
                "records": index,
            },
            separators=(",", ":"),
        )
        writer.write(
            f"id: {index}\r\nevent: end\r\ndata: {end}\r\n\r\n".encode("utf-8")
        )
        await writer.drain()


# ----------------------------------------------------------------------
def _method_not_allowed(method: str, path: str) -> _HttpError:
    return _HttpError(
        405, error_payload("method_not_allowed", f"{method} {path}")
    )


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, bytes]:
    """Parse one HTTP/1.1 request: ``(method, path, body)``.

    Header size is bounded by the stream reader's limit (64 KiB);
    bodies are bounded by :data:`MAX_BODY_BYTES` (413 beyond that).
    The query string, if any, is discarded — no route uses one.
    """
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _HttpError(
            400, error_payload("protocol", f"malformed request line: {lines[0]!r}")
        )
    method, target = parts[0].upper(), parts[1]
    path = target.split("?", 1)[0]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise _HttpError(
            400,
            error_payload("protocol", f"bad Content-Length: {length_text!r}"),
        ) from None
    if length < 0:
        raise _HttpError(
            400, error_payload("protocol", f"bad Content-Length: {length}")
        )
    if length > MAX_BODY_BYTES:
        raise _HttpError(
            413,
            error_payload(
                "too_large", f"body of {length} bytes exceeds {MAX_BODY_BYTES}"
            ),
        )
    body = await reader.readexactly(length) if length else b""
    return method, path, body


async def _send_json(
    writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
) -> None:
    """Write one JSON response and flush (connection closes after)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
