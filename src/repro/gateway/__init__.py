"""HTTP/SSE serving gateway with horizontal shard routing.

The outermost layer of the serving stack (stdlib-only; no web
framework):

* :mod:`repro.gateway.protocol` — versioned JSON wire formats
  (``repro.solve_request/v1`` in, ``repro.run_telemetry/v1`` frames
  and ``repro.job_result/v1`` out);
* :mod:`repro.gateway.router` — :class:`ShardRouter` places jobs on N
  in-process :class:`~repro.runtime.AnnealingService` shards via a
  pluggable policy and aggregates their admission backpressure into
  one 429-style rejection;
* :mod:`repro.gateway.server` — :class:`GatewayServer`, the
  ``asyncio.start_server`` HTTP/SSE front (submit, stream, result,
  cancel, metrics);
* :mod:`repro.gateway.client` — blocking and async clients speaking
  the same protocol (what ``repro submit --url`` uses).

See ``docs/gateway.md`` for the wire format and an end-to-end tour.
"""

from repro.gateway.client import (
    AsyncGatewayClient,
    GatewayClient,
    GatewayHTTPError,
)
from repro.gateway.health import ShardHealth, ShardState
from repro.gateway.protocol import (
    ProtocolError,
    decode_solve_request,
    encode_solve_request,
    parse_telemetry_frame,
)
from repro.gateway.router import (
    GatewayJob,
    GatewayOverloadedError,
    GatewayUnavailableError,
    LeastInflightPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    ShardRouter,
    UnknownJobError,
    policy_from_name,
)
from repro.gateway.server import GatewayServer

__all__ = [
    "AsyncGatewayClient",
    "GatewayClient",
    "GatewayHTTPError",
    "GatewayJob",
    "GatewayOverloadedError",
    "GatewayServer",
    "GatewayUnavailableError",
    "LeastInflightPolicy",
    "ProtocolError",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "ShardHealth",
    "ShardRouter",
    "ShardState",
    "UnknownJobError",
    "decode_solve_request",
    "encode_solve_request",
    "parse_telemetry_frame",
    "policy_from_name",
]
