"""Command-line interface.

Installs as ``repro`` (console script) and also runs as
``python -m repro.cli``.  Subcommands:

* ``solve``     — solve a problem with a registered solver backend
  (``--backend``, default the clustered CIM annealer; see
  ``docs/backends.md``) and report quality + hardware cost; the
  problem payload follows the backend — a TSP (synthetic family or a
  TSPLIB file) for ``cluster-cim``/``dense-ising``, a G-set-style
  Max-Cut graph for ``maxcut-sb``, a random dense Ising model for
  ``simcim``.  With ``--ensemble K`` runs a multi-seed ensemble
  (optionally fanned out over ``--workers`` processes) routed through
  the serving runtime (:mod:`repro.runtime.service`); ``--stream``
  prints each run's telemetry frame as it completes,
  ``--max-inflight`` caps the job's concurrent seeds,
  ``--telemetry-out`` exports the per-run telemetry JSON, and
  ``--chaos-seed`` runs the ensemble under the deterministic
  fault-injection layer (``docs/robustness.md``);
* ``serve``     — run the HTTP/SSE serving gateway
  (:mod:`repro.gateway`): N :class:`~repro.runtime.AnnealingService`
  shards behind one ``POST /v1/jobs`` endpoint with a pluggable
  routing policy (``docs/gateway.md``);
* ``submit``    — submit a solve to a running gateway over HTTP and
  (optionally) stream its telemetry frames back;
* ``capacity``  — the Fig. 1 memory-capacity table for given sizes;
* ``sram-curve`` — the Fig. 6b Monte-Carlo error-rate sweep;
* ``ppa``       — size a chip for a target problem (Table II / Fig. 7 view);
* ``maxcut``    — anneal a Max-Cut instance (Table III workload), random
  or loaded from a rudy/``.mc`` edge-list file (``--file``);
* ``problems``  — the QUBO workload subsystem (:mod:`repro.problems`):
  ``list`` the registered problem families, ``convert`` published
  ``.qubo``/BQP files to the ``repro.qubo/v1`` JSON interchange,
  ``solve`` a family instance (or a QUBO file) on any QUBO-capable
  backend with per-op instrumentation and a decoded, feasibility-checked
  solution, and ``submit`` a family instance to a running gateway
  (``docs/problems.md``).

Examples
--------
::

    repro solve --family rl --n 1000 --strategy 1/2/3 --seed 7 --ppa
    repro solve --tsplib pcb3038.tsp
    repro solve --backend maxcut-sb --n 300 --ensemble 4
    repro solve --backend dense-ising --n 12 --reference
    repro solve --family rl --n 1000 --ensemble 8 --workers 4 \
                --telemetry-out telemetry.json
    repro solve --family rl --n 1000 --ensemble 8 --workers 4 --stream
    repro solve --family rl --n 200 --ensemble 16 --chaos-seed 42 \
                --chaos-crash-rate 0.2
    repro serve --shards 2 --workers 2 --policy least-inflight
    repro submit --url http://127.0.0.1:8642 --family rl --n 500 \
                 --ensemble 8 --stream
    repro submit --url http://127.0.0.1:8642 --backend simcim --n 64
    repro capacity --sizes 1000 10000 85900
    repro sram-curve --samples 1000
    repro ppa --n 85900 --p 3
    repro maxcut --nodes 300 --sweeps 200
    repro maxcut --file g05_60.0.mc --sweeps 400
    repro problems list
    repro problems convert bqp50-1.qubo bqp50-1.json
    repro problems solve --family coloring --size 24 --backend simcim
    repro problems solve --file bqp50-1.json --backend dense-ising
    repro problems submit --url http://127.0.0.1:8642 --family knapsack \\
                          --size 12 --ensemble 4
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # CLI imports its heavy deps lazily per subcommand
    import numpy as np

    from repro.annealer.batch import EnsembleResult
    from repro.annealer.config import AnnealerConfig
    from repro.backends.base import ProblemLike
    from repro.problems import FamilyProblem
    from repro.runtime.options import SolveRequest
    from repro.tsp.instance import TSPInstance

from repro.utils.tables import Table
from repro.utils.units import (
    format_area,
    format_bits,
    format_energy,
    format_power,
    format_time,
)

#: Registered backend names, duplicated as literals so ``--help`` does
#: not import the solver stack (the CLI loads heavy deps lazily per
#: subcommand); ``tests/test_cli.py`` pins this against
#: :func:`repro.backends.list_backends`.
_BACKEND_CHOICES = ("cluster-cim", "dense-ising", "maxcut-sb", "simcim")
_DEFAULT_BACKEND = "cluster-cim"

#: Backends whose capabilities include the ``qubo`` problem kind,
#: duplicated as literals for the same lazy-``--help`` reason;
#: ``tests/test_cli.py`` pins this against the registry capabilities.
_QUBO_BACKEND_CHOICES = ("cluster-cim", "dense-ising", "simcim")

#: Problem families of :mod:`repro.problems`, duplicated as literals;
#: ``tests/test_cli.py`` pins this against ``list_families()``.
_FAMILY_CHOICES = ("coloring", "knapsack", "maxsat")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Digital CIM clustered annealer (DAC'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser(
        "solve", help="solve a problem with a registered solver backend"
    )
    p_solve.add_argument(
        "--backend",
        choices=_BACKEND_CHOICES,
        default=_DEFAULT_BACKEND,
        help="registered solver backend (default: cluster-cim, the "
        "paper's clustered CIM annealer; see docs/backends.md)",
    )
    src = p_solve.add_mutually_exclusive_group()
    src.add_argument("--tsplib", metavar="FILE", help="TSPLIB .tsp file to load")
    src.add_argument(
        "--family",
        choices=["uniform", "clustered", "pcb", "rl", "pla"],
        default="uniform",
        help="synthetic instance family (default: uniform)",
    )
    p_solve.add_argument(
        "--n", type=int, default=500,
        help="problem size: cities (TSP backends), graph nodes "
        "(maxcut-sb), or spins (simcim)",
    )
    p_solve.add_argument("--strategy", default="1/2/3", help="cluster strategy label")
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument(
        "--ppa", action="store_true", help="also print the hardware report"
    )
    p_solve.add_argument(
        "--reference", action="store_true",
        help="compute the CPU reference and report the optimal ratio",
    )
    p_solve.add_argument(
        "--svg", metavar="FILE", help="render the tour to an SVG file"
    )
    p_solve.add_argument(
        "--ensemble", type=int, default=0, metavar="K",
        help="solve a K-seed ensemble (seeds SEED..SEED+K-1) and report "
        "aggregate quality instead of a single run",
    )
    p_solve.add_argument(
        "--workers", type=int, default=1, metavar="W",
        help="worker processes for the ensemble (1 = serial)",
    )
    p_solve.add_argument(
        "--batch-size", type=int, default=1, metavar="B",
        help="seeds a worker anneals per dispatch via the batched "
        "replica engine (1 = serial oracle; results are bit-identical "
        "either way)",
    )
    p_solve.add_argument(
        "--telemetry-out", metavar="FILE",
        help="write per-run ensemble telemetry to FILE as JSON",
    )
    p_solve.add_argument(
        "--stream", action="store_true",
        help="stream one telemetry frame per completed run "
        "(JSON lines, schema repro.run_telemetry/v1)",
    )
    p_solve.add_argument(
        "--max-inflight", type=int, default=None, metavar="M",
        help="admission control: at most M of this job's seeds in "
        "flight at once (default: 2 x workers)",
    )
    p_solve.add_argument(
        "--timeout", type=float, default=None, metavar="T",
        help="per-run wall-clock budget in seconds for pool runs "
        "(default: unbounded)",
    )
    p_solve.add_argument(
        "--chaos-seed", type=int, default=None, metavar="S",
        help="enable the deterministic fault-injection layer with chaos "
        "seed S (implies an ensemble run; see docs/robustness.md)",
    )
    p_solve.add_argument(
        "--chaos-crash-rate", type=float, default=0.1, metavar="P",
        help="per-attempt probability of an injected worker crash "
        "(default: 0.1; needs --chaos-seed)",
    )
    p_solve.add_argument(
        "--chaos-hang-rate", type=float, default=0.0, metavar="P",
        help="per-attempt probability of an injected worker hang "
        "(default: 0; needs --chaos-seed and --timeout)",
    )
    p_solve.add_argument(
        "--chaos-corrupt-rate", type=float, default=0.0, metavar="P",
        help="per-attempt probability of an injected corrupted result "
        "(default: 0; needs --chaos-seed)",
    )

    p_serve = sub.add_parser("serve", help="run the HTTP/SSE serving gateway")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8642,
        help="listening port (0 = ephemeral; default: 8642)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="in-process AnnealingService shards (default: 2)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, metavar="W",
        help="worker processes per shard (default: 1 = serial)",
    )
    p_serve.add_argument(
        "--policy", choices=["round-robin", "least-inflight"],
        default="round-robin", help="shard routing policy",
    )
    p_serve.add_argument(
        "--max-pending", type=int, default=16, metavar="J",
        help="admitted jobs per shard before the gateway answers 429 "
        "(default: 16)",
    )
    p_serve.add_argument(
        "--probe-interval", type=float, default=0.25, metavar="S",
        help="seconds between shard liveness probes (default: 0.25)",
    )
    p_serve.add_argument(
        "--failover-budget", type=int, default=2, metavar="K",
        help="re-dispatches a job may consume after shard loss before "
        "it fails (default: 2)",
    )
    p_serve.add_argument(
        "--stall-timeout", type=float, default=30.0, metavar="S",
        help="seconds without stream progress before a running attempt "
        "is failed over (default: 30)",
    )

    p_submit = sub.add_parser(
        "submit", help="submit a solve to a running gateway"
    )
    p_submit.add_argument(
        "--url", required=True, metavar="URL",
        help="gateway base URL, e.g. http://127.0.0.1:8642",
    )
    p_submit.add_argument(
        "--backend",
        choices=_BACKEND_CHOICES,
        default=_DEFAULT_BACKEND,
        help="registered solver backend the gateway dispatches to "
        "(default: cluster-cim)",
    )
    src_sub = p_submit.add_mutually_exclusive_group()
    src_sub.add_argument(
        "--tsplib", metavar="FILE", help="TSPLIB .tsp file to load"
    )
    src_sub.add_argument(
        "--family",
        choices=["uniform", "clustered", "pcb", "rl", "pla"],
        default="uniform",
        help="synthetic instance family (default: uniform)",
    )
    p_submit.add_argument(
        "--n", type=int, default=500,
        help="problem size: cities (TSP backends), graph nodes "
        "(maxcut-sb), or spins (simcim)",
    )
    p_submit.add_argument(
        "--strategy", default="1/2/3", help="cluster strategy label"
    )
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument(
        "--ensemble", type=int, default=1, metavar="K",
        help="seeds SEED..SEED+K-1 (default: 1)",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=None, metavar="T",
        help="per-run wall-clock budget in seconds on the gateway side",
    )
    p_submit.add_argument(
        "--batch-size", type=int, default=1, metavar="B",
        help="replicas per vectorized batch on the gateway side "
        "(default: 1, the serial bit-exactness oracle)",
    )
    p_submit.add_argument(
        "--stream", action="store_true",
        help="stream one telemetry frame per completed run over SSE "
        "(dropped connections reconnect and resume via replay)",
    )
    p_submit.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="end-to-end deadline in seconds; the gateway rejects or "
        "fails the job with deadline_exceeded once it expires",
    )
    p_submit.add_argument(
        "--tag", default="cli", help="job label folded into the job id"
    )

    p_cap = sub.add_parser("capacity", help="Fig. 1 capacity table")
    p_cap.add_argument("--sizes", type=int, nargs="+",
                       default=[1000, 10000, 85900])
    p_cap.add_argument("--p", type=int, default=3)

    p_sram = sub.add_parser("sram-curve", help="Fig. 6b error-rate sweep")
    p_sram.add_argument("--samples", type=int, default=1000)
    p_sram.add_argument("--bl-cap", type=float, default=1.0)
    p_sram.add_argument("--seed", type=int, default=0)

    p_ppa = sub.add_parser("ppa", help="chip sizing report")
    p_ppa.add_argument("--n", type=int, required=True, help="target cities")
    p_ppa.add_argument("--p", type=int, default=3, help="p_max")

    p_mc = sub.add_parser("maxcut", help="anneal a Max-Cut instance")
    p_mc.add_argument(
        "--file", metavar="FILE",
        help="rudy/.mc edge-list file to load instead of a random graph",
    )
    p_mc.add_argument("--nodes", type=int, default=200)
    p_mc.add_argument("--degree", type=float, default=6.0)
    p_mc.add_argument("--sweeps", type=int, default=200)
    p_mc.add_argument("--seed", type=int, default=0)

    p_prob = sub.add_parser(
        "problems", help="QUBO problem-family workloads (docs/problems.md)"
    )
    prob_sub = p_prob.add_subparsers(dest="problems_command", required=True)

    prob_sub.add_parser(
        "list", help="list the registered problem families"
    )

    p_conv = prob_sub.add_parser(
        "convert",
        help="convert a .qubo/BQP file to repro.qubo/v1 JSON interchange",
    )
    p_conv.add_argument(
        "input", metavar="IN",
        help="source file: repro.qubo/v1 JSON, qbsolv .qubo, or "
        "Beasley/OR-Library BQP edge list",
    )
    p_conv.add_argument(
        "output", metavar="OUT", help="destination repro.qubo/v1 JSON file"
    )

    p_psolve = prob_sub.add_parser(
        "solve",
        help="reduce a family instance to QUBO and solve it on a backend",
    )
    psrc = p_psolve.add_mutually_exclusive_group()
    psrc.add_argument(
        "--family", choices=_FAMILY_CHOICES, default="coloring",
        help="problem family to mint a seeded random instance of "
        "(default: coloring)",
    )
    psrc.add_argument(
        "--file", metavar="FILE",
        help="solve a raw QUBO from a JSON/.qubo/BQP file instead "
        "(no family decode)",
    )
    p_psolve.add_argument(
        "--size", type=int, default=16,
        help="family instance size: nodes (coloring), items (knapsack), "
        "or variables (maxsat); default 16",
    )
    p_psolve.add_argument("--seed", type=int, default=0)
    p_psolve.add_argument(
        "--backend", choices=_QUBO_BACKEND_CHOICES, default=_DEFAULT_BACKEND,
        help="QUBO-capable solver backend (default: cluster-cim)",
    )
    p_psolve.add_argument(
        "--reference", action="store_true",
        help="also solve with the family's reference baseline (greedy "
        "descent for raw QUBO files) and report the optimal ratio",
    )

    p_psub = prob_sub.add_parser(
        "submit", help="submit a family instance to a running gateway"
    )
    p_psub.add_argument(
        "--url", required=True, metavar="URL",
        help="gateway base URL, e.g. http://127.0.0.1:8642",
    )
    p_psub.add_argument(
        "--family", choices=_FAMILY_CHOICES, default="coloring",
        help="problem family (default: coloring)",
    )
    p_psub.add_argument("--size", type=int, default=16)
    p_psub.add_argument("--seed", type=int, default=0)
    p_psub.add_argument(
        "--backend", choices=_QUBO_BACKEND_CHOICES, default=_DEFAULT_BACKEND,
        help="QUBO-capable solver backend the gateway dispatches to "
        "(default: cluster-cim)",
    )
    p_psub.add_argument(
        "--ensemble", type=int, default=1, metavar="K",
        help="seeds SEED..SEED+K-1 (default: 1)",
    )
    p_psub.add_argument(
        "--tag", default="cli", help="job label folded into the job id"
    )
    return parser


def _build_instance(args: argparse.Namespace) -> "TSPInstance":
    """Load or synthesize the instance shared by ``solve``/``submit``."""
    from repro.tsp import load_tsplib
    from repro.tsp.generators import (
        pcb_style,
        pla_style,
        random_clustered,
        random_uniform,
        rl_style,
    )

    if args.tsplib:
        return load_tsplib(args.tsplib)
    builders = {
        "uniform": random_uniform,
        "clustered": lambda n, seed: random_clustered(
            n, n_clusters=max(4, n // 60), seed=seed
        ),
        "pcb": pcb_style,
        "rl": rl_style,
        "pla": pla_style,
    }
    return builders[args.family](args.n, seed=args.seed)


def _build_problem(args: argparse.Namespace) -> "ProblemLike":
    """Synthesize the problem payload the chosen backend solves.

    TSP backends reuse :func:`_build_instance` (family or TSPLIB
    file); ``maxcut-sb`` gets a G-set-style ±1-weight graph of ``--n``
    nodes and ``simcim`` a random dense Ising model of ``--n`` spins,
    both seeded by ``--seed``.  ``--tsplib`` only makes sense for the
    TSP backends and is rejected elsewhere.
    """
    from repro.errors import ReproError

    backend = getattr(args, "backend", _DEFAULT_BACKEND)
    if backend in ("maxcut-sb", "simcim") and args.tsplib:
        raise ReproError(
            f"--tsplib loads a TSP, which backend {backend!r} does not "
            "solve; drop --tsplib or pick a TSP backend"
        )
    if backend == "maxcut-sb":
        from repro.maxcut import gset_style

        return gset_style(args.n, seed=args.seed)
    if backend == "simcim":
        from repro.ising.simcim import random_ising_model

        return random_ising_model(args.n, seed=args.seed)
    return _build_instance(args)


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.errors import ReproError

    backend = args.backend
    if backend != _DEFAULT_BACKEND and args.ppa:
        print(
            f"error: --ppa sizes the clustered CIM chip; backend "
            f"{backend!r} has no hardware model",
            file=sys.stderr,
        )
        return 2
    if backend in ("maxcut-sb", "simcim") and args.svg:
        print(
            f"error: --svg renders a TSP tour; backend {backend!r} "
            "solves a different problem",
            file=sys.stderr,
        )
        return 2
    try:
        problem = _build_problem(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"instance : {problem}")
    if (
        args.ensemble > 0
        or args.workers > 1
        or args.batch_size > 1
        or args.telemetry_out
        or args.stream
        or args.chaos_seed is not None
    ):
        return _solve_ensemble(problem, args)
    if backend != _DEFAULT_BACKEND:
        return _solve_single_backend(problem, args)
    return _solve_single_default(problem, args)


def _solve_single_default(
    instance: "ProblemLike", args: argparse.Namespace
) -> int:
    """Single-seed solve on the default clustered CIM annealer."""
    from repro.annealer import AnnealerConfig, ClusteredCIMAnnealer
    from repro.hardware import evaluate_ppa
    from repro.tsp.instance import TSPInstance

    assert isinstance(instance, TSPInstance)
    cfg = AnnealerConfig(strategy=args.strategy, seed=args.seed)
    result = ClusteredCIMAnnealer(cfg).solve(instance)
    print(
        f"solution : length={result.length:.1f}  levels={result.n_levels}  "
        f"host={result.wall_time_s:.1f}s"
    )
    if args.reference:
        from repro.tsp.reference import reference_length

        ref = reference_length(instance, seed=args.seed)
        print(
            f"reference: {ref:.1f}  optimal ratio = "
            f"{result.optimal_ratio(ref):.3f}"
        )
    if args.ppa:
        rep = evaluate_ppa(
            n_cities=instance.n,
            p=result.chip.p,
            n_clusters=result.chip.n_clusters,
            chip=result.chip,
        )
        print(
            f"hardware : {format_bits(rep.capacity_bits)} in "
            f"{rep.n_arrays} arrays, {format_area(rep.chip_area_m2)}, "
            f"tts={format_time(rep.time_to_solution_s)}, "
            f"E={format_energy(rep.energy_to_solution_j)}, "
            f"P={format_power(rep.average_power_w)}"
        )
    if args.svg:
        from repro.tsp.svg import save_tour_svg

        save_tour_svg(instance, args.svg, tour=result.tour)
        print(f"tour SVG : {args.svg}")
    return 0


def _solve_single_backend(
    problem: "ProblemLike", args: argparse.Namespace
) -> int:
    """Single-seed solve dispatched through the backend registry."""
    from repro.backends import resolve_backend
    from repro.errors import ReproError

    impl = resolve_backend(args.backend)
    try:
        plan = impl.compile(problem, None)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = impl.solve(plan, args.seed)
    print(
        f"solution : backend={args.backend}  "
        f"objective={result.length:.1f}  host={result.wall_time_s:.1f}s"
    )
    if args.reference:
        ref = impl.reference(problem, args.seed)
        ratio = result.optimal_ratio(ref)
        print(f"reference: {ref:.1f}  optimal ratio = {ratio:.3f}")
    if args.svg:  # TSP backends only (guarded in _cmd_solve)
        from repro.tsp.instance import TSPInstance
        from repro.tsp.svg import save_tour_svg

        assert isinstance(problem, TSPInstance)
        save_tour_svg(problem, args.svg, tour=result.tour)
        print(f"tour SVG : {args.svg}")
    return 0


def _solve_ensemble(instance: "ProblemLike", args: argparse.Namespace) -> int:
    """Ensemble branch of ``solve``: multi-seed run + telemetry export.

    Builds one :class:`repro.runtime.SolveRequest` — the same input
    type the library and serving APIs take — and runs it through the
    serving runtime (blocking via :func:`solve_ensemble`, or streaming
    one telemetry frame per completed run with ``--stream``).  The
    request carries ``--backend``; only the default clustered CIM
    annealer takes an :class:`AnnealerConfig`.
    """
    import asyncio
    from pathlib import Path

    from repro.annealer.batch import solve_ensemble
    from repro.runtime.options import EnsembleOptions, SolveRequest

    cfg: Optional["AnnealerConfig"] = None
    if args.backend == _DEFAULT_BACKEND:
        from repro.annealer import AnnealerConfig

        cfg = AnnealerConfig(strategy=args.strategy, seed=args.seed)

    if args.telemetry_out:
        # Fail before the (possibly long) solve, not after it.
        parent = Path(args.telemetry_out).resolve().parent
        if not parent.is_dir():
            print(
                f"error: telemetry output directory {parent} does not exist",
                file=sys.stderr,
            )
            return 2

    plan = None
    if args.chaos_seed is not None:
        from repro.runtime.faults import FaultPlan

        plan = FaultPlan(
            seed=args.chaos_seed,
            crash_rate=args.chaos_crash_rate,
            hang_rate=args.chaos_hang_rate,
            corrupt_rate=args.chaos_corrupt_rate,
            hang_s=(2.0 * args.timeout) if args.timeout else 0.5,
        )
    n_seeds = max(1, args.ensemble)
    seeds = list(range(args.seed, args.seed + n_seeds))
    request = SolveRequest.build(
        instance,
        seeds,
        config=cfg,
        options=EnsembleOptions(
            max_workers=args.workers,
            max_inflight_per_job=args.max_inflight,
            timeout_s=args.timeout,
            fault_plan=plan,
            batch_size=args.batch_size,
        ),
        tag="cli",
        backend=args.backend,
    )
    if args.stream:
        out = asyncio.run(_stream_solve(request))
    else:
        out = solve_ensemble(request)
    tel = out.telemetry
    print(
        f"ensemble : {out.n_runs} runs  best={out.best.length:.1f}  "
        f"mode={tel.mode}  workers={tel.max_workers}  "
        f"wall={tel.wall_time_s:.1f}s  "
        f"throughput={tel.throughput_runs_per_s:.2f} runs/s"
    )
    s = out.ratio_stats
    print(
        f"quality  : ratio mean={s.mean:.3f}  "
        f"min={s.minimum:.3f}  max={s.maximum:.3f}"
    )
    if plan is not None:
        by_kind = tel.faults_by_kind
        kinds = (
            "  ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
            or "none"
        )
        print(
            f"chaos    : seed={plan.seed}  "
            f"faults={tel.total_faults_injected} ({kinds})  "
            f"retries={tel.total_retries}  "
            f"backoff={tel.total_backoff_s:.2f}s  "
            f"pool_rebuilds={tel.pool_rebuilds}"
        )
    if args.telemetry_out:
        tel.save(args.telemetry_out)
        print(f"telemetry: {args.telemetry_out}")
    if args.svg:  # TSP backends only (guarded in _cmd_solve)
        from repro.tsp.instance import TSPInstance
        from repro.tsp.svg import save_tour_svg

        assert isinstance(instance, TSPInstance)
        save_tour_svg(instance, args.svg, tour=out.best.tour)
        print(f"tour SVG : {args.svg}")
    return 0


async def _stream_solve(request: "SolveRequest") -> "EnsembleResult":
    """Serve one job, printing a JSON telemetry frame per finished run."""
    from repro.runtime.service import AnnealingService

    async with AnnealingService(request.options) as service:
        job = await service.submit(request)
        async for record in job.stream():
            print(record.to_json_line())
        return await job.result()


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP/SSE gateway in the foreground until interrupted."""
    import asyncio

    from repro.gateway import GatewayServer, ShardRouter
    from repro.runtime.options import EnsembleOptions

    options = EnsembleOptions(
        max_workers=args.workers, max_pending_jobs=args.max_pending
    )
    router = ShardRouter(
        options,
        shards=args.shards,
        policy=args.policy,
        probe_interval_s=args.probe_interval,
        failover_budget=args.failover_budget,
        stall_timeout_s=args.stall_timeout,
    )

    async def run() -> None:
        async with GatewayServer(
            router, host=args.host, port=args.port
        ) as server:
            print(
                f"gateway  : {server.url}  shards={args.shards}  "
                f"workers/shard={args.workers}  policy={args.policy}"
            )
            print(
                "endpoints: POST /v1/jobs   GET /v1/jobs/{id}[/events]   "
                "DELETE /v1/jobs/{id}   GET /metrics   GET /healthz   "
                "GET /readyz"
            )
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("gateway  : interrupted; shards drained")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one solve to a running gateway and report its outcome."""
    from repro.errors import ReproError
    from repro.gateway.client import GatewayClient, GatewayHTTPError
    from repro.runtime.options import EnsembleOptions, SolveRequest

    try:
        instance = _build_problem(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"instance : {instance}")
    cfg: Optional["AnnealerConfig"] = None
    if args.backend == _DEFAULT_BACKEND:
        from repro.annealer import AnnealerConfig

        cfg = AnnealerConfig(strategy=args.strategy, seed=args.seed)
    seeds = list(range(args.seed, args.seed + max(1, args.ensemble)))
    request = SolveRequest.build(
        instance,
        seeds,
        config=cfg,
        options=EnsembleOptions(
            timeout_s=args.timeout, batch_size=args.batch_size
        ),
        tag=args.tag,
        backend=args.backend,
        deadline_s=args.deadline,
    )
    client = GatewayClient(args.url)
    try:
        handle = client.submit(request)
        job_id = str(handle["job_id"])
        print(
            f"job      : {job_id}  shard={handle['shard']}  "
            f"state={handle['state']}"
        )
        if args.stream:
            for record in client.stream(job_id, reconnect=5):
                print(record.to_json_line())
        result = client.result(job_id)
    except GatewayHTTPError as exc:
        print(f"error    : {exc}", file=sys.stderr)
        return 1
    except ConnectionError as exc:
        print(
            f"error    : cannot reach gateway at {args.url}: {exc}",
            file=sys.stderr,
        )
        return 1
    lengths = result["lengths"]
    best = result["best"]
    print(
        f"ensemble : {len(lengths)} runs  best={best['length']:.1f}  "
        f"shard={result['shard']}"
    )
    stats = result["ratio_stats"]
    if stats is not None:
        print(
            f"quality  : ratio mean={stats['mean']:.3f}  "
            f"min={stats['minimum']:.3f}  max={stats['maximum']:.3f}"
        )
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    from repro.analysis.capacity import fig1_series

    series = fig1_series(args.sizes, p=args.p)
    table = Table(
        f"Weight memory vs TSP scale (p_max = {args.p})",
        ["N", "conventional O(N^4)", "clustered O(N^2)", "compact O(N)"],
    )
    for i, n in enumerate(args.sizes):
        table.add_row(
            [
                n,
                format_bits(float(series["conventional_O(N^4)"][i])),
                format_bits(float(series["clustered_O(N^2)"][i])),
                format_bits(float(series["compact_O(N)"][i])),
            ]
        )
    print(table)
    return 0


def _cmd_sram_curve(args: argparse.Namespace) -> int:
    from repro.sram.cell import SRAMCellParams
    from repro.sram.montecarlo import monte_carlo_error_rate

    curve = monte_carlo_error_rate(
        n_samples=args.samples,
        params=SRAMCellParams(bl_cap_ratio=args.bl_cap),
        seed=args.seed,
    )
    table = Table(
        f"Pseudo-read error rate ({args.samples} samples, "
        f"BL cap x{args.bl_cap:g})",
        ["V_DD (mV)", "measured", "analytic"],
    )
    for k in range(0, curve.vdd_mv.size, 2):
        table.add_row(
            [curve.vdd_mv[k], float(curve.error_rate[k]), float(curve.analytic[k])]
        )
    print(table)
    return 0


def _cmd_ppa(args: argparse.Namespace) -> int:
    from repro.clustering import SemiFlexibleStrategy
    from repro.hardware import evaluate_ppa

    strategy = SemiFlexibleStrategy(p_max=args.p)
    rep = evaluate_ppa(
        n_cities=args.n,
        p=args.p,
        n_clusters=strategy.provisioned_clusters(args.n),
        mean_cluster_size=strategy.target_mean,
    )
    table = Table(
        f"Chip sizing: {args.n:,}-city TSP at p_max = {args.p} (16 nm)",
        ["metric", "value"],
    )
    table.add_row(["cluster windows", rep.n_clusters])
    table.add_row(["arrays (5x2 windows)", rep.n_arrays])
    table.add_row(["physical spins", rep.n_spins])
    table.add_row(["weight memory", format_bits(rep.capacity_bits)])
    table.add_row(["chip area", format_area(rep.chip_area_m2)])
    table.add_row(["hierarchy levels", rep.n_levels])
    table.add_row(["time-to-solution", format_time(rep.time_to_solution_s)])
    table.add_row(["energy-to-solution", format_energy(rep.energy_to_solution_j)])
    table.add_row(["average power", format_power(rep.average_power_w)])
    print(table)
    return 0


def _cmd_maxcut(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.maxcut import (
        MaxCutAnnealParams,
        anneal_maxcut,
        greedy_maxcut,
        gset_style,
    )

    if args.file:
        from repro.problems.io import load_rudy

        try:
            problem = load_rudy(args.file)
        except (OSError, ReproError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        problem = gset_style(
            args.nodes, avg_degree=args.degree, seed=args.seed
        )
    print(f"problem  : {problem}")
    greedy = greedy_maxcut(problem, seed=args.seed)
    annealed = anneal_maxcut(
        problem, params=MaxCutAnnealParams(n_sweeps=args.sweeps), seed=args.seed
    )
    print(f"greedy   : cut = {greedy.cut_value:.1f}")
    print(
        f"annealed : cut = {annealed.cut_value:.1f} "
        f"(acceptance {annealed.acceptance_rate:.2f})"
    )
    return 0


#: One-line objective blurbs for ``repro problems list``; pinned by
#: ``tests/test_cli.py`` to cover exactly ``list_families()``.
_FAMILY_BLURBS = {
    "coloring": "minimise edge conflicts over a fixed palette",
    "knapsack": "maximise packed value under a weight capacity",
    "maxsat": "maximise the total weight of satisfied clauses",
}


def _problems_list(args: argparse.Namespace) -> int:
    from repro.problems import list_families, make_problem

    table = Table(
        "Registered QUBO problem families (docs/problems.md)",
        ["family", "objective", "QUBO vars (size 16, seed 0)"],
    )
    for name in list_families():
        sample = make_problem(name, 16, 0)
        table.add_row([name, _FAMILY_BLURBS[name], sample.n_qubo_vars])
    print(table)
    return 0


def _problems_convert(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.problems.io import load_qubo, save_qubo

    try:
        qubo = load_qubo(args.input)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    save_qubo(qubo, args.output)
    print(f"loaded   : {qubo}")
    print(f"written  : {args.output} (repro.qubo/v1 JSON)")
    return 0


def _family_solution_line(
    fam: "FamilyProblem", solution: "np.ndarray"
) -> str:
    """One-line family-specific rendering of a decoded solution."""
    from repro.problems import GraphColoringProblem, KnapsackProblem

    if isinstance(fam, GraphColoringProblem):
        return f"colors={[int(c) for c in solution]}"
    if isinstance(fam, KnapsackProblem):
        chosen = [i for i, b in enumerate(solution) if b]
        return f"items={chosen}"
    n_true = sum(int(b) for b in solution)
    return f"assignment={n_true}/{fam.n_vars} true"


def _problems_solve(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.backends import resolve_backend
    from repro.errors import ReproError
    from repro.problems import FamilyProblem, make_problem

    fam: Optional[FamilyProblem] = None
    try:
        if args.file:
            from repro.problems.io import load_qubo

            qubo = load_qubo(args.file)
        else:
            fam = make_problem(args.family, args.size, args.seed)
            qubo = fam.to_qubo()
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if fam is not None:
        print(f"instance : {fam}")
    print(f"qubo     : {qubo}")
    impl = resolve_backend(args.backend)
    plan = impl.compile(qubo, None)
    result = impl.solve(plan, args.seed)
    view = impl.decode(result)
    print(f"solution : backend={args.backend}  energy={view['energy']:.1f}")
    ops = "  ".join(
        f"{k}={v}" for k, v in sorted(view.get("ops", {}).items())
    )
    print(f"ops      : {ops or 'none'}")
    if fam is not None:
        decoded = fam.decode(np.asarray(view["bits"], dtype=np.int64))
        print(
            f"decoded  : {_family_solution_line(fam, decoded)}  "
            f"feasible={fam.is_feasible(decoded)}  "
            f"objective={fam.objective(decoded):.1f}"
        )
        print(
            f"baseline : {fam.family} reference objective = "
            f"{fam.objective(fam.reference()):.1f}"
        )
    if args.reference:
        ref = impl.reference(qubo, args.seed)
        print(
            f"reference: {ref:.1f}  optimal ratio = "
            f"{result.optimal_ratio(ref):.3f}"
        )
    return 0


def _problems_submit(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.errors import ReproError
    from repro.gateway.client import GatewayClient, GatewayHTTPError
    from repro.problems import make_problem
    from repro.runtime.options import SolveRequest

    try:
        fam = make_problem(args.family, args.size, args.seed)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    qubo = fam.to_qubo()
    print(f"instance : {fam}")
    print(f"qubo     : {qubo}")
    seeds = list(range(args.seed, args.seed + max(1, args.ensemble)))
    request = SolveRequest.build(
        qubo, seeds, tag=args.tag, backend=args.backend
    )
    client = GatewayClient(args.url)
    try:
        handle = client.submit(request)
        job_id = str(handle["job_id"])
        print(
            f"job      : {job_id}  shard={handle['shard']}  "
            f"state={handle['state']}"
        )
        result = client.result(job_id)
    except GatewayHTTPError as exc:
        print(f"error    : {exc}", file=sys.stderr)
        return 1
    except ConnectionError as exc:
        print(
            f"error    : cannot reach gateway at {args.url}: {exc}",
            file=sys.stderr,
        )
        return 1
    best = result["best"]
    print(
        f"ensemble : {len(result['lengths'])} runs  "
        f"best energy={best['length']:.1f}  shard={result['shard']}"
    )
    decoded = fam.decode(np.asarray(best["tour"], dtype=np.int64))
    print(
        f"decoded  : {_family_solution_line(fam, decoded)}  "
        f"feasible={fam.is_feasible(decoded)}  "
        f"objective={fam.objective(decoded):.1f}"
    )
    stats = result["ratio_stats"]
    if stats is not None:
        print(
            f"quality  : ratio mean={stats['mean']:.3f}  "
            f"min={stats['minimum']:.3f}  max={stats['maximum']:.3f}"
        )
    return 0


_PROBLEMS_COMMANDS = {
    "list": _problems_list,
    "convert": _problems_convert,
    "solve": _problems_solve,
    "submit": _problems_submit,
}


def _cmd_problems(args: argparse.Namespace) -> int:
    return _PROBLEMS_COMMANDS[args.problems_command](args)


_COMMANDS = {
    "solve": _cmd_solve,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "capacity": _cmd_capacity,
    "sram-curve": _cmd_sram_curve,
    "ppa": _cmd_ppa,
    "maxcut": _cmd_maxcut,
    "problems": _cmd_problems,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
