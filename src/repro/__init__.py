"""repro — Digital CIM with Noisy SRAM Bit: a compact clustered annealer.

Reproduction of Lu et al., DAC 2024: a digital compute-in-memory Ising
annealer that solves tens-of-thousands-of-city TSPs in MB-scale SRAM by
combining hierarchical clustering (input sparsity), compact window
mapping on digital CIM (weight sparsity), and annealing noise generated
by the intrinsic process variation of SRAM bit cells under reduced-V_DD
pseudo-read.

Quickstart
----------
>>> from repro import ClusteredCIMAnnealer, AnnealerConfig, random_uniform
>>> instance = random_uniform(500, seed=1)
>>> result = ClusteredCIMAnnealer(AnnealerConfig(seed=7)).solve(instance)
>>> result.length > 0
True

Package layout
--------------
* :mod:`repro.tsp` — instances, TSPLIB I/O, generators, CPU baselines;
* :mod:`repro.ising` — Ising/QUBO models, PBM swap moves, schedules;
* :mod:`repro.clustering` — hierarchical clustering strategies;
* :mod:`repro.sram` — noisy SRAM cells, Monte-Carlo error curves;
* :mod:`repro.cim` — digital CIM windows, arrays, adder trees;
* :mod:`repro.annealer` — the clustered CIM annealer (core);
* :mod:`repro.backends` — the pluggable solver-backend registry;
* :mod:`repro.runtime` — parallel ensembles, async serving, telemetry;
* :mod:`repro.hardware` — area / latency / energy models, Table III;
* :mod:`repro.analysis` — capacity laws, sweeps, speedup accounting.
"""

from repro.annealer import (
    AnnealerConfig,
    AnnealResult,
    ClusteredCIMAnnealer,
    EnsembleResult,
    NoiseSource,
    NoiseTarget,
    solve_ensemble,
)
from repro.backends import (
    DEFAULT_BACKEND,
    SolverBackend,
    list_backends,
    register_backend,
    resolve_backend,
)
from repro.runtime import (
    AnnealingService,
    CircuitBreaker,
    EnsembleExecutor,
    EnsembleOptions,
    EnsembleTelemetry,
    FaultPlan,
    Job,
    JobState,
    RunTelemetry,
    SolveRequest,
)
from repro.clustering import (
    ArbitraryStrategy,
    FixedSizeStrategy,
    SemiFlexibleStrategy,
)
from repro.errors import ReproError
from repro.hardware import TechNode, evaluate_ppa
from repro.ising import VddSchedule
from repro.sram import SRAMCellParams
from repro.tsp import (
    TSPInstance,
    Tour,
    load_tsplib,
    make_paper_instance,
    random_clustered,
    random_uniform,
    tour_length,
)

__version__ = "1.3.0"

__all__ = [
    "__version__",
    "ReproError",
    # problem side
    "TSPInstance",
    "Tour",
    "tour_length",
    "random_uniform",
    "random_clustered",
    "make_paper_instance",
    "load_tsplib",
    # solver side
    "ClusteredCIMAnnealer",
    "AnnealerConfig",
    "AnnealResult",
    "NoiseSource",
    "NoiseTarget",
    "VddSchedule",
    "SRAMCellParams",
    # solver-backend registry
    "DEFAULT_BACKEND",
    "SolverBackend",
    "list_backends",
    "register_backend",
    "resolve_backend",
    # ensemble + serving runtime
    "solve_ensemble",
    "EnsembleResult",
    "EnsembleExecutor",
    "EnsembleOptions",
    "EnsembleTelemetry",
    "RunTelemetry",
    "SolveRequest",
    "AnnealingService",
    "Job",
    "JobState",
    # robustness / chaos
    "FaultPlan",
    "CircuitBreaker",
    # strategies
    "ArbitraryStrategy",
    "FixedSizeStrategy",
    "SemiFlexibleStrategy",
    # hardware
    "TechNode",
    "evaluate_ppa",
]
