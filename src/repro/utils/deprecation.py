"""One-release deprecation shims for retired call signatures.

The project's API policy (``docs/serving.md``, *Deprecation timeline*)
is: a retired signature keeps working for exactly one release behind a
:class:`DeprecationWarning`, then raises ``TypeError``.  This module
holds the shared mechanics so every shimmed entry point warns with the
same shape of message and maps legacy arguments identically.

:func:`merge_legacy_args` is the workhorse: given the *old* positional
order and whatever loose positionals/keywords the caller passed, it
emits the warning and returns one merged ``{name: value}`` dict the
caller folds into its params dataclass.  Collisions (positional +
keyword for the same name, or unknown names) raise ``TypeError``
immediately — exactly what the interpreter would have done against
the old signature.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Sequence, Tuple


def merge_legacy_args(
    fn_name: str,
    order: Sequence[str],
    args: Tuple[Any, ...],
    kwargs: Dict[str, Any],
    *,
    params_hint: str,
    since: str,
    removal: str,
) -> Dict[str, Any]:
    """Map a retired loose-argument call onto ``{name: value}``.

    Parameters
    ----------
    fn_name:
        The public entry point, for the warning/error messages.
    order:
        The *old* positional parameter order (after the problem
        argument).
    args, kwargs:
        The loose positionals/keywords the caller actually passed.
    params_hint:
        What to pass instead (``"params=MaxCutAnnealParams(...)"``).
    since, removal:
        Release that deprecated the form and release that removes it.
    """
    if len(args) > len(order):
        raise TypeError(
            f"{fn_name}() takes at most {len(order)} legacy positional "
            f"arguments ({', '.join(order)}), got {len(args)}"
        )
    merged: Dict[str, Any] = dict(zip(order, args))
    unknown = sorted(set(kwargs) - set(order))
    if unknown:
        raise TypeError(
            f"{fn_name}() got unexpected keyword argument(s) "
            f"{', '.join(unknown)}; the new signature takes "
            f"{params_hint}"
        )
    overlap = sorted(set(merged) & set(kwargs))
    if overlap:
        raise TypeError(
            f"{fn_name}() got multiple values for argument(s) "
            f"{', '.join(overlap)}"
        )
    merged.update(kwargs)
    warnings.warn(
        f"passing loose tuning arguments to {fn_name}() is deprecated "
        f"since {since} and will be removed in {removal}; pass "
        f"{params_hint} instead (results are unchanged either way)",
        DeprecationWarning,
        stacklevel=3,
    )
    return merged
