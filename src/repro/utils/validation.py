"""Small argument-validation helpers shared across the package.

These raise :class:`ValueError` with uniform, descriptive messages so
call sites stay one-liners and error text stays consistent.
"""

from __future__ import annotations

from typing import Optional


def check_positive(name: str, value: float, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative).

    Parameters
    ----------
    name:
        Argument name used in the error message.
    value:
        The value to validate.
    strict:
        When True (default) require ``value > 0``; otherwise ``>= 0``.
    """
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: Optional[float] = None,
    high: Optional[float] = None,
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies in [low, high] (or (low, high))."""
    if low is not None:
        if inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value!r}")
        if not inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value!r}")
    if high is not None:
        if inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value!r}")
        if not inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that ``value`` is a probability in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0)
