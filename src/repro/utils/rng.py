"""Deterministic random-number plumbing.

All stochastic components of the library (instance generators, SRAM
Monte Carlo, noise fields, annealers, baselines) accept either an
integer seed or a :class:`numpy.random.Generator`.  :func:`spawn_rng`
normalises both into a Generator, and :class:`RandomState` provides a
reproducible stream splitter so independent subsystems (e.g. the noise
field of each CIM array) get decorrelated yet reproducible streams.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def spawn_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed-like value.

    Accepts ``None`` (fresh OS entropy), an integer seed, or an existing
    Generator (returned unchanged so streams can be threaded through).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class RandomState:
    """A splittable, named random stream.

    Independent subsystems ask for child streams by name; the same
    (seed, name) pair always yields the same stream, regardless of the
    order in which children are requested.  This keeps e.g. the SRAM
    noise of array 7 reproducible even if the number of arrays changes.

    Example
    -------
    >>> rs = RandomState(42)
    >>> a = rs.child("noise/array0")
    >>> b = rs.child("noise/array1")
    >>> a.integers(0, 100) == RandomState(42).child("noise/array0").integers(0, 100)
    True
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is not None and seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        if seed is None:
            # SeedSequence is the sanctioned entropy *source*; this module
            # is the one place allowed to touch it directly.
            seq = np.random.SeedSequence()  # repro-lint: ignore[RL002]
            seed = int(seq.generate_state(1)[0])
        self._seed = seed

    @property
    def seed(self) -> int:
        """The root seed of this random state."""
        return self._seed

    def child(self, name: str) -> np.random.Generator:
        """Return a Generator keyed by ``name`` under this root seed."""
        # Stable 64-bit FNV-1a hash of the name (Python's hash() is
        # salted per process, so it cannot be used for reproducibility).
        digest = 14695981039346656037  # FNV-1a offset basis
        for byte in name.encode("utf-8"):
            digest ^= byte
            digest = (digest * 1099511628211) & 0xFFFFFFFFFFFFFFFF
        # Deterministic (seed, name) → stream derivation; see above.
        seq = np.random.SeedSequence(  # repro-lint: ignore[RL002]
            entropy=[self._seed, digest]
        )
        return np.random.default_rng(seq)

    def split(self) -> "RandomState":
        """Return a new independent :class:`RandomState`."""
        return RandomState(int(self.child("split").integers(0, 2**31 - 1)))

    def __repr__(self) -> str:
        return f"RandomState(seed={self._seed})"
