"""Human-readable formatting for physical quantities.

The hardware PPA models work internally in SI base units (m², s, J, W,
bits).  These helpers render them with engineering prefixes for the
benchmark tables, matching the unit conventions of the paper (µm², mm²,
µs, nJ, mW, kB, Mb).
"""

from __future__ import annotations

from typing import Sequence, Tuple

_TIME_STEPS = [
    (1.0, "s"),
    (1e-3, "ms"),
    (1e-6, "us"),
    (1e-9, "ns"),
    (1e-12, "ps"),
]

_ENERGY_STEPS = [
    (1.0, "J"),
    (1e-3, "mJ"),
    (1e-6, "uJ"),
    (1e-9, "nJ"),
    (1e-12, "pJ"),
    (1e-15, "fJ"),
]

_POWER_STEPS = [
    (1.0, "W"),
    (1e-3, "mW"),
    (1e-6, "uW"),
    (1e-9, "nW"),
    (1e-12, "pW"),
]


def _format_scaled(
    value: float, steps: Sequence[Tuple[float, str]], digits: int
) -> str:
    if value == 0:
        return f"0 {steps[0][1]}"
    magnitude = abs(value)
    for scale, suffix in steps:
        if magnitude >= scale:
            return f"{value / scale:.{digits}f} {suffix}"
    scale, suffix = steps[-1]
    return f"{value / scale:.{digits}f} {suffix}"


def format_time(seconds: float, digits: int = 2) -> str:
    """Format a duration in seconds with an engineering prefix."""
    return _format_scaled(seconds, _TIME_STEPS, digits)


def format_energy(joules: float, digits: int = 2) -> str:
    """Format an energy in joules with an engineering prefix."""
    return _format_scaled(joules, _ENERGY_STEPS, digits)


def format_power(watts: float, digits: int = 2) -> str:
    """Format a power in watts with an engineering prefix."""
    return _format_scaled(watts, _POWER_STEPS, digits)


def format_area(square_meters: float, digits: int = 2) -> str:
    """Format an area in m², choosing mm² or µm² as appropriate."""
    mm2 = square_meters * 1e6
    if mm2 >= 0.1:
        return f"{mm2:.{digits}f} mm^2"
    um2 = square_meters * 1e12
    return f"{um2:.{digits}f} um^2"


def format_bytes(num_bytes: float, digits: int = 1) -> str:
    """Format a byte count using decimal kB / MB / GB (paper convention)."""
    for scale, suffix in [(1e9, "GB"), (1e6, "MB"), (1e3, "kB")]:
        if abs(num_bytes) >= scale:
            return f"{num_bytes / scale:.{digits}f} {suffix}"
    return f"{num_bytes:.0f} B"


def format_bits(num_bits: float, digits: int = 1) -> str:
    """Format a bit count using decimal kb / Mb / Gb (paper convention)."""
    for scale, suffix in [(1e12, "Tb"), (1e9, "Gb"), (1e6, "Mb"), (1e3, "kb")]:
        if abs(num_bits) >= scale:
            return f"{num_bits / scale:.{digits}f} {suffix}"
    return f"{num_bits:.0f} b"
