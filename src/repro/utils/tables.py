"""Plain-text table rendering for the benchmark harness.

The reproduction prints every table/figure of the paper as an aligned
ASCII table (the closest text equivalent of the published artifact).
:class:`Table` collects rows of heterogeneous cells and renders them
with a title, column headers, and an optional footer note.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


class Table:
    """An aligned, plain-text table.

    Example
    -------
    >>> t = Table("Demo", ["name", "value"])
    >>> t.add_row(["alpha", 1.5])
    >>> print(t.render())  # doctest: +ELLIPSIS
    Demo
    ...
    """

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self._rows: List[List[str]] = []
        self._notes: List[str] = []

    def add_row(self, cells: Iterable[object]) -> None:
        """Append a row; cells are stringified (floats get 4 sig figs)."""
        row = [self._format_cell(c) for c in cells]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append(row)

    def add_note(self, note: str) -> None:
        """Append a footer note rendered below the table body."""
        self._notes.append(note)

    @staticmethod
    def _format_cell(cell: object) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            if cell == 0:
                return "0"
            magnitude = abs(cell)
            if magnitude >= 1e5 or magnitude < 1e-3:
                return f"{cell:.3e}"
            return f"{cell:.4g}"
        return str(cell)

    @property
    def rows(self) -> List[List[str]]:
        """The formatted rows added so far (copy)."""
        return [list(r) for r in self._rows]

    def render(self) -> str:
        """Render the table (title, rule, header, body, notes)."""
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt_line(cells: Sequence[str]) -> str:
            return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [self.title, rule, fmt_line(self.columns), rule]
        lines.extend(fmt_line(row) for row in self._rows)
        lines.append(rule)
        lines.extend(f"  note: {n}" for n in self._notes)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
