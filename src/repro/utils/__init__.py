"""Shared utilities: seeded RNG plumbing, unit helpers, validation,
and plain-text table rendering used by the benchmark harness."""

from repro.utils.rng import RandomState, spawn_rng
from repro.utils.tables import Table
from repro.utils.units import (
    format_area,
    format_bits,
    format_bytes,
    format_energy,
    format_power,
    format_time,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
)

__all__ = [
    "RandomState",
    "spawn_rng",
    "Table",
    "format_area",
    "format_bits",
    "format_bytes",
    "format_energy",
    "format_power",
    "format_time",
    "check_in_range",
    "check_positive",
    "check_probability",
]
