"""Cluster-size strategies (Table I).

A strategy answers two questions during bottom-up agglomeration:

* ``max_size`` — the hard size cap a cluster may reach (hardware window
  height/width derive from this);
* ``should_stop(size, gap_ratio)`` — whether to close the current
  cluster given its size and how far (in units of the level's typical
  point spacing) the nearest unassigned point is.

and one for the hardware model:

* ``provisioned_clusters(n)`` — how many windows the hardware must
  provision for an ``n``-element level, which with ``window`` geometry
  gives the Table I memory capacity.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from math import ceil

from repro.errors import ClusteringError


class ClusterStrategy(ABC):
    """Abstract cluster-size policy."""

    #: Hard cap on elements per cluster (None = unbounded).
    max_size: int | None

    @abstractmethod
    def should_stop(self, size: int, gap_ratio: float) -> bool:
        """Close the growing cluster at ``size`` elements?

        ``gap_ratio`` is the distance from the cluster centroid to the
        nearest unassigned point divided by the level's typical point
        spacing (large ⇒ the next point is geometrically foreign).
        """

    @abstractmethod
    def provisioned_clusters(self, n: int) -> int:
        """Windows the hardware provisions for an ``n``-element level."""

    @abstractmethod
    def hardware_p(self) -> int | None:
        """Window-dimension parameter p (None when unimplementable)."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short label used in tables (e.g. ``"1/2/3"``)."""


@dataclass(frozen=True)
class ArbitraryStrategy(ClusterStrategy):
    """Unlimited p, only the cluster count is restricted (Table I baseline).

    Average cluster size 2; actual sizes follow the geometry.  This is
    the quality upper bound — the paper deems it unimplementable
    ("great reconfigurability challenges"), so :meth:`hardware_p`
    returns None and no capacity is reported for it in Table I.

    There is no *hardware* size cap, but growth is budgeted at twice
    the target mean so the *average* stays near 2 (the paper's
    "two elements on average, exact value arbitrary") even on uniform
    grids where no geometric gap ever fires.
    """

    gate: float = 3.0
    target_mean: float = 2.0

    @property
    def max_size(self) -> int | None:  # type: ignore[override]
        """No hard cap — growth is budgeted, not bounded."""
        return None

    def should_stop(self, size: int, gap_ratio: float) -> bool:
        if size < 1:
            return False
        if gap_ratio > self.gate:
            return True
        if size >= 2 * self.target_mean:
            return True  # growth budget: keep the average near target
        # Past the target mean, only keep growing for very close points.
        if size >= self.target_mean and gap_ratio > 0.5 * self.gate:
            return True
        return False

    def provisioned_clusters(self, n: int) -> int:
        return ceil(n / self.target_mean)

    def hardware_p(self) -> int | None:
        return None

    @property
    def name(self) -> str:
        return "arbitrary"


@dataclass(frozen=True)
class FixedSizeStrategy(ClusterStrategy):
    """Exactly ``p`` elements per cluster ("strictly fixed", Table I).

    Geometry is ignored: the cluster closes only when full, so spatially
    poor clusters are forced — the source of the degraded optimal ratio
    the paper reports for this strategy.
    """

    p: int = 2

    def __post_init__(self) -> None:
        if self.p < 1:
            raise ClusteringError(f"p must be >= 1, got {self.p}")

    @property
    def max_size(self) -> int | None:  # type: ignore[override]
        """Exactly p elements per cluster."""
        return self.p

    def should_stop(self, size: int, gap_ratio: float) -> bool:
        return size >= self.p

    def provisioned_clusters(self, n: int) -> int:
        return ceil(n / self.p)

    def hardware_p(self) -> int | None:
        return self.p

    @property
    def name(self) -> str:
        return str(self.p)


@dataclass(frozen=True)
class SemiFlexibleStrategy(ClusterStrategy):
    """Sizes 1..p_max with average (1+p_max)/2 (the paper's proposal).

    The hardware supports ``2N/(1+p_max)`` clusters all provisioned at
    the full p_max window, so size flexibility costs only redundant
    columns.  Geometric gaps close clusters early; dense runs fill to
    p_max.
    """

    p_max: int = 3
    gate: float = 3.0

    def __post_init__(self) -> None:
        if self.p_max < 1:
            raise ClusteringError(f"p_max must be >= 1, got {self.p_max}")

    @property
    def max_size(self) -> int | None:  # type: ignore[override]
        """At most p_max elements per cluster."""
        return self.p_max

    @property
    def target_mean(self) -> float:
        """The average cluster size the hardware budget assumes."""
        return (1 + self.p_max) / 2.0

    def should_stop(self, size: int, gap_ratio: float) -> bool:
        if size >= self.p_max:
            return True
        if size >= 1 and gap_ratio > self.gate:
            return True
        if size >= self.target_mean and gap_ratio > 0.5 * self.gate:
            return True
        return False

    def provisioned_clusters(self, n: int) -> int:
        return ceil(2 * n / (1 + self.p_max))

    def hardware_p(self) -> int | None:
        return self.p_max

    @property
    def name(self) -> str:
        return "/".join(str(i) for i in range(1, self.p_max + 1))


def strategy_from_name(name: str) -> ClusterStrategy:
    """Parse a Table I row label into a strategy.

    ``"arbitrary"`` → :class:`ArbitraryStrategy`; ``"4"`` →
    :class:`FixedSizeStrategy(4)`; ``"1/2/3"`` →
    :class:`SemiFlexibleStrategy(3)`.
    """
    label = name.strip().lower()
    if label in ("arbitrary", "baseline", "arbitrary (baseline)"):
        return ArbitraryStrategy()
    if "/" in label:
        parts = label.split("/")
        try:
            sizes = [int(p) for p in parts]
        except ValueError:
            raise ClusteringError(f"cannot parse strategy {name!r}") from None
        if sizes != list(range(1, len(sizes) + 1)):
            raise ClusteringError(
                f"semi-flexible label must be 1/2/.../p_max, got {name!r}"
            )
        return SemiFlexibleStrategy(p_max=sizes[-1])
    try:
        return FixedSizeStrategy(p=int(label))
    except ValueError:
        raise ClusteringError(f"cannot parse strategy {name!r}") from None
