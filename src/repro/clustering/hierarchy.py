"""Bottom-up hierarchical clustering (Fig. 4, left).

Level 0 groups the cities; level ℓ groups the centroids of level ℓ−1;
construction stops when a level has at most ``top_size`` clusters.  The
grouping itself is a spatially-coherent greedy agglomeration:

1. visit points in Morton (Z-curve) order;
2. seed a cluster at the first unassigned point;
3. repeatedly add the nearest unassigned point (searched through
   precomputed k-NN candidate lists) until the strategy's
   ``should_stop`` fires — either the size cap or a geometric gap.

The strategy object (see :mod:`repro.clustering.strategies`) is what
differentiates the Table I rows; the agglomeration machinery is shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.clustering.geometry import morton_order, typical_spacing
from repro.clustering.strategies import ClusterStrategy
from repro.errors import ClusteringError
from repro.tsp.instance import TSPInstance


@dataclass
class ClusterLevel:
    """One level of the hierarchy.

    Attributes
    ----------
    members:
        ``members[c]`` lists the indices (into the level below, or into
        the cities for level 0) belonging to cluster ``c``.
    centroids:
        ``(n_clusters, 2)`` centroid coordinates.
    """

    members: List[np.ndarray]
    centroids: np.ndarray

    @property
    def n_clusters(self) -> int:
        """Number of clusters at this level."""
        return len(self.members)

    @property
    def sizes(self) -> np.ndarray:
        """Cluster sizes as an int array."""
        return np.asarray([m.size for m in self.members], dtype=np.int64)

    def validate(self, n_below: int) -> None:
        """Check the level partitions ``range(n_below)`` exactly."""
        seen = np.zeros(n_below, dtype=bool)
        for m in self.members:
            if m.size == 0:
                raise ClusteringError("empty cluster")
            if seen[m].any():
                raise ClusteringError("overlapping clusters")
            seen[m] = True
        if not seen.all():
            raise ClusteringError("clusters do not cover all items")


@dataclass
class ClusterTree:
    """The full hierarchy for one instance + strategy.

    ``levels[0]`` clusters cities; ``levels[-1]`` is the top level used
    to seed the top-down hierarchical annealing.
    """

    instance: TSPInstance
    strategy: ClusterStrategy
    levels: List[ClusterLevel] = field(default_factory=list)

    @property
    def n_levels(self) -> int:
        """Number of clustering levels."""
        return len(self.levels)

    def points_at(self, level: int) -> np.ndarray:
        """Coordinates of the items grouped by ``levels[level]``.

        Level 0 groups city coordinates; level ℓ groups the centroids
        of level ℓ−1.
        """
        if not 0 <= level < self.n_levels:
            raise ClusteringError(f"level {level} out of range")
        if level == 0:
            return self.instance.coords
        return self.levels[level - 1].centroids

    def expand_to_cities(self, level: int, cluster: int) -> np.ndarray:
        """All city indices contained (transitively) in a cluster."""
        if not 0 <= level < self.n_levels:
            raise ClusteringError(f"level {level} out of range")
        items = self.levels[level].members[cluster]
        for lower in range(level - 1, -1, -1):
            items = np.concatenate(
                [self.levels[lower].members[int(i)] for i in items]
            )
        return items

    def validate(self) -> None:
        """Validate every level partitions the one below."""
        n_below = self.instance.n
        for lvl in self.levels:
            lvl.validate(n_below)
            n_below = lvl.n_clusters

    def max_level_size(self) -> int:
        """Largest cluster size anywhere in the tree."""
        return int(max(lvl.sizes.max() for lvl in self.levels))


def _greedy_level(
    points: np.ndarray,
    strategy: ClusterStrategy,
    rng_seed: int,
) -> ClusterLevel:
    """Group one level of points according to ``strategy``."""
    from repro.tsp.baselines.two_opt import build_neighbor_lists

    n = points.shape[0]
    if n == 1:
        return ClusterLevel(
            members=[np.array([0], dtype=np.int64)], centroids=points.copy()
        )
    max_size = strategy.max_size or n
    k = min(n - 1, max(8, 3 * min(max_size, 16)))
    nbrs = build_neighbor_lists(points, k)
    spacing = typical_spacing(points, seed=rng_seed)
    order = morton_order(points)

    assigned = np.zeros(n, dtype=bool)
    members: List[np.ndarray] = []
    for seed_pt in order:
        seed_pt = int(seed_pt)
        if assigned[seed_pt]:
            continue
        cluster = [seed_pt]
        assigned[seed_pt] = True
        centroid_acc = points[seed_pt].astype(np.float64).copy()
        while len(cluster) < max_size:
            # Candidates: unassigned k-NN of any current member.
            best, best_d = -1, np.inf
            cx, cy = centroid_acc / len(cluster)
            for m in cluster:
                for cand in nbrs[m]:
                    cand = int(cand)
                    if assigned[cand]:
                        continue
                    d = float(np.hypot(points[cand, 0] - cx, points[cand, 1] - cy))
                    if d < best_d:
                        best, best_d = cand, d
            if best < 0:
                break  # no unassigned neighbours in candidate lists
            if strategy.should_stop(len(cluster), best_d / spacing):
                break
            cluster.append(best)
            assigned[best] = True
            centroid_acc += points[best]
        members.append(np.asarray(cluster, dtype=np.int64))

    centroids = np.stack([points[m].mean(axis=0) for m in members])
    return ClusterLevel(members=members, centroids=centroids)


def _force_reduction(
    level: ClusterLevel, points: np.ndarray, max_size: Optional[int]
) -> ClusterLevel:
    """Merge nearest cluster pairs until the level shrinks enough.

    Guards against gate-dominated levels where almost every cluster is
    a singleton, which would stall the hierarchy.  Merging respects the
    strategy's size cap when one is set.
    """
    target = max(1, int(0.67 * points.shape[0]))
    members = [m.copy() for m in level.members]
    cap = max_size or points.shape[0]
    while len(members) > target:
        centroids = np.stack([points[m].mean(axis=0) for m in members])
        sizes = np.asarray([m.size for m in members])
        # Merge the pair of mergeable clusters with closest centroids.
        diff = centroids[:, None, :] - centroids[None, :, :]
        d = np.sqrt((diff * diff).sum(-1))
        np.fill_diagonal(d, np.inf)
        size_ok = (sizes[:, None] + sizes[None, :]) <= cap
        d[~size_ok] = np.inf
        flat = int(np.argmin(d))
        i, j = divmod(flat, len(members))
        if not np.isfinite(d[i, j]):
            break  # nothing mergeable under the cap
        members[i] = np.concatenate([members[i], members[j]])
        members.pop(j)
    centroids = np.stack([points[m].mean(axis=0) for m in members])
    return ClusterLevel(members=members, centroids=centroids)


def build_hierarchy(
    instance: TSPInstance,
    strategy: ClusterStrategy,
    top_size: int = 8,
    seed: int = 0,
) -> ClusterTree:
    """Build the full bottom-up hierarchy (Fig. 4).

    Parameters
    ----------
    instance:
        The TSP instance to cluster.
    strategy:
        Cluster-size policy (Table I row).
    top_size:
        Stop when a level has at most this many clusters; the top-level
        ordering is then solved directly by annealing.
    seed:
        Seed for the spacing estimator subsample (the agglomeration
        itself is deterministic given the point set).
    """
    if top_size < 2:
        raise ClusteringError(f"top_size must be >= 2, got {top_size}")
    tree = ClusterTree(instance=instance, strategy=strategy)
    points = instance.coords
    guard = 0
    while points.shape[0] > top_size:
        level = _greedy_level(points, strategy, rng_seed=seed + guard)
        # Ensure real progress: a level must shrink the problem.
        if level.n_clusters > 0.8 * points.shape[0] and points.shape[0] > top_size:
            level = _force_reduction(level, points, strategy.max_size)
        level.validate(points.shape[0])
        tree.levels.append(level)
        if level.n_clusters >= points.shape[0]:
            raise ClusteringError(
                "hierarchy stalled: level did not reduce the problem"
            )
        points = level.centroids
        guard += 1
        if guard > 64:
            raise ClusteringError("hierarchy exceeded 64 levels (bug guard)")
    if not tree.levels:
        # Tiny instance: single trivial level so the annealer has a top.
        members = [np.array([i], dtype=np.int64) for i in range(instance.n)]
        tree.levels.append(
            ClusterLevel(members=members, centroids=instance.coords.copy())
        )
    return tree
