"""Geometric helpers for clustering: centroids, scales, neighbour search."""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError


def centroid(points: np.ndarray) -> np.ndarray:
    """Arithmetic centroid of an ``(m, 2)`` point set."""
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] == 0:
        raise ClusteringError(f"points must be (m, 2) with m >= 1, got {pts.shape}")
    return pts.mean(axis=0)


def pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense Euclidean distances between two point sets."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt((diff * diff).sum(axis=-1))


def typical_spacing(points: np.ndarray, sample: int = 256, seed: int = 0) -> float:
    """Median nearest-neighbour distance (sampled for large sets).

    Used as the local length scale for the distance-gated greedy
    agglomeration: a candidate further than a few spacings away should
    start a new cluster rather than stretch the current one.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n < 2:
        raise ClusteringError("need at least 2 points for a spacing estimate")
    rng = np.random.default_rng(seed)
    idx = np.arange(n) if n <= sample else rng.choice(n, size=sample, replace=False)
    nn = np.empty(idx.size)
    for out, i in enumerate(idx):
        d = np.hypot(pts[:, 0] - pts[i, 0], pts[:, 1] - pts[i, 1])
        d[i] = np.inf
        nn[out] = d.min()
    spacing = float(np.median(nn))
    if spacing == 0.0:
        # Degenerate duplicates (snapped grids): fall back to mean.
        spacing = float(np.mean(nn))
    return max(spacing, 1e-12)


def morton_order(points: np.ndarray, bits: int = 16) -> np.ndarray:
    """Indices of ``points`` sorted along a Morton (Z-order) curve.

    Gives a spatially coherent processing order for the greedy
    agglomerator so clusters do not jump across the plane.
    """
    pts = np.asarray(points, dtype=np.float64)
    mins = pts.min(axis=0)
    span = np.maximum(pts.max(axis=0) - mins, 1e-12)
    scale = (1 << bits) - 1
    q = ((pts - mins) / span * scale).astype(np.uint64)

    def spread(v: np.ndarray) -> np.ndarray:
        v = v & np.uint64(0xFFFF)
        v = (v | (v << np.uint64(8))) & np.uint64(0x00FF00FF)
        v = (v | (v << np.uint64(4))) & np.uint64(0x0F0F0F0F)
        v = (v | (v << np.uint64(2))) & np.uint64(0x33333333)
        v = (v | (v << np.uint64(1))) & np.uint64(0x55555555)
        return v

    code = spread(q[:, 0]) | (spread(q[:, 1]) << np.uint64(1))
    return np.argsort(code, kind="stable")
