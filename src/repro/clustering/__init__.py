"""Hierarchical clustering substrate (input sparsity, Sec. III-A).

Cities are grouped bottom-up into clusters of ``p`` elements (or fewer,
depending on the strategy); cluster centroids are then clustered again,
level by level, until a small top-level problem remains.  Annealing is
later performed top-down over this tree (see
:mod:`repro.annealer.hierarchical`).

Three cluster-size strategies from Table I:

* :class:`ArbitraryStrategy` — only the number of clusters is fixed
  (average size 2, any actual size): best quality, unimplementable
  hardware ("absolute flexibility").
* :class:`FixedSizeStrategy` — every cluster has exactly ``p``
  elements: cheapest hardware, worst quality.
* :class:`SemiFlexibleStrategy` — sizes range 1..p_max with average
  (1+p_max)/2: the paper's proposed compromise.
"""

from repro.clustering.geometry import centroid, pairwise_distances
from repro.clustering.hierarchy import ClusterLevel, ClusterTree, build_hierarchy
from repro.clustering.strategies import (
    ArbitraryStrategy,
    ClusterStrategy,
    FixedSizeStrategy,
    SemiFlexibleStrategy,
    strategy_from_name,
)

__all__ = [
    "centroid",
    "pairwise_distances",
    "ClusterLevel",
    "ClusterTree",
    "build_hierarchy",
    "ClusterStrategy",
    "ArbitraryStrategy",
    "FixedSizeStrategy",
    "SemiFlexibleStrategy",
    "strategy_from_name",
]
