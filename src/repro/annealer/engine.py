"""Vectorised clustered-TSP level engine.

Simulates, for one hierarchy level, exactly what the CIM hardware
computes — swap-trial local energies over quantised, noise-corrupted
window weights — but batched across all clusters of a phase with numpy
gathers instead of per-window Python objects (a 3038-city level has
~1500 windows × 400 iterations; the golden
:class:`repro.cim.window.WeightWindow` path would take hours).

Bit-compatibility with the golden model is the critical invariant:

* every (column-position, row-position, element-pair) weight usage maps
  to a *distinct* bit cell with its own critical voltage and preferred
  state, exactly as in the expanded window of
  :func:`repro.cim.window.expand_spin_window`;
* corruption is regenerated at write-back boundaries from the same
  pseudo-read rule, so within a V_DD step the noise is spatial
  (deterministic per cell) and across trials it is temporal (different
  cells are addressed) — the Sec. IV-B mechanism.

The integration tests drive both implementations over the same state
and assert equal MAC values cell-for-cell.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.annealer.config import NoiseSource, NoiseTarget
from repro.cim.quantize import WeightQuantizer
from repro.errors import AnnealerError
from repro.ising.gibbs import cycle_groups
from repro.ising.numerics import boltzmann_accept_probability
from repro.sram.cell import SRAMCellParams
from repro.sram.errormodel import ErrorRateModel
from repro.utils.rng import RandomState


class ClusterLevelEngine:
    """Batched window-MAC simulator for one hierarchy level.

    Parameters
    ----------
    points:
        ``(M, 2)`` coordinates of the level's items (cities at level 0,
        centroids above).
    groups:
        K index arrays into ``points`` — the clusters, in tour-sequence
        order (from the level above).  Cyclic: group K−1 precedes 0.
    p:
        Window dimension; at least the largest group size.
    weight_bits:
        Weight precision (8).
    cell_params:
        SRAM population for the noise fields.
    noise_source, noise_target:
        Ablation switches (see :mod:`repro.annealer.config`).
    seed:
        Fabrication + proposal seed for this level.
    """

    def __init__(
        self,
        points: np.ndarray,
        groups: List[np.ndarray],
        p: int,
        weight_bits: int = 8,
        cell_params: Optional[SRAMCellParams] = None,
        noise_source: NoiseSource = NoiseSource.SRAM,
        noise_target: NoiseTarget = NoiseTarget.WEIGHTS,
        seed: int = 0,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise AnnealerError(f"points must be (M,2), got {points.shape}")
        if not groups:
            raise AnnealerError("need at least one group")
        self.points = points
        self.groups = [np.asarray(g, dtype=np.int64) for g in groups]
        self.K = len(self.groups)
        self.sizes = np.asarray([g.size for g in self.groups], dtype=np.int64)
        if int(self.sizes.max()) > p:
            raise AnnealerError(
                f"group of size {int(self.sizes.max())} exceeds window p={p}"
            )
        if int(self.sizes.min()) < 1:
            raise AnnealerError("empty group")
        self.p = int(p)
        self.weight_bits = int(weight_bits)
        self.noise_source = NoiseSource(noise_source)
        self.noise_target = NoiseTarget(noise_target)
        self.cell_params = cell_params or SRAMCellParams()
        self._error_model = ErrorRateModel(self.cell_params)
        self._rs = RandomState(seed)
        self.rng = self._rs.child("proposals")

        self._build_distance_tensors()
        self._build_noise_fields()

        # Local visiting order inside each cluster; identity initially
        # (padded tail positions index themselves and never move).
        self.order = np.tile(np.arange(self.p, dtype=np.int64), (self.K, 1))
        self._refresh_boundaries()

        # Effective (possibly corrupted) weights; clean until the first
        # write-back applies a noise setting.
        self.C_own = self.Q_own.copy()
        self.C_prev = self.Q_prev.copy()
        self.C_next = self.Q_next.copy()
        self._current_noise_amp_code = 0.0
        # The [4]-style spin-noise design has no noise ramp (Sec. IV-B
        # notes it used a single lowered V_DD): freeze its amplitude at
        # the first write-back's setting.
        self._spin_amp_code: Optional[float] = None

        # Counters the caller converts into chip events.
        self.trials_proposed = 0
        self.trials_accepted = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_distance_tensors(self) -> None:
        K, p = self.K, self.p
        coords = np.zeros((K, p, 2))
        for c, g in enumerate(self.groups):
            coords[c, : g.size] = self.points[g]
        self.coords = coords

        diff = coords[:, :, None, :] - coords[:, None, :, :]
        d_own = np.sqrt((diff * diff).sum(-1))  # (K, p, p) [row l, col k]
        prev_coords = np.roll(coords, 1, axis=0)  # cluster c-1's elements
        next_coords = np.roll(coords, -1, axis=0)
        dp = prev_coords[:, :, None, :] - coords[:, None, :, :]
        d_prev = np.sqrt((dp * dp).sum(-1))  # (K, p_prev-row, p-col)
        dn = next_coords[:, :, None, :] - coords[:, None, :, :]
        d_next = np.sqrt((dn * dn).sum(-1))

        # Zero the padded rows/cols ("redundant columns" hold code 0).
        valid = np.zeros((K, p), dtype=bool)
        for c in range(K):
            valid[c, : self.sizes[c]] = True
        self._valid = valid
        own_mask = valid[:, :, None] & valid[:, None, :]
        d_own *= own_mask
        prev_valid = np.roll(valid, 1, axis=0)
        next_valid = np.roll(valid, -1, axis=0)
        d_prev *= prev_valid[:, :, None] & valid[:, None, :]
        d_next *= next_valid[:, :, None] & valid[:, None, :]

        max_d = float(max(d_own.max(), d_prev.max(), d_next.max()))
        self.quantizer = WeightQuantizer(max_d, bits=self.weight_bits)
        self.Q_own_pair = self.quantizer.quantize(d_own)  # element-pair codes
        self.Q_prev = self.quantizer.quantize(d_prev)
        self.Q_next = self.quantizer.quantize(d_next)
        # Tile own codes per (column position, direction): each usage is
        # a distinct window cell, hence a distinct noisy bit group.
        self.Q_own = np.broadcast_to(
            self.Q_own_pair[:, None, None, :, :], (K, p, 2, p, p)
        ).copy()

    def _build_noise_fields(self) -> None:
        if (
            self.noise_source is not NoiseSource.SRAM
            or self.noise_target is not NoiseTarget.WEIGHTS
        ):
            self._vc_own = self._vc_prev = self._vc_next = None
            self._pref_own = self._pref_prev = self._pref_next = None
        else:
            params = self.cell_params
            B = self.weight_bits

            def fabricate(name: str, shape: Tuple[int, ...]) -> np.ndarray:
                rng = self._rs.child(f"fab/{name}")
                vc = (
                    params.v50_mv
                    + params.effective_sigma_mv
                    * rng.standard_normal(shape + (B,)).astype(np.float32)
                ).astype(np.float16)
                pref = rng.integers(0, 2, size=shape + (B,), dtype=np.uint8)
                return vc, pref

            K, p = self.K, self.p
            self._vc_own, self._pref_own = fabricate("own", (K, p, 2, p, p))
            self._vc_prev, self._pref_prev = fabricate("prev", (K, p, p))
            self._vc_next, self._pref_next = fabricate("next", (K, p, p))

        # Spatial spin-path noise pattern for the [4]-style ablation:
        # a fixed offset per (cluster, i, j) swap proposal.
        if self.noise_target is NoiseTarget.SPINS:
            rng = self._rs.child("fab/spin_offsets")
            raw = rng.standard_normal((self.K, self.p, self.p))
            self._spin_offsets = (raw + raw.transpose(0, 2, 1)) / np.sqrt(2.0)
        else:
            self._spin_offsets = None

    # ------------------------------------------------------------------
    # Noise application (write-back boundaries)
    # ------------------------------------------------------------------
    def _corrupt(
        self,
        codes: np.ndarray,
        vc: np.ndarray,
        pref: np.ndarray,
        vdd_mv: float,
        noisy_lsbs: int,
    ) -> np.ndarray:
        B = self.weight_bits
        bits = ((codes[..., None] >> np.arange(B)) & 1).astype(np.uint8)
        mask = vc.astype(np.float32) > np.float32(vdd_mv)
        if noisy_lsbs < B:
            mask = mask.copy()
            mask[..., noisy_lsbs:] = False
        bits = np.where(mask, pref, bits)
        return (bits.astype(np.int64) << np.arange(B)).sum(axis=-1)

    def writeback(self, vdd_mv: float, noisy_lsbs: int) -> None:
        """Refresh weights, then apply this step's pseudo-read corruption.

        For the non-SRAM noise modes the weights stay clean and only
        the equivalent noise *amplitude* (used to scale the LFSR / spin
        perturbations) tracks the schedule.
        """
        self._current_noise_amp_code = self._error_model.expected_weight_noise(
            vdd_mv, noisy_lsbs, self.weight_bits
        )
        if self._spin_amp_code is None:
            self._spin_amp_code = self._current_noise_amp_code
        if self._vc_own is None:
            return
        if noisy_lsbs == 0:
            self.C_own = self.Q_own.copy()
            self.C_prev = self.Q_prev.copy()
            self.C_next = self.Q_next.copy()
            return
        self.C_own = self._corrupt(
            self.Q_own, self._vc_own, self._pref_own, vdd_mv, noisy_lsbs
        )
        self.C_prev = self._corrupt(
            self.Q_prev, self._vc_prev, self._pref_prev, vdd_mv, noisy_lsbs
        )
        self.C_next = self._corrupt(
            self.Q_next, self._vc_next, self._pref_next, vdd_mv, noisy_lsbs
        )

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def _refresh_boundaries(self) -> None:
        last = self.order[np.arange(self.K), self.sizes - 1]
        first = self.order[:, 0]
        # Boundary element (local index in the *neighbour* cluster) seen
        # by each cluster's window.
        self.prev_last = np.roll(last, 1)
        self.next_first = np.roll(first, -1)

    def phase_groups(self) -> List[np.ndarray]:
        """Chromatic update groups over the cluster cycle (odd/even)."""
        return cycle_groups(self.K)

    def sequence(self) -> np.ndarray:
        """Level items in the current visiting order (global indices)."""
        parts = [
            self.groups[c][self.order[c, : self.sizes[c]]] for c in range(self.K)
        ]
        return np.concatenate(parts)

    def objective(self) -> float:
        """True (float) cyclic length of the current item sequence."""
        seq = self.sequence()
        pts = self.points[seq]
        nxt = np.roll(pts, -1, axis=0)
        return float(np.hypot(pts[:, 0] - nxt[:, 0], pts[:, 1] - nxt[:, 1]).sum())

    # ------------------------------------------------------------------
    # Energy computation (the MACs)
    # ------------------------------------------------------------------
    def _pair_energy(
        self,
        cs: np.ndarray,
        pos: np.ndarray,
        elem: np.ndarray,
        left_elem: np.ndarray,
        right_elem: np.ndarray,
        prev_boundary: Optional[np.ndarray] = None,
        next_boundary: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Local energy of spin (pos, elem) with explicit neighbours.

        ``left_elem``/``right_elem`` are the local element ids occupying
        positions pos−1 / pos+1 (ignored where the neighbour is the
        boundary spin of the adjacent cluster).  ``prev_boundary`` /
        ``next_boundary`` override the boundary spin element ids — used
        for after-swap energies when the swap itself moves the
        cluster's first/last element (only observable when a cluster is
        its own neighbour, i.e. the K = 1 top level).
        """
        last = self.sizes[cs] - 1
        at_first = pos == 0
        at_last = pos == last
        pb = self.prev_last[cs] if prev_boundary is None else prev_boundary
        nb = self.next_first[cs] if next_boundary is None else next_boundary
        # Clip override indices so gathers stay in range where masked.
        le = np.where(at_first, 0, left_elem)
        re = np.where(at_last, 0, right_elem)
        lpos = np.where(at_first, 0, pos)  # any valid value when masked
        left = np.where(
            at_first,
            self.C_prev[cs, pb, elem],
            self.C_own[cs, lpos, 0, le, elem],
        )
        right = np.where(
            at_last,
            self.C_next[cs, nb, elem],
            self.C_own[cs, pos, 1, re, elem],
        )
        return left + right

    def local_energy(self, cs: np.ndarray, pos: np.ndarray) -> np.ndarray:
        """Local energy of the spins currently at ``pos`` (MAC output)."""
        cs = np.asarray(cs)
        pos = np.asarray(pos)
        elem = self.order[cs, pos]
        left_elem = self.order[cs, np.maximum(pos - 1, 0)]
        right_elem = self.order[cs, np.minimum(pos + 1, self.p - 1)]
        return self._pair_energy(cs, pos, elem, left_elem, right_elem)

    # ------------------------------------------------------------------
    # Swap trials
    # ------------------------------------------------------------------
    def run_phase_trials(self, phase_cs: np.ndarray) -> Tuple[int, int]:
        """One swap trial in every cluster of a phase (4 MAC cycles).

        Returns ``(proposed, accepted)`` counts.  Mirrors the hardware
        exactly: two local-energy MACs with the pre-swap spins, two
        with the post-swap spins, accept when the (noisy) energy drops.
        """
        cs = np.asarray(phase_cs, dtype=np.int64)
        cs = cs[self.sizes[cs] >= 2]
        if cs.size == 0:
            return 0, 0
        s = self.sizes[cs]
        u = self.rng.random((2, cs.size))
        i = np.minimum((u[0] * s).astype(np.int64), s - 1)
        j = np.minimum((u[1] * s).astype(np.int64), s - 1)
        lo = np.minimum(i, j)
        hi = np.maximum(i, j)
        pick = lo != hi
        cs, lo, hi = cs[pick], lo[pick], hi[pick]
        if cs.size == 0:
            return 0, 0

        order = self.order
        k = order[cs, lo]  # element at the lower position
        l = order[cs, hi]  # element at the higher position

        # --- before-swap energies (2 MAC cycles) -----------------------
        e_before = self.local_energy(cs, lo) + self.local_energy(cs, hi)

        # --- after-swap energies (2 MAC cycles) ------------------------
        adjacent = hi == lo + 1
        # When a cluster is its own neighbour (K = 1, the top level),
        # moving the first/last element also moves the boundary spin the
        # window sees; compute the post-swap boundary ids.
        if self.K == 1:
            last_pos = self.sizes[cs] - 1
            prev_after = np.where(hi == last_pos, k, order[cs, last_pos])
            next_after = np.where(lo == 0, l, order[cs, 0])
        else:
            prev_after = next_after = None
        # Spin (lo, l): left neighbour unchanged, right becomes k if adjacent.
        left_lo = order[cs, np.maximum(lo - 1, 0)]
        right_lo = np.where(adjacent, k, order[cs, np.minimum(lo + 1, self.p - 1)])
        e_after_lo = self._pair_energy(
            cs, lo, l, left_lo, right_lo, prev_after, next_after
        )
        # Spin (hi, k): right neighbour unchanged, left becomes l if adjacent.
        left_hi = np.where(adjacent, l, order[cs, np.maximum(hi - 1, 0)])
        right_hi = order[cs, np.minimum(hi + 1, self.p - 1)]
        e_after_hi = self._pair_energy(
            cs, hi, k, left_hi, right_hi, prev_after, next_after
        )

        delta = (e_after_lo + e_after_hi - e_before).astype(np.float64)

        # --- non-SRAM noise ablations ----------------------------------
        amp = self._current_noise_amp_code
        if self.noise_source is NoiseSource.LFSR and amp > 0:
            # Temporal PRNG perturbation with the schedule's amplitude
            # (≈4 independent weight reads per delta → 2·amp spread).
            delta = delta + 2.0 * amp * self._rs.child(
                f"lfsr/{self.trials_proposed}"
            ).standard_normal(cs.size)
        if self.noise_target is NoiseTarget.SPINS:
            # Spatial-only noise at a fixed (never-annealed) amplitude:
            # the same proposal always sees the same offset, and [4]'s
            # single lowered V_DD means it never decays either.
            spin_amp = self._spin_amp_code or 0.0
            if spin_amp > 0:
                delta = delta + 2.0 * spin_amp * self._spin_offsets[cs, lo, hi]

        if self.noise_source is NoiseSource.METROPOLIS and amp > 0:
            # Idealised baseline: exact energies, Boltzmann acceptance
            # at a temperature tracking the noise-amplitude schedule.
            u = self._rs.child(
                f"metropolis/{self.trials_proposed}"
            ).random(cs.size)
            accept = (delta < 0) | (
                u < boltzmann_accept_probability(delta, amp)
            )
        else:
            accept = delta < 0
        acc = cs[accept]
        if acc.size:
            alo, ahi = lo[accept], hi[accept]
            tmp = order[acc, alo].copy()
            order[acc, alo] = order[acc, ahi]
            order[acc, ahi] = tmp
            self._refresh_boundaries()

        self.trials_proposed += int(cs.size)
        self.trials_accepted += int(acc.size)
        return int(cs.size), int(acc.size)
