"""The hierarchical clustered CIM annealer (Fig. 4, right).

End-to-end solve:

1. **Cluster** bottom-up with the configured strategy.
2. **Top level** — the ≤ ``top_size`` super-clusters are ordered by the
   same windowed swap-annealer, run as a single window whose boundary
   wraps onto itself (a cyclic TSP over the top centroids).
3. **Descend** — for each level, the cluster sequence fixed above is
   refined by annealing the internal order of every cluster against its
   neighbours' boundary spins, on noisy quantised CIM weights, with
   odd/even clusters updating in alternating parallel phases.
4. The bottom level's item sequence is the city tour.

Hardware events accumulate in one :class:`repro.cim.macro.CIMChip`
(arrays are time-multiplexed across levels, so the bottom level sets
the provisioned window count).
"""

from __future__ import annotations

import zlib
from typing import List, Optional

import numpy as np

from repro.annealer.cluster_tsp import solve_level
from repro.annealer.config import AnnealerConfig
from repro.annealer.engine import ClusterLevelEngine
from repro.annealer.result import AnnealResult, LevelReport
from repro.annealer.trace import ConvergenceTrace
from repro.cim.macro import CIMChip
from repro.clustering.hierarchy import ClusterTree, build_hierarchy
from repro.errors import AnnealerError
from repro.runtime.telemetry import Stopwatch
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import tour_length


class ClusteredCIMAnnealer:
    """Public solver API of the reproduction.

    Example
    -------
    >>> from repro.tsp import random_uniform
    >>> from repro.annealer import AnnealerConfig, ClusteredCIMAnnealer
    >>> inst = random_uniform(200, seed=1)
    >>> result = ClusteredCIMAnnealer(AnnealerConfig(seed=7)).solve(inst)
    >>> result.tour.shape
    (200,)
    """

    def __init__(self, config: Optional[AnnealerConfig] = None) -> None:
        self.config = config or AnnealerConfig()

    # ------------------------------------------------------------------
    def build_tree(self, instance: TSPInstance) -> ClusterTree:
        """Cluster the instance with the configured strategy."""
        return build_hierarchy(
            instance,
            self.config.strategy,
            top_size=self.config.top_size,
            seed=self.config.seed,
        )

    def _make_engine(
        self,
        points: np.ndarray,
        groups: List[np.ndarray],
        p: int,
        level_tag: str,
    ) -> ClusterLevelEngine:
        cfg = self.config
        # Distinct fabrication/proposal seed per level, derived from the
        # master seed so the whole solve is reproducible.
        seed = (
            cfg.seed * 1_000_003 + zlib.crc32(level_tag.encode("utf-8"))
        ) % (2**31 - 1)
        return ClusterLevelEngine(
            points=points,
            groups=groups,
            p=p,
            weight_bits=cfg.weight_bits,
            cell_params=cfg.cell_params,
            noise_source=cfg.noise_source,
            noise_target=cfg.noise_target,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def solve(self, instance: TSPInstance) -> AnnealResult:
        """Run the full hierarchical anneal and return the result."""
        cfg = self.config
        watch = Stopwatch()
        tree = self.build_tree(instance)
        n_levels = tree.n_levels

        hardware_p = cfg.strategy.hardware_p()
        chip_p = hardware_p or tree.max_level_size()
        chip = CIMChip(
            p=chip_p,
            n_clusters=cfg.strategy.provisioned_clusters(instance.n),
            weight_bits=cfg.weight_bits,
        )
        trace = ConvergenceTrace() if cfg.record_trace else None
        reports: List[LevelReport] = []

        # ---- top level: order the super-clusters -----------------------
        top = tree.levels[-1]
        top_points = top.centroids
        k_top = top.n_clusters
        if k_top == 1:
            cluster_order = np.array([0], dtype=np.int64)
        else:
            engine = self._make_engine(
                points=top_points,
                groups=[np.arange(k_top, dtype=np.int64)],
                p=k_top,
                level_tag=f"top/{n_levels}",
            )
            reports.append(
                solve_level(
                    engine,
                    cfg.schedule,
                    level=n_levels,  # top solve labelled one above
                    chip=chip,
                    trace=trace,
                    trace_every=cfg.trace_every,
                    parallel_update=cfg.parallel_update,
                )
            )
            cluster_order = engine.sequence()

        # ---- descend the hierarchy -------------------------------------
        for level_idx in range(n_levels - 1, -1, -1):
            level = tree.levels[level_idx]
            points = tree.points_at(level_idx)
            groups = [level.members[int(c)] for c in cluster_order]
            max_size = int(max(g.size for g in groups))
            p = max(hardware_p or 1, max_size)
            engine = self._make_engine(
                points=points,
                groups=groups,
                p=p,
                level_tag=f"level/{level_idx}",
            )
            reports.append(
                solve_level(
                    engine,
                    cfg.schedule,
                    level=level_idx,
                    chip=chip,
                    trace=trace,
                    trace_every=cfg.trace_every,
                    parallel_update=cfg.parallel_update,
                )
            )
            cluster_order = engine.sequence()

        tour = cluster_order
        if tour.size != instance.n:
            raise AnnealerError(
                f"hierarchy produced {tour.size} cities, expected {instance.n}"
            )
        length = tour_length(instance, tour)
        return AnnealResult(
            instance=instance,
            tour=tour,
            length=length,
            chip=chip,
            levels=reports,
            trace=trace,
            wall_time_s=watch.elapsed_s(),
        )
