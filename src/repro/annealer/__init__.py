"""The paper's core contribution: the clustered digital-CIM annealer.

:class:`ClusteredCIMAnnealer` solves large TSPs end-to-end:

1. build the bottom-up cluster hierarchy (input sparsity, Sec. III-A);
2. solve the top-level ordering;
3. anneal each level top-down on simulated CIM windows with noisy
   8-bit SRAM weights (weight sparsity + SRAM annealing, Sec. III-B /
   IV), updating odd/even clusters in alternating parallel phases;
4. report the tour, quality, convergence trace, and the hardware event
   counters that feed the PPA models.

The heavy lifting happens in :class:`repro.annealer.engine.ClusterLevelEngine`,
a vectorised implementation of the window MACs that is bit-compatible
with the golden :class:`repro.cim.window.WeightWindow` model (asserted
by the integration tests).
"""

from repro.annealer.batch import EnsembleResult, solve_ensemble
from repro.annealer.batched import solve_batch
from repro.annealer.config import AnnealerConfig, NoiseSource, NoiseTarget
from repro.annealer.engine import ClusterLevelEngine
from repro.annealer.hierarchical import ClusteredCIMAnnealer
from repro.annealer.result import AnnealResult, LevelReport
from repro.annealer.trace import ConvergenceTrace

__all__ = [
    "AnnealerConfig",
    "NoiseSource",
    "NoiseTarget",
    "ClusterLevelEngine",
    "ClusteredCIMAnnealer",
    "AnnealResult",
    "LevelReport",
    "ConvergenceTrace",
    "EnsembleResult",
    "solve_ensemble",
    "solve_batch",
]
