"""Batched replica engine for the clustered CIM annealer.

Anneals many seeds of one instance in one vectorised kernel: the R
replicas' swap trials run as a single flat numpy batch per phase
(gathers over stacked per-replica weight tensors), while construction,
write-back corruption, and the proposal RNG stay per replica so every
replica is **bit-identical to its own serial run** of
:class:`~repro.annealer.hierarchical.ClusteredCIMAnnealer` — same
tours, same lengths, same trial counters.  ``batch_size=1`` (the
serial path) remains the exactness oracle the batch is tested against.

Why this is exact
-----------------
* Window energies are **integer** (quantised weight codes summed in
  ``int64``), so batching the energy gathers cannot reassociate any
  floating-point reduction.
* The only floating-point trial math (``u * size`` position draws and
  the ``delta < 0`` accept) is elementwise, which vectorises exactly.
* Each replica keeps its own ``RandomState``-derived proposal stream
  and consumes it in the serial order: a level's draws are taken as
  one per-replica block up front (PCG64 block draws equal successive
  scalar draws), with the per-iteration offset affine in the iteration
  index because a phase's eligible-cluster count never changes within
  a level.
* Hardware-event accounting is replica-independent (it depends only on
  the schedule and the level geometry), so one template
  :class:`~repro.cim.macro.CIMChip` records the events once and is
  deep-copied per replica — the profiled seam-transfer accounting cost
  is paid once per batch instead of once per run.

Batching is gated to configurations whose accept rule is a pure
function of the integer energies: ``noise_source`` ∈ {``SRAM``,
``NONE``} with ``noise_target=WEIGHTS`` and no convergence trace.  The
``LFSR``/``METROPOLIS`` ablations key extra noise streams off a
per-replica trial counter and the ``SPINS`` target keeps per-replica
amplitude state, so those (and trace recording) fall back to per-seed
serial solves — :func:`solve_batch` always returns the exact serial
results either way.  Replicas whose cluster hierarchies differ (the
tree build is seed-dependent) are grouped by tree signature and
batched within each group.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.annealer.cluster_tsp import CYCLES_PER_TRIAL
from repro.annealer.config import AnnealerConfig, NoiseSource, NoiseTarget
from repro.annealer.engine import ClusterLevelEngine
from repro.annealer.hierarchical import ClusteredCIMAnnealer
from repro.annealer.result import AnnealResult, LevelReport
from repro.cim.macro import CIMChip
from repro.clustering.hierarchy import ClusterTree
from repro.errors import AnnealerError
from repro.ising.schedule import VddSchedule
from repro.runtime.telemetry import Stopwatch
from repro.sram.writeback import WritebackController
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import tour_length


def batchable_config(config: AnnealerConfig) -> bool:
    """Can this configuration run on the batched kernel bit-exactly?"""
    return (
        config.noise_source in (NoiseSource.SRAM, NoiseSource.NONE)
        and config.noise_target is NoiseTarget.WEIGHTS
        and not config.record_trace
    )


class _PhasePlan(NamedTuple):
    """Static flat layout of one phase's trial slots across replicas."""

    rep: np.ndarray  # (n_slots,) replica index of each slot
    cs: np.ndarray  # (n_slots,) cluster index of each slot
    sizes: np.ndarray  # (n_slots,) cluster sizes (static per level)
    #: per replica (replica, offset into its iteration draw block, m)
    slices: List[Tuple[int, int, int]]


class _BatchedLevelKernel:
    """Flat-batch swap trials over R same-shape level engines.

    Owns the stacked order/weight state during a level solve; the
    engines' own state is written back by :meth:`finish` so
    ``sequence()``/``objective()`` observe the annealed order.
    """

    def __init__(
        self,
        engines: Sequence[ClusterLevelEngine],
        schedule: VddSchedule,
        parallel_update: bool,
    ) -> None:
        self.engines = list(engines)
        self.R = len(self.engines)
        first = self.engines[0]
        self.K = first.K
        self.p = first.p
        for e in self.engines:
            if e.K != self.K or e.p != self.p:
                raise AnnealerError(
                    "batched replicas must share the level geometry"
                )
        self.sizes_st = np.stack([e.sizes for e in self.engines])
        self.order_st = np.stack([e.order for e in self.engines])
        self._refresh_boundaries()
        self.restack_weights()

        phase_list = (
            first.phase_groups()
            if parallel_update
            else [np.array([c], dtype=np.int64) for c in range(self.K)]
        )
        # A phase's eligible clusters (size >= 2) are static for the
        # whole level, so each replica's per-iteration draw count is a
        # constant c_r and the serial stream can be pre-drawn in one
        # block with offsets affine in the iteration index.
        pre = np.zeros(self.R, dtype=np.int64)
        self._phases: List[_PhasePlan] = []
        for ph in phase_list:
            ph = np.asarray(ph, dtype=np.int64)
            rep_parts: List[np.ndarray] = []
            cs_parts: List[np.ndarray] = []
            slices: List[Tuple[int, int, int]] = []
            for r in range(self.R):
                cs_r = ph[self.sizes_st[r, ph] >= 2]
                slices.append((r, int(pre[r]), int(cs_r.size)))
                pre[r] += 2 * cs_r.size
                if cs_r.size:
                    rep_parts.append(
                        np.full(cs_r.size, r, dtype=np.int64)
                    )
                    cs_parts.append(cs_r)
            rep = (
                np.concatenate(rep_parts)
                if rep_parts
                else np.empty(0, dtype=np.int64)
            )
            cs = (
                np.concatenate(cs_parts)
                if cs_parts
                else np.empty(0, dtype=np.int64)
            )
            sizes = (
                self.sizes_st[rep, cs]
                if rep.size
                else np.empty(0, dtype=np.int64)
            )
            self._phases.append(_PhasePlan(rep, cs, sizes, slices))
        self._draws_per_iter = pre
        self._U = [
            e.rng.random(schedule.total_iterations * int(pre[r]))
            for r, e in enumerate(self.engines)
        ]

    # ------------------------------------------------------------------
    def restack_weights(self) -> None:
        """Re-stack the (possibly just rewritten) effective weights."""
        self.C_own_st = np.stack([e.C_own for e in self.engines])
        self.C_prev_st = np.stack([e.C_prev for e in self.engines])
        self.C_next_st = np.stack([e.C_next for e in self.engines])

    def _refresh_boundaries(self) -> None:
        idx = (self.sizes_st - 1)[:, :, None]
        last = np.take_along_axis(self.order_st, idx, axis=2)[:, :, 0]
        first = self.order_st[:, :, 0]
        self.prev_last_st = np.roll(last, 1, axis=1)
        self.next_first_st = np.roll(first, -1, axis=1)

    # ------------------------------------------------------------------
    def _pair_energy(
        self,
        rep: np.ndarray,
        cs: np.ndarray,
        pos: np.ndarray,
        elem: np.ndarray,
        left_elem: np.ndarray,
        right_elem: np.ndarray,
        prev_boundary: Optional[np.ndarray] = None,
        next_boundary: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Batched mirror of ``ClusterLevelEngine._pair_energy``."""
        last = self.sizes_st[rep, cs] - 1
        at_first = pos == 0
        at_last = pos == last
        pb = (
            self.prev_last_st[rep, cs]
            if prev_boundary is None
            else prev_boundary
        )
        nb = (
            self.next_first_st[rep, cs]
            if next_boundary is None
            else next_boundary
        )
        le = np.where(at_first, 0, left_elem)
        re = np.where(at_last, 0, right_elem)
        lpos = np.where(at_first, 0, pos)
        left = np.where(
            at_first,
            self.C_prev_st[rep, cs, pb, elem],
            self.C_own_st[rep, cs, lpos, 0, le, elem],
        )
        right = np.where(
            at_last,
            self.C_next_st[rep, cs, nb, elem],
            self.C_own_st[rep, cs, pos, 1, re, elem],
        )
        return left + right

    def _local_energy(
        self, rep: np.ndarray, cs: np.ndarray, pos: np.ndarray
    ) -> np.ndarray:
        order = self.order_st
        elem = order[rep, cs, pos]
        left_elem = order[rep, cs, np.maximum(pos - 1, 0)]
        right_elem = order[rep, cs, np.minimum(pos + 1, self.p - 1)]
        return self._pair_energy(rep, cs, pos, elem, left_elem, right_elem)

    # ------------------------------------------------------------------
    def run_phase(
        self, iteration: int, phase: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One swap trial per eligible cluster per replica.

        Returns per-replica ``(proposed, accepted)`` count arrays; the
        proposal draws, positions, energies, accepts, and swaps are all
        bit-identical to each replica's serial
        ``ClusterLevelEngine.run_phase_trials`` call.
        """
        plan = self._phases[phase]
        zeros = np.zeros(self.R, dtype=np.int64)
        if plan.rep.size == 0:
            return zeros, zeros
        u0_parts: List[np.ndarray] = []
        u1_parts: List[np.ndarray] = []
        for r, off, m in plan.slices:
            if m == 0:
                continue
            base = iteration * int(self._draws_per_iter[r]) + off
            u0_parts.append(self._U[r][base : base + m])
            u1_parts.append(self._U[r][base + m : base + 2 * m])
        u0 = np.concatenate(u0_parts)
        u1 = np.concatenate(u1_parts)
        s = plan.sizes
        i = np.minimum((u0 * s).astype(np.int64), s - 1)
        j = np.minimum((u1 * s).astype(np.int64), s - 1)
        lo = np.minimum(i, j)
        hi = np.maximum(i, j)
        pick = lo != hi
        rep_b = plan.rep[pick]
        proposed = np.bincount(rep_b, minlength=self.R)
        if rep_b.size == 0:
            return proposed, zeros
        cs_b = plan.cs[pick]
        lo_b = lo[pick]
        hi_b = hi[pick]

        order = self.order_st
        k = order[rep_b, cs_b, lo_b]
        l = order[rep_b, cs_b, hi_b]

        e_before = self._local_energy(rep_b, cs_b, lo_b) + self._local_energy(
            rep_b, cs_b, hi_b
        )

        adjacent = hi_b == lo_b + 1
        prev_after: Optional[np.ndarray]
        next_after: Optional[np.ndarray]
        if self.K == 1:
            last_pos = self.sizes_st[rep_b, cs_b] - 1
            prev_after = np.where(
                hi_b == last_pos, k, order[rep_b, cs_b, last_pos]
            )
            next_after = np.where(lo_b == 0, l, order[rep_b, cs_b, 0])
        else:
            prev_after = next_after = None
        left_lo = order[rep_b, cs_b, np.maximum(lo_b - 1, 0)]
        right_lo = np.where(
            adjacent, k, order[rep_b, cs_b, np.minimum(lo_b + 1, self.p - 1)]
        )
        e_after_lo = self._pair_energy(
            rep_b, cs_b, lo_b, l, left_lo, right_lo, prev_after, next_after
        )
        left_hi = np.where(
            adjacent, l, order[rep_b, cs_b, np.maximum(hi_b - 1, 0)]
        )
        right_hi = order[rep_b, cs_b, np.minimum(hi_b + 1, self.p - 1)]
        e_after_hi = self._pair_energy(
            rep_b, cs_b, hi_b, k, left_hi, right_hi, prev_after, next_after
        )

        delta = (e_after_lo + e_after_hi - e_before).astype(np.float64)
        accept = delta < 0
        rep_a = rep_b[accept]
        if rep_a.size:
            cs_a = cs_b[accept]
            alo = lo_b[accept]
            ahi = hi_b[accept]
            tmp = order[rep_a, cs_a, alo].copy()
            order[rep_a, cs_a, alo] = order[rep_a, cs_a, ahi]
            order[rep_a, cs_a, ahi] = tmp
            self._refresh_boundaries()
        return proposed, np.bincount(rep_a, minlength=self.R)

    def finish(self, proposed: np.ndarray, accepted: np.ndarray) -> None:
        """Write the annealed state back into the serial engines."""
        for r, e in enumerate(self.engines):
            e.order[:, :] = self.order_st[r]
            e._refresh_boundaries()
            e.trials_proposed = int(proposed[r])
            e.trials_accepted = int(accepted[r])


def _solve_level_batched(
    engines: Sequence[ClusterLevelEngine],
    schedule: VddSchedule,
    level: int,
    chip: CIMChip,
    parallel_update: bool,
) -> List[LevelReport]:
    """Batched mirror of :func:`repro.annealer.cluster_tsp.solve_level`.

    Chip events are recorded once (they are replica-independent); wall
    time is attributed evenly across the replicas.
    """
    watch = Stopwatch()
    controller = WritebackController(schedule=schedule)
    engines = list(engines)
    R = len(engines)
    obj_before = [e.objective() for e in engines]
    kernel = _BatchedLevelKernel(engines, schedule, parallel_update)
    K = kernel.K
    phase_groups = engines[0].phase_groups()
    proposed = np.zeros(R, dtype=np.int64)
    accepted = np.zeros(R, dtype=np.int64)
    last_lsbs = schedule.weight_bits

    for iteration in range(schedule.total_iterations):
        writeback, vdd, lsbs = controller.begin_iteration(iteration)
        if writeback:
            for e in engines:
                e.writeback(vdd, lsbs)
            kernel.restack_weights()
            bits = schedule.weight_bits if iteration == 0 else last_lsbs
            chip.record_writeback(n_windows=K, bits_per_weight=bits)
            last_lsbs = lsbs

        if parallel_update:
            for phase, group in enumerate(phase_groups):
                n_prop, n_acc = kernel.run_phase(iteration, phase)
                proposed += n_prop
                accepted += n_acc
                chip.record_phase_cycles(
                    active_windows=int(group.size),
                    cycles=CYCLES_PER_TRIAL,
                    level=level,
                )
                chip.record_seam_transfers(phase % 2, cycles=1)
        else:
            for c in range(K):
                n_prop, n_acc = kernel.run_phase(iteration, c)
                proposed += n_prop
                accepted += n_acc
                chip.record_phase_cycles(
                    active_windows=1, cycles=CYCLES_PER_TRIAL, level=level
                )

    controller.validate_complete()
    kernel.finish(proposed, accepted)
    obj_after = [e.objective() for e in engines]
    chip.record_level_done()
    wall = watch.elapsed_s() / R
    n_items = int(engines[0].sizes.sum())
    return [
        LevelReport(
            level=level,
            n_items=n_items,
            n_clusters=K,
            p=kernel.p,
            iterations=schedule.total_iterations,
            swaps_proposed=int(proposed[r]),
            swaps_accepted=int(accepted[r]),
            objective_before=obj_before[r],
            objective_after=obj_after[r],
            wall_time_s=wall,
        )
        for r in range(R)
    ]


def _tree_signature(tree: ClusterTree) -> Tuple[object, ...]:
    """Hashable identity of a cluster hierarchy's structure."""
    return tuple(
        tuple(tuple(m.tolist()) for m in level.members)
        for level in tree.levels
    )


def _solve_group(
    instance: TSPInstance,
    annealers: Sequence[ClusteredCIMAnnealer],
    tree: ClusterTree,
) -> List[AnnealResult]:
    """Batched hierarchical solve for replicas sharing one tree."""
    watch = Stopwatch()
    annealers = list(annealers)
    R = len(annealers)
    cfg0 = annealers[0].config
    n_levels = tree.n_levels

    hardware_p = cfg0.strategy.hardware_p()
    chip_p = hardware_p or tree.max_level_size()
    chip = CIMChip(
        p=chip_p,
        n_clusters=cfg0.strategy.provisioned_clusters(instance.n),
        weight_bits=cfg0.weight_bits,
    )
    reports: List[List[LevelReport]] = [[] for _ in range(R)]

    # ---- top level: order the super-clusters -------------------------
    top = tree.levels[-1]
    k_top = top.n_clusters
    if k_top == 1:
        cluster_orders = [np.array([0], dtype=np.int64) for _ in range(R)]
    else:
        engines = [
            a._make_engine(
                points=top.centroids,
                groups=[np.arange(k_top, dtype=np.int64)],
                p=k_top,
                level_tag=f"top/{n_levels}",
            )
            for a in annealers
        ]
        per_rep = _solve_level_batched(
            engines,
            cfg0.schedule,
            level=n_levels,
            chip=chip,
            parallel_update=cfg0.parallel_update,
        )
        for r in range(R):
            reports[r].append(per_rep[r])
        cluster_orders = [e.sequence() for e in engines]

    # ---- descend the hierarchy ---------------------------------------
    for level_idx in range(n_levels - 1, -1, -1):
        level = tree.levels[level_idx]
        points = tree.points_at(level_idx)
        groups_by_rep = [
            [level.members[int(c)] for c in cluster_orders[r]]
            for r in range(R)
        ]
        # The replicas permute the same cluster set, so the maximal
        # group size (hence p) is identical for all of them.
        max_size = int(max(g.size for g in groups_by_rep[0]))
        p = max(hardware_p or 1, max_size)
        engines = [
            a._make_engine(
                points=points,
                groups=groups_by_rep[r],
                p=p,
                level_tag=f"level/{level_idx}",
            )
            for r, a in enumerate(annealers)
        ]
        per_rep = _solve_level_batched(
            engines,
            cfg0.schedule,
            level=level_idx,
            chip=chip,
            parallel_update=cfg0.parallel_update,
        )
        for r in range(R):
            reports[r].append(per_rep[r])
        cluster_orders = [e.sequence() for e in engines]

    wall = watch.elapsed_s()
    results: List[AnnealResult] = []
    for r in range(R):
        tour = cluster_orders[r]
        if tour.size != instance.n:
            raise AnnealerError(
                f"hierarchy produced {tour.size} cities, "
                f"expected {instance.n}"
            )
        results.append(
            AnnealResult(
                instance=instance,
                tour=tour,
                length=tour_length(instance, tour),
                chip=chip if r == R - 1 else copy.deepcopy(chip),
                levels=reports[r],
                trace=None,
                wall_time_s=wall / R,
            )
        )
    return results


def solve_batch(
    instance: TSPInstance,
    config: Optional[AnnealerConfig],
    seeds: Sequence[int],
) -> List[AnnealResult]:
    """Solve ``instance`` for every seed, batching replicas where exact.

    Returns one :class:`AnnealResult` per seed, in seed order, each
    bit-identical to ``ClusteredCIMAnnealer(replace(config,
    seed=s)).solve(instance)``.  Configurations (or replicas) the
    batched kernel cannot represent exactly fall back to that serial
    call transparently.
    """
    config = config if config is not None else AnnealerConfig()
    seed_list = [int(s) for s in seeds]
    if not seed_list:
        raise AnnealerError("need at least one seed")
    if len(seed_list) == 1 or not batchable_config(config):
        return [
            ClusteredCIMAnnealer(replace(config, seed=s)).solve(instance)
            for s in seed_list
        ]
    annealers = [
        ClusteredCIMAnnealer(replace(config, seed=s)) for s in seed_list
    ]
    trees = [a.build_tree(instance) for a in annealers]
    by_signature: Dict[Tuple[object, ...], List[int]] = {}
    for idx, tree in enumerate(trees):
        by_signature.setdefault(_tree_signature(tree), []).append(idx)

    out: List[Optional[AnnealResult]] = [None] * len(seed_list)
    for members in by_signature.values():
        if len(members) == 1:
            r = members[0]
            out[r] = annealers[r].solve(instance)
        else:
            group_results = _solve_group(
                instance,
                [annealers[r] for r in members],
                trees[members[0]],
            )
            for r, result in zip(members, group_results):
                out[r] = result
    return [result for result in out if result is not None]
