"""Multi-seed batch solving with ensemble statistics.

Annealer results are stochastic, so credible quality numbers come from
seed ensembles.  :func:`solve_ensemble` is the blocking convenience
entry point: it wraps a :class:`repro.runtime.SolveRequest` and runs
it as the only job of a private
:class:`repro.runtime.AnnealingService` — the same serving runtime
that multiplexes many concurrent ensembles onto one shared pool — and
returns per-seed results, :class:`repro.analysis.quality.QualityStats`
on the optimal ratios, and structured
:class:`repro.runtime.EnsembleTelemetry` (per-run wall times, trial
counters, write-backs, chip MAC counters) — the exact aggregation the
benchmark suite and EXPERIMENTS.md report.

Parallel runs are **bit-identical** to serial ones: each run is fully
determined by its seed and results are reassembled in seed order, so
``max_workers`` only changes wall-clock, never tours or lengths.

API (1.2)
---------
The two canonical forms are the only forms::

    solve_ensemble(request)                           # a SolveRequest
    solve_ensemble(instance, seeds,
                   config=cfg, reference=ref,
                   options=EnsembleOptions(max_workers=4))

The pre-1.1 tuning keywords (``max_workers=``, ``timeout_s=``,
``max_retries=``) and positional ``config``/``reference`` were
deprecation-shimmed for exactly one release (1.1) and removed in 1.2
(see ``docs/serving.md`` for the timeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.analysis.quality import QualityStats
from repro.annealer.config import AnnealerConfig
from repro.errors import AnnealerError
from repro.runtime.options import EnsembleOptions, SolveRequest
from repro.runtime.service import solve_sync
from repro.runtime.telemetry import EnsembleTelemetry, RunResultLike

if TYPE_CHECKING:  # import cycle: repro.backends.base sits above this
    from repro.backends.base import ProblemLike


@dataclass
class EnsembleResult:
    """Results of a multi-seed batch solve.

    ``results`` holds whatever the dispatched backend produced —
    :class:`~repro.annealer.result.AnnealResult` for the default
    clustered CIM annealer, :class:`~repro.backends.base.
    BackendRunResult` otherwise; both satisfy
    :class:`~repro.runtime.telemetry.RunResultLike`, and ``length`` is
    always the minimised objective, so ``best`` and ``ratios`` work
    identically for every backend.
    """

    instance: "ProblemLike"
    reference: float
    results: List[RunResultLike] = field(default_factory=list)
    ratio_stats: Optional[QualityStats] = None
    telemetry: Optional[EnsembleTelemetry] = None

    @property
    def ratios(self) -> List[float]:
        """Optimal ratio of every run."""
        if not self.results:
            raise AnnealerError(
                "ensemble has no successful runs; no ratios to report"
            )
        return [r.optimal_ratio(self.reference) for r in self.results]

    @property
    def best(self) -> RunResultLike:
        """The lowest-objective run."""
        if not self.results:
            raise AnnealerError(
                "ensemble has no successful runs; no best result"
            )
        return min(self.results, key=lambda r: r.length)

    @property
    def n_runs(self) -> int:
        """Ensemble size (successful runs)."""
        return len(self.results)


def solve_ensemble(
    instance: Union["ProblemLike", SolveRequest],
    seeds: Optional[Sequence[int]] = None,
    *,
    config: Optional[AnnealerConfig] = None,
    reference: Optional[float] = None,
    options: Optional[EnsembleOptions] = None,
    backend: str = "cluster-cim",
) -> EnsembleResult:
    """Solve ``instance`` once per seed and aggregate the quality.

    Thin synchronous wrapper over the serving runtime
    (:mod:`repro.runtime.service`): builds a
    :class:`~repro.runtime.options.SolveRequest` (or accepts one
    directly as the sole argument) and runs it to completion on a
    private single-job :class:`~repro.runtime.AnnealingService`.

    Parameters
    ----------
    instance:
        The problem — or a complete :class:`SolveRequest`, in which
        case every other argument must be omitted.
    seeds:
        Seeds; each produces an independent fabrication + anneal.
        Duplicates are rejected — they would silently skew
        ``ratio_stats`` with correlated runs.
    config:
        Keyword-only base configuration; its ``seed`` field is
        replaced per run.
    reference:
        Keyword-only reference length for ratios (computed if
        omitted).
    options:
        Keyword-only runtime tuning
        (:class:`~repro.runtime.EnsembleOptions`): pool width, per-run
        timeout/retries, admission-control knobs.  Results are
        bit-identical for any ``max_workers``.
    backend:
        Keyword-only registry name of the solver backend
        (:func:`repro.backends.list_backends`); the default
        ``"cluster-cim"`` is the paper's clustered CIM annealer.
    """
    if isinstance(instance, SolveRequest):
        if (
            seeds is not None
            or config is not None
            or reference is not None
            or options is not None
            or backend != "cluster-cim"
        ):
            raise AnnealerError(
                "solve_ensemble(request) takes no other arguments; put "
                "config/reference/options/backend on the SolveRequest itself"
            )
        return solve_sync(instance)
    if seeds is None:
        raise TypeError("solve_ensemble() missing required argument: 'seeds'")

    request = SolveRequest.build(
        instance,
        seeds,
        config=config,
        reference=reference,
        options=options,
        backend=backend,
    )
    return solve_sync(request)
