"""Multi-seed batch solving with ensemble statistics.

Annealer results are stochastic, so credible quality numbers come from
seed ensembles.  :func:`solve_ensemble` runs the clustered CIM annealer
across seeds — serially or fanned out over a process pool via
:class:`repro.runtime.EnsembleExecutor` — and returns per-seed results,
:class:`repro.analysis.quality.QualityStats` on the optimal ratios, and
structured :class:`repro.runtime.EnsembleTelemetry` (per-run wall
times, trial counters, write-backs, chip MAC counters) — the exact
aggregation the benchmark suite and EXPERIMENTS.md report.

Parallel runs are **bit-identical** to serial ones: each run is fully
determined by its seed and results are reassembled in seed order, so
``max_workers`` only changes wall-clock, never tours or lengths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.analysis.quality import QualityStats, summarize
from repro.annealer.config import AnnealerConfig
from repro.annealer.result import AnnealResult
from repro.errors import AnnealerError
from repro.runtime.executor import EnsembleExecutor
from repro.runtime.telemetry import EnsembleTelemetry
from repro.tsp.instance import TSPInstance
from repro.tsp.reference import reference_length


@dataclass
class EnsembleResult:
    """Results of a multi-seed batch solve."""

    instance: TSPInstance
    reference: float
    results: List[AnnealResult] = field(default_factory=list)
    ratio_stats: Optional[QualityStats] = None
    telemetry: Optional[EnsembleTelemetry] = None

    @property
    def ratios(self) -> List[float]:
        """Optimal ratio of every run."""
        if not self.results:
            raise AnnealerError(
                "ensemble has no successful runs; no ratios to report"
            )
        return [r.optimal_ratio(self.reference) for r in self.results]

    @property
    def best(self) -> AnnealResult:
        """The shortest-tour run."""
        if not self.results:
            raise AnnealerError(
                "ensemble has no successful runs; no best result"
            )
        return min(self.results, key=lambda r: r.length)

    @property
    def n_runs(self) -> int:
        """Ensemble size (successful runs)."""
        return len(self.results)


def solve_ensemble(
    instance: TSPInstance,
    seeds: Sequence[int],
    config: Optional[AnnealerConfig] = None,
    reference: Optional[float] = None,
    max_workers: int = 1,
    timeout_s: Optional[float] = None,
    max_retries: int = 1,
) -> EnsembleResult:
    """Solve ``instance`` once per seed and aggregate the quality.

    Parameters
    ----------
    instance:
        The problem.
    seeds:
        Seeds; each produces an independent fabrication + anneal.
        Duplicates are rejected — they would silently skew
        ``ratio_stats`` with correlated runs.
    config:
        Base configuration; its ``seed`` field is replaced per run.
    reference:
        Reference length for ratios (computed if omitted).
    max_workers:
        Worker processes for the ensemble; ``1`` (default, the historic
        behaviour) runs serially in-process.  Results are bit-identical
        either way.
    timeout_s:
        Optional per-run wall-clock budget in pool mode.
    max_retries:
        Extra in-process attempts for a failed or timed-out run.
    """
    seeds = [int(s) for s in seeds]
    if not seeds:
        raise AnnealerError("need at least one seed")
    if len(set(seeds)) != len(seeds):
        dupes = sorted({s for s in seeds if seeds.count(s) > 1})
        raise AnnealerError(
            f"duplicate seeds {dupes} would skew ratio_stats; "
            "pass distinct seeds"
        )
    base = config or AnnealerConfig()
    if reference is None:
        reference = reference_length(instance, seed=int(seeds[0]))

    executor = EnsembleExecutor(
        max_workers=max_workers,
        timeout_s=timeout_s,
        max_retries=max_retries,
    )
    results, telemetry = executor.run(
        instance, seeds, config=base, reference=reference
    )
    if not results:
        raise AnnealerError(
            f"all {len(seeds)} ensemble runs failed; "
            f"first error: {telemetry.runs[0].error}"
        )

    out = EnsembleResult(
        instance=instance,
        reference=reference,
        results=results,
        telemetry=telemetry,
    )
    out.ratio_stats = summarize(out.ratios, seed=int(seeds[0]))
    return out
