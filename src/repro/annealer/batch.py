"""Multi-seed batch solving with ensemble statistics.

Annealer results are stochastic, so credible quality numbers come from
seed ensembles.  :func:`solve_ensemble` is the blocking convenience
entry point: it wraps a :class:`repro.runtime.SolveRequest` and runs
it as the only job of a private
:class:`repro.runtime.AnnealingService` — the same serving runtime
that multiplexes many concurrent ensembles onto one shared pool — and
returns per-seed results, :class:`repro.analysis.quality.QualityStats`
on the optimal ratios, and structured
:class:`repro.runtime.EnsembleTelemetry` (per-run wall times, trial
counters, write-backs, chip MAC counters) — the exact aggregation the
benchmark suite and EXPERIMENTS.md report.

Parallel runs are **bit-identical** to serial ones: each run is fully
determined by its seed and results are reassembled in seed order, so
``max_workers`` only changes wall-clock, never tours or lengths.

API (1.1)
---------
Canonical forms::

    solve_ensemble(request)                           # a SolveRequest
    solve_ensemble(instance, seeds,
                   config=cfg, reference=ref,
                   options=EnsembleOptions(max_workers=4))

The pre-1.1 tuning keywords (``max_workers=``, ``timeout_s=``,
``max_retries=``) and positional ``config``/``reference`` still work
for one release but emit a :class:`DeprecationWarning` (see
``docs/serving.md`` for the timeline).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis.quality import QualityStats
from repro.annealer.config import AnnealerConfig
from repro.annealer.result import AnnealResult
from repro.errors import AnnealerError
from repro.runtime.options import EnsembleOptions, SolveRequest
from repro.runtime.service import solve_sync
from repro.runtime.telemetry import EnsembleTelemetry
from repro.tsp.instance import TSPInstance


@dataclass
class EnsembleResult:
    """Results of a multi-seed batch solve."""

    instance: TSPInstance
    reference: float
    results: List[AnnealResult] = field(default_factory=list)
    ratio_stats: Optional[QualityStats] = None
    telemetry: Optional[EnsembleTelemetry] = None

    @property
    def ratios(self) -> List[float]:
        """Optimal ratio of every run."""
        if not self.results:
            raise AnnealerError(
                "ensemble has no successful runs; no ratios to report"
            )
        return [r.optimal_ratio(self.reference) for r in self.results]

    @property
    def best(self) -> AnnealResult:
        """The shortest-tour run."""
        if not self.results:
            raise AnnealerError(
                "ensemble has no successful runs; no best result"
            )
        return min(self.results, key=lambda r: r.length)

    @property
    def n_runs(self) -> int:
        """Ensemble size (successful runs)."""
        return len(self.results)


#: Old positional order after ``seeds`` (pre-1.1 signature).
_LEGACY_POSITIONAL = (
    "config",
    "reference",
    "max_workers",
    "timeout_s",
    "max_retries",
)
#: Old tuning keywords now living on :class:`EnsembleOptions`.
_LEGACY_TUNING = ("max_workers", "timeout_s", "max_retries")


def solve_ensemble(
    instance: Union[TSPInstance, SolveRequest],
    seeds: Optional[Sequence[int]] = None,
    *legacy_args: Any,
    config: Optional[AnnealerConfig] = None,
    reference: Optional[float] = None,
    options: Optional[EnsembleOptions] = None,
    **legacy_kwargs: Any,
) -> EnsembleResult:
    """Solve ``instance`` once per seed and aggregate the quality.

    Thin synchronous wrapper over the serving runtime
    (:mod:`repro.runtime.service`): builds a
    :class:`~repro.runtime.options.SolveRequest` (or accepts one
    directly as the sole argument) and runs it to completion on a
    private single-job :class:`~repro.runtime.AnnealingService`.

    Parameters
    ----------
    instance:
        The problem — or a complete :class:`SolveRequest`, in which
        case every other argument must be omitted.
    seeds:
        Seeds; each produces an independent fabrication + anneal.
        Duplicates are rejected — they would silently skew
        ``ratio_stats`` with correlated runs.
    config:
        Keyword-only base configuration; its ``seed`` field is
        replaced per run.
    reference:
        Keyword-only reference length for ratios (computed if
        omitted).
    options:
        Keyword-only runtime tuning
        (:class:`~repro.runtime.EnsembleOptions`): pool width, per-run
        timeout/retries, admission-control knobs.  Results are
        bit-identical for any ``max_workers``.

    Deprecated (one-release shim, warns)
    ------------------------------------
    Positional ``config``/``reference`` and the tuning keywords
    ``max_workers=``, ``timeout_s=``, ``max_retries=``; they are
    mapped onto ``options`` and behave identically.
    """
    if isinstance(instance, SolveRequest):
        if (
            seeds is not None
            or legacy_args
            or legacy_kwargs
            or config is not None
            or reference is not None
            or options is not None
        ):
            raise AnnealerError(
                "solve_ensemble(request) takes no other arguments; put "
                "config/reference/options on the SolveRequest itself"
            )
        return solve_sync(instance)
    if seeds is None:
        raise TypeError("solve_ensemble() missing required argument: 'seeds'")

    legacy: Dict[str, Any] = {}
    if legacy_args:
        if len(legacy_args) > len(_LEGACY_POSITIONAL):
            raise TypeError(
                "solve_ensemble() takes at most "
                f"{2 + len(_LEGACY_POSITIONAL)} positional arguments"
            )
        legacy.update(zip(_LEGACY_POSITIONAL, legacy_args))
    unknown = sorted(set(legacy_kwargs) - set(_LEGACY_TUNING))
    if unknown:
        raise TypeError(
            f"solve_ensemble() got unexpected keyword arguments {unknown}"
        )
    overlap = sorted(set(legacy) & set(legacy_kwargs))
    if overlap:
        raise TypeError(
            f"solve_ensemble() got multiple values for {overlap}"
        )
    legacy.update(legacy_kwargs)

    if legacy:
        warnings.warn(
            "positional config/reference and the max_workers/timeout_s/"
            "max_retries keywords of solve_ensemble() are deprecated; "
            "pass config=/reference= and options=EnsembleOptions(...) "
            "(removal one release after 1.1)",
            DeprecationWarning,
            stacklevel=2,
        )
        if "config" in legacy:
            if config is not None:
                raise TypeError(
                    "solve_ensemble() got multiple values for 'config'"
                )
            config = legacy.pop("config")
        if "reference" in legacy:
            if reference is not None:
                raise TypeError(
                    "solve_ensemble() got multiple values for 'reference'"
                )
            reference = legacy.pop("reference")
        if legacy and options is not None:
            raise AnnealerError(
                "pass tuning either via options=EnsembleOptions(...) or "
                "the deprecated keywords, not both"
            )
        if legacy:
            options = EnsembleOptions(**legacy)

    request = SolveRequest.build(
        instance,
        seeds,
        config=config,
        reference=reference,
        options=options,
    )
    return solve_sync(request)
