"""Multi-seed batch solving with ensemble statistics.

Annealer results are stochastic, so credible quality numbers come from
seed ensembles.  :func:`solve_ensemble` runs the clustered CIM annealer
across seeds and returns per-seed results plus
:class:`repro.analysis.quality.QualityStats` on the optimal ratios —
the exact aggregation the benchmark suite and EXPERIMENTS.md report.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

from repro.analysis.quality import QualityStats, summarize
from repro.annealer.config import AnnealerConfig
from repro.annealer.hierarchical import ClusteredCIMAnnealer
from repro.annealer.result import AnnealResult
from repro.errors import AnnealerError
from repro.tsp.instance import TSPInstance
from repro.tsp.reference import reference_length


@dataclass
class EnsembleResult:
    """Results of a multi-seed batch solve."""

    instance: TSPInstance
    reference: float
    results: List[AnnealResult] = field(default_factory=list)
    ratio_stats: Optional[QualityStats] = None

    @property
    def ratios(self) -> List[float]:
        """Optimal ratio of every run."""
        return [r.optimal_ratio(self.reference) for r in self.results]

    @property
    def best(self) -> AnnealResult:
        """The shortest-tour run."""
        return min(self.results, key=lambda r: r.length)

    @property
    def n_runs(self) -> int:
        """Ensemble size."""
        return len(self.results)


def solve_ensemble(
    instance: TSPInstance,
    seeds: Sequence[int],
    config: Optional[AnnealerConfig] = None,
    reference: Optional[float] = None,
) -> EnsembleResult:
    """Solve ``instance`` once per seed and aggregate the quality.

    Parameters
    ----------
    instance:
        The problem.
    seeds:
        Seeds; each produces an independent fabrication + anneal.
    config:
        Base configuration; its ``seed`` field is replaced per run.
    reference:
        Reference length for ratios (computed if omitted).
    """
    if not seeds:
        raise AnnealerError("need at least one seed")
    base = config or AnnealerConfig()
    if reference is None:
        reference = reference_length(instance, seed=int(seeds[0]))

    results: List[AnnealResult] = []
    for seed in seeds:
        cfg = replace(base, seed=int(seed))
        results.append(ClusteredCIMAnnealer(cfg).solve(instance))

    out = EnsembleResult(instance=instance, reference=reference, results=results)
    out.ratio_stats = summarize(out.ratios, seed=int(seeds[0]))
    return out
