"""Single-level clustered-TSP solve (Fig. 5a update loop).

Drives a :class:`repro.annealer.engine.ClusterLevelEngine` through the
paper's update schedule:

* at every write-back boundary (each V_DD step), refresh the weights
  and re-apply the pseudo-read corruption at the new (V_DD, noisy-LSB)
  setting;
* per iteration, run one swap trial in every cluster — odd and even
  phases in alternating parallel cycles (4 MAC cycles each), or one
  cluster at a time when ``parallel_update`` is off (the sequential
  Gibbs ablation);
* report every cycle, write-back, and seam transfer to the CIM chip.
"""

from __future__ import annotations

from typing import Optional

from repro.annealer.engine import ClusterLevelEngine
from repro.annealer.result import LevelReport
from repro.annealer.trace import ConvergenceTrace
from repro.cim.macro import CIMChip
from repro.errors import AnnealerError
from repro.ising.schedule import VddSchedule
from repro.runtime.telemetry import Stopwatch
from repro.sram.writeback import WritebackController

#: MAC cycles per swap trial (2 before + 2 after the swap, Fig. 5a).
CYCLES_PER_TRIAL = 4


def solve_level(
    engine: ClusterLevelEngine,
    schedule: VddSchedule,
    level: int,
    chip: Optional[CIMChip] = None,
    trace: Optional[ConvergenceTrace] = None,
    trace_every: int = 10,
    parallel_update: bool = True,
) -> LevelReport:
    """Anneal one hierarchy level in place; return its report."""
    if trace_every < 1:
        raise AnnealerError(f"trace_every must be >= 1, got {trace_every}")
    watch = Stopwatch()
    controller = WritebackController(schedule=schedule)
    objective_before = engine.objective()
    proposed = accepted = 0
    last_lsbs = schedule.weight_bits  # initial programming writes all planes

    for iteration in range(schedule.total_iterations):
        writeback, vdd, lsbs = controller.begin_iteration(iteration)
        if writeback:
            engine.writeback(vdd, lsbs)
            if chip is not None:
                # The first event programs all planes; later refreshes
                # rewrite only the planes that were noisy last step.
                bits = schedule.weight_bits if iteration == 0 else last_lsbs
                chip.record_writeback(
                    n_windows=engine.K, bits_per_weight=bits
                )
            last_lsbs = lsbs

        if trace is not None and iteration % trace_every == 0:
            trace.record(level, iteration, engine.objective())

        if parallel_update:
            for phase, group in enumerate(engine.phase_groups()):
                n_prop, n_acc = engine.run_phase_trials(group)
                proposed += n_prop
                accepted += n_acc
                if chip is not None:
                    chip.record_phase_cycles(
                        active_windows=int(group.size),
                        cycles=CYCLES_PER_TRIAL,
                        level=level,
                    )
                    chip.record_seam_transfers(phase % 2, cycles=1)
        else:
            # Sequential Gibbs: one cluster per 4-cycle trial.
            for c in range(engine.K):
                n_prop, n_acc = engine.run_phase_trials([c])
                proposed += n_prop
                accepted += n_acc
                if chip is not None:
                    chip.record_phase_cycles(
                        active_windows=1, cycles=CYCLES_PER_TRIAL, level=level
                    )

    controller.validate_complete()
    objective_after = engine.objective()
    if trace is not None:
        trace.record(level, schedule.total_iterations, objective_after)
    if chip is not None:
        chip.record_level_done()
    return LevelReport(
        level=level,
        n_items=int(engine.sizes.sum()),
        n_clusters=engine.K,
        p=engine.p,
        iterations=schedule.total_iterations,
        swaps_proposed=proposed,
        swaps_accepted=accepted,
        objective_before=objective_before,
        objective_after=objective_after,
        wall_time_s=watch.elapsed_s(),
    )
