"""Results of a hierarchical anneal."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.annealer.trace import ConvergenceTrace
from repro.cim.macro import CIMChip
from repro.errors import AnnealerError
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import tour_length, validate_tour


@dataclass
class LevelReport:
    """Statistics of one annealed hierarchy level."""

    level: int
    n_items: int
    n_clusters: int
    p: int
    iterations: int
    swaps_proposed: int
    swaps_accepted: int
    objective_before: float
    objective_after: float
    wall_time_s: float = 0.0

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposed swaps accepted at this level."""
        return self.swaps_accepted / max(1, self.swaps_proposed)

    @property
    def improvement(self) -> float:
        """Relative objective reduction at this level."""
        if self.objective_before == 0:
            return 0.0
        return (self.objective_before - self.objective_after) / self.objective_before


@dataclass
class AnnealResult:
    """Everything a solve produces.

    Attributes
    ----------
    instance:
        The problem solved.
    tour:
        Final city visiting order (validated permutation).
    length:
        Tour length on the true (unquantised) metric.
    chip:
        The CIM chip with recorded hardware-event counters (feed it to
        :func:`repro.hardware.evaluate_ppa` for time/energy).
    levels:
        Per-level statistics, top level first.
    trace:
        Convergence samples (present when the config asked for them).
    wall_time_s:
        Host wall-clock of the simulation (not the hardware time!).
    """

    instance: TSPInstance
    tour: np.ndarray
    length: float
    chip: Optional[CIMChip] = None
    levels: List[LevelReport] = field(default_factory=list)
    trace: Optional[ConvergenceTrace] = None
    wall_time_s: float = 0.0

    def __post_init__(self) -> None:
        self.tour = validate_tour(self.tour, self.instance.n)
        recomputed = tour_length(self.instance, self.tour)
        if abs(recomputed - self.length) > max(1e-6, 1e-9 * abs(recomputed)):
            raise AnnealerError(
                f"reported length {self.length} does not match tour "
                f"({recomputed})"
            )

    def optimal_ratio(self, reference_length: float) -> float:
        """Tour length / reference — the paper's quality metric."""
        if reference_length <= 0:
            raise AnnealerError(
                f"reference_length must be > 0, got {reference_length}"
            )
        return self.length / reference_length

    @property
    def total_swaps_accepted(self) -> int:
        """Accepted swaps across all levels."""
        return sum(lv.swaps_accepted for lv in self.levels)

    @property
    def n_levels(self) -> int:
        """Hierarchy levels annealed (including the top solve)."""
        return len(self.levels)

    def __repr__(self) -> str:
        return (
            f"AnnealResult(n={self.instance.n}, length={self.length:.1f}, "
            f"levels={self.n_levels})"
        )
