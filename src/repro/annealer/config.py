"""Annealer configuration.

Collects every knob of the co-design in one validated dataclass:
clustering strategy, V_DD/noise schedule, weight precision, SRAM
population, and the ablation switches (noise source / noise target /
parallelism) used by the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Union

from repro.clustering.strategies import (
    ClusterStrategy,
    SemiFlexibleStrategy,
    strategy_from_name,
)
from repro.errors import ConfigError
from repro.ising.schedule import VddSchedule
from repro.sram.cell import SRAMCellParams


class NoiseSource(str, Enum):
    """Where the annealing randomness comes from.

    * ``SRAM`` — intrinsic process variation via pseudo-read (proposed);
    * ``LFSR`` — explicit digital PRNG perturbation of the energy
      comparison with the same amplitude schedule (conventional);
    * ``METROPOLIS`` — idealised software baseline: exact energies with
      probabilistic acceptance exp(−ΔH/T), T following the same
      amplitude schedule — the ceiling the hardware noise rules are
      measured against;
    * ``NONE`` — no noise: pure greedy descent on quantised weights.
    """

    SRAM = "sram"
    LFSR = "lfsr"
    METROPOLIS = "metropolis"
    NONE = "none"


class NoiseTarget(str, Enum):
    """Where the (spatial) SRAM noise is applied.

    * ``WEIGHTS`` — on the coupling matrix (proposed, Sec. IV-B):
      spatial variation becomes temporal because each trial reads
      different cells;
    * ``SPINS`` — on the spin path (the [4]-style design the paper
      argues against): the same proposal in the same state always sees
      the same error, so annealing degenerates to a fixed trace.
    """

    WEIGHTS = "weights"
    SPINS = "spins"


@dataclass
class AnnealerConfig:
    """Configuration of :class:`repro.annealer.ClusteredCIMAnnealer`.

    Attributes
    ----------
    strategy:
        Cluster-size strategy, or a Table I label like ``"1/2/3"``.
        Defaults to the paper's sweet spot, semi-flexible p_max = 3.
    schedule:
        V_DD / write-back schedule per annealing level (paper: 400
        iterations, 300→580 mV in 40 mV steps every 50).
    top_size:
        Maximum clusters at the top hierarchy level (solved directly).
    weight_bits:
        CIM weight precision (8).
    cell_params:
        SRAM population parameters for the noise fields.
    noise_source, noise_target:
        Ablation switches (see the enums).
    parallel_update:
        True (default): odd/even clusters update in alternating
        parallel phases.  False: clusters update one at a time
        (sequential Gibbs) — same moves, ~K/2× more cycles.
    seed:
        Master seed: instance-independent determinism for fabrication
        noise, initial orders, and proposal streams.
    record_trace:
        Record per-iteration tour length during each level (costs one
        vectorised length evaluation per record).
    trace_every:
        Iterations between trace records.
    """

    strategy: Union[ClusterStrategy, str] = field(
        default_factory=lambda: SemiFlexibleStrategy(p_max=3)
    )
    schedule: VddSchedule = field(default_factory=VddSchedule)
    top_size: int = 8
    weight_bits: int = 8
    cell_params: SRAMCellParams = field(default_factory=SRAMCellParams)
    noise_source: NoiseSource = NoiseSource.SRAM
    noise_target: NoiseTarget = NoiseTarget.WEIGHTS
    parallel_update: bool = True
    seed: int = 0
    record_trace: bool = False
    trace_every: int = 10

    def __post_init__(self) -> None:
        if isinstance(self.strategy, str):
            self.strategy = strategy_from_name(self.strategy)
        if self.top_size < 2:
            raise ConfigError(f"top_size must be >= 2, got {self.top_size}")
        if not 1 <= self.weight_bits <= 16:
            raise ConfigError(
                f"weight_bits must be in [1,16], got {self.weight_bits}"
            )
        if self.trace_every < 1:
            raise ConfigError(f"trace_every must be >= 1, got {self.trace_every}")
        if self.seed < 0:
            raise ConfigError(f"seed must be >= 0, got {self.seed}")
        self.noise_source = NoiseSource(self.noise_source)
        self.noise_target = NoiseTarget(self.noise_target)
        if self.schedule.weight_bits != self.weight_bits:
            raise ConfigError(
                "schedule.weight_bits must match config.weight_bits "
                f"({self.schedule.weight_bits} != {self.weight_bits})"
            )
