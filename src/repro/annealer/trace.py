"""Convergence-trace recording (Fig. 2-style energy curves)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import AnnealerError


@dataclass
class ConvergenceTrace:
    """Objective-vs-iteration samples across the hierarchical anneal.

    Samples are ``(level, iteration, objective)`` tuples; the objective
    is the true (float, unquantised) length of the level's current item
    sequence.  Because upper levels order centroids, objectives are
    comparable *within* a level but jump between levels — plots should
    group by level (the benchmark harness does).
    """

    samples: List[Tuple[int, int, float]] = field(default_factory=list)

    def record(self, level: int, iteration: int, objective: float) -> None:
        """Append one sample."""
        if iteration < 0:
            raise AnnealerError(f"iteration must be >= 0, got {iteration}")
        self.samples.append((level, iteration, float(objective)))

    def level_series(self, level: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(iterations, objectives)`` arrays for one level."""
        pts = [(it, obj) for lv, it, obj in self.samples if lv == level]
        if not pts:
            return np.empty(0, dtype=np.int64), np.empty(0)
        its, objs = zip(*pts)
        return np.asarray(its, dtype=np.int64), np.asarray(objs)

    def levels(self) -> List[int]:
        """Distinct levels present, in recording order."""
        seen: List[int] = []
        for lv, _, _ in self.samples:
            if lv not in seen:
                seen.append(lv)
        return seen

    def improvement(self, level: int) -> Optional[float]:
        """Relative objective drop over one level (first → last sample)."""
        _, objs = self.level_series(level)
        if objs.size < 2 or objs[0] == 0:
            return None
        return float((objs[0] - objs[-1]) / objs[0])

    def __len__(self) -> int:
        return len(self.samples)
