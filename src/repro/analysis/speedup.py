"""Speed-up accounting vs CPU and prior annealers (Sec. VI).

The paper's >10⁹× claim compares its µs-scale annealing
time-to-solution against the *published* Concorde exact-solver
wall-times (22 hours for pcb3038, 7 days for rl5934, 155 days for
rl11849 — solver runs to proven optimality, so the comparison trades
<25% tour quality for the speedup).  The same constants are kept here;
:func:`speedup_rows` joins them with our model's time-to-solution.

The Neuro-Ising comparison (rl5934: optimal ratio ~1.7 in 25 s total,
~8 s of Ising annealing) is also encoded for the Sec. VI bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ReproError
from repro.tsp.reference import CONCORDE_RUNTIMES_S


@dataclass(frozen=True)
class NeuroIsingDatum:
    """Published Neuro-Ising result on rl5934 (Sec. VI, ref [21])."""

    dataset: str = "rl5934"
    optimal_ratio: float = 1.7
    total_time_s: float = 25.0
    annealing_time_s: float = 8.0


NEURO_ISING_RL5934 = NeuroIsingDatum()


def concorde_speedup(dataset: str, time_to_solution_s: float) -> float:
    """Speed-up factor vs the published Concorde time for ``dataset``."""
    if time_to_solution_s <= 0:
        raise ReproError(
            f"time_to_solution_s must be > 0, got {time_to_solution_s}"
        )
    if dataset not in CONCORDE_RUNTIMES_S:
        raise ReproError(
            f"no Concorde runtime recorded for {dataset!r}; "
            f"known: {sorted(CONCORDE_RUNTIMES_S)}"
        )
    return CONCORDE_RUNTIMES_S[dataset] / time_to_solution_s


def speedup_rows(
    tts_by_dataset: Dict[str, float],
    ratios_by_dataset: Optional[Dict[str, float]] = None,
) -> List[Dict[str, float]]:
    """Assemble the Sec. VI speed-up table.

    Parameters
    ----------
    tts_by_dataset:
        Our annealing time-to-solution per dataset (seconds).
    ratios_by_dataset:
        Optional measured optimal ratios to report the quality overhead
        alongside (the paper's "<25% additional travelling distance").
    """
    rows: List[Dict[str, float]] = []
    for dataset, concorde_s in sorted(CONCORDE_RUNTIMES_S.items()):
        if dataset not in tts_by_dataset:
            continue
        tts = tts_by_dataset[dataset]
        row: Dict[str, float] = {
            "dataset": dataset,
            "concorde_s": concorde_s,
            "annealer_s": tts,
            "speedup": concorde_speedup(dataset, tts),
        }
        if ratios_by_dataset and dataset in ratios_by_dataset:
            row["optimal_ratio"] = ratios_by_dataset[dataset]
            row["quality_overhead"] = ratios_by_dataset[dataset] - 1.0
        rows.append(row)
    if not rows:
        raise ReproError("no overlapping datasets with Concorde runtimes")
    return rows
