"""Memory-capacity laws (Fig. 1, Fig. 3, Table I capacities).

Three mappings of an N-city TSP onto weight memory:

* **conventional** (Eq. 3 dense): N² spins → N⁴ couplings → O(N⁴) bits;
* **clustered** ([3], input sparsity): p·N spins → (pN)² couplings →
  O(N²) bits;
* **compact digital-CIM** (this paper, weight sparsity): only the
  valid windows are stored — ``(p²+2p)·p²`` weights per window times
  the number of windows → O(N) bits.

Window counts per strategy (Sec. V-A):

* fixed size p:            ``N / p`` windows;
* semi-flexible 1..p_max:  ``2N / (1+p_max)`` windows (all provisioned
  at the full p_max geometry, with redundant columns).

These are closed forms, so the Table I "Capacity (kB)" column and the
Fig. 1 curves are reproduced exactly.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, Sequence, Union

import numpy as np

from repro.clustering.strategies import (
    ClusterStrategy,
    strategy_from_name,
)
from repro.errors import ReproError


def _check(n: int, bits: int) -> None:
    if n < 1:
        raise ReproError(f"n must be >= 1, got {n}")
    if bits < 1:
        raise ReproError(f"bits must be >= 1, got {bits}")


def conventional_capacity_bits(n: int, bits: int = 8) -> float:
    """O(N⁴): dense coupling matrix of the Eq. (3) mapping."""
    _check(n, bits)
    return float(n) ** 4 * bits


def clustered_capacity_bits(n: int, p: int = 3, bits: int = 8) -> float:
    """O(N²): the clustered coupling matrix (pN)×(pN) of [3]."""
    _check(n, bits)
    if p < 1:
        raise ReproError(f"p must be >= 1, got {p}")
    return float(p * n) ** 2 * bits


def compact_capacity_bits(
    n: int, strategy: Union[ClusterStrategy, str], bits: int = 8
) -> float:
    """O(N): compact window storage for a given strategy.

    ``(p²+2p)·p²`` weights per window × provisioned windows × bits.
    Raises for the arbitrary strategy, which has no hardware mapping.
    """
    _check(n, bits)
    if isinstance(strategy, str):
        strategy = strategy_from_name(strategy)
    p = strategy.hardware_p()
    if p is None:
        raise ReproError(
            "the arbitrary strategy has no hardware window geometry"
        )
    weights_per_window = (p * p + 2 * p) * p * p
    return float(weights_per_window * strategy.provisioned_clusters(n) * bits)


def table1_capacity_bytes(
    n: int, strategy: Union[ClusterStrategy, str], bits: int = 8
) -> float:
    """Table I "Capacity" entry in bytes (the paper prints decimal kB).

    Note the paper's formula uses the *exact* (possibly fractional)
    window count N/p or 2N/(1+p_max); we match it by not rounding up:
    48.6 kB for pcb3038 / fixed-2, 466.9 kB for pcb3038 / 1-2-3-4, etc.
    """
    _check(n, bits)
    if isinstance(strategy, str):
        strategy = strategy_from_name(strategy)
    p = strategy.hardware_p()
    if p is None:
        raise ReproError(
            "the arbitrary strategy has no hardware window geometry"
        )
    weights_per_window = (p * p + 2 * p) * p * p
    from repro.clustering.strategies import FixedSizeStrategy

    if isinstance(strategy, FixedSizeStrategy):
        windows = n / p
    else:  # semi-flexible
        windows = 2 * n / (1 + p)
    return weights_per_window * windows * bits / 8.0


def fig1_series(
    n_values: Sequence[int], p: int = 3, bits: int = 8
) -> Dict[str, np.ndarray]:
    """The three Fig. 1 curves (bits of weight memory vs N).

    The compact curve uses the semi-flexible window count with
    ``p_max = p``.
    """
    ns = np.asarray(list(n_values), dtype=np.int64)
    if ns.size == 0 or ns.min(initial=1) < 1:
        raise ReproError("n_values must be non-empty positive integers")
    conventional = ns.astype(np.float64) ** 4 * bits
    clustered = (p * ns.astype(np.float64)) ** 2 * bits
    weights_per_window = (p * p + 2 * p) * p * p
    compact = np.asarray(
        [weights_per_window * ceil(2 * n / (1 + p)) * bits for n in ns],
        dtype=np.float64,
    )
    return {
        "n": ns.astype(np.float64),
        "conventional_O(N^4)": conventional,
        "clustered_O(N^2)": clustered,
        "compact_O(N)": compact,
    }
