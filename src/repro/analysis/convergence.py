"""Convergence-trace analytics (Fig. 2 and the noise ablations).

Fig. 2 illustrates the point of annealing: a pure descent gets stuck in
a local minimum while the annealed chain escapes and converges lower.
These helpers quantify that on recorded traces, and detect the
"fixed trace" pathology of spatial-only spin noise (Sec. IV-B): with a
deterministic error pattern, repeated attempts retrace the same
trajectory, so restarts produce identical objective sequences.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.annealer.trace import ConvergenceTrace
from repro.errors import ReproError


def summarize_trace(trace: ConvergenceTrace) -> Dict[int, Dict[str, float]]:
    """Per-level summary: initial / final / best objective, improvement."""
    out: Dict[int, Dict[str, float]] = {}
    for level in trace.levels():
        _, objs = trace.level_series(level)
        if objs.size == 0:
            continue
        out[level] = {
            "initial": float(objs[0]),
            "final": float(objs[-1]),
            "best": float(objs.min()),
            "improvement": float((objs[0] - objs[-1]) / objs[0])
            if objs[0] != 0
            else 0.0,
            "uphill_moves": float(np.sum(np.diff(objs) > 0)),
        }
    return out


def trace_is_stuck(objectives: Sequence[float], tail_fraction: float = 0.5) -> bool:
    """Did the objective stop improving over the trailing window?

    Used by the Fig. 2 bench to show that greedy descent plateaus while
    the annealed run keeps improving longer.
    """
    objs = np.asarray(list(objectives), dtype=np.float64)
    if objs.size < 4:
        raise ReproError("need at least 4 samples to judge convergence")
    if not 0.0 < tail_fraction <= 1.0:
        raise ReproError(f"tail_fraction must be in (0,1], got {tail_fraction}")
    tail = objs[int(objs.size * (1 - tail_fraction)) :]
    return bool(tail.min() >= objs[: objs.size - tail.size].min() - 1e-12)


def traces_identical(
    runs: Sequence[Sequence[float]], rtol: float = 1e-12
) -> bool:
    """Are several runs' objective traces numerically identical?

    The signature of spatial-only (deterministic) noise: every restart
    follows the same trajectory.  Temporal noise (SRAM-on-weights or
    LFSR) produces distinct traces.
    """
    if len(runs) < 2:
        raise ReproError("need at least 2 runs to compare")
    first = np.asarray(list(runs[0]), dtype=np.float64)
    for other in runs[1:]:
        arr = np.asarray(list(other), dtype=np.float64)
        if arr.shape != first.shape or not np.allclose(arr, first, rtol=rtol):
            return False
    return True
