"""Analysis layer: the closed-form laws and experiment drivers behind
the paper's figures and tables.

* :mod:`repro.analysis.capacity` — the O(N⁴)/O(N²)/O(N) memory laws
  (Fig. 1, Fig. 3, Table I capacities);
* :mod:`repro.analysis.convergence` — energy-trace analytics (Fig. 2);
* :mod:`repro.analysis.speedup` — Concorde / Neuro-Ising comparisons
  (Sec. VI);
* :mod:`repro.analysis.sweep` — design-space exploration drivers
  (Table I, Fig. 7) shared by the benchmark harness and the examples.
"""

from repro.analysis.capacity import (
    clustered_capacity_bits,
    compact_capacity_bits,
    conventional_capacity_bits,
    fig1_series,
    table1_capacity_bytes,
)
from repro.analysis.convergence import summarize_trace, trace_is_stuck
from repro.analysis.quality import (
    QualityStats,
    compare_ensembles,
    run_ensemble,
    summarize,
)
from repro.analysis.speedup import (
    NEURO_ISING_RL5934,
    concorde_speedup,
    speedup_rows,
)
from repro.analysis.sweep import (
    StrategyResult,
    explore_cluster_strategies,
    optimal_ratio_sweep,
    ppa_sweep,
)

__all__ = [
    "conventional_capacity_bits",
    "clustered_capacity_bits",
    "compact_capacity_bits",
    "table1_capacity_bytes",
    "fig1_series",
    "summarize_trace",
    "trace_is_stuck",
    "QualityStats",
    "summarize",
    "run_ensemble",
    "compare_ensembles",
    "concorde_speedup",
    "speedup_rows",
    "NEURO_ISING_RL5934",
    "StrategyResult",
    "explore_cluster_strategies",
    "optimal_ratio_sweep",
    "ppa_sweep",
]
