"""Design-space exploration drivers (Table I, Fig. 7).

Shared by the benchmark harness and the examples:

* :func:`explore_cluster_strategies` — Table I: capacity + optimal
  ratio for every strategy on one instance;
* :func:`optimal_ratio_sweep` — Fig. 7a: ratio vs dataset and p_max;
* :func:`ppa_sweep` — Fig. 7b-d: area / latency / energy vs dataset
  and p_max, from the hardware models (optionally driven by real
  simulated chip counters).

All drivers accept a ``size_scale`` so CI-speed runs can shrink the
instances while keeping every code path identical; the benches print
the scale they used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro.annealer.config import AnnealerConfig
from repro.annealer.hierarchical import ClusteredCIMAnnealer
from repro.analysis.capacity import table1_capacity_bytes
from repro.clustering.strategies import (
    ArbitraryStrategy,
    ClusterStrategy,
    SemiFlexibleStrategy,
    strategy_from_name,
)
from repro.errors import ReproError
from repro.hardware.ppa import PPAReport, evaluate_ppa
from repro.hardware.tech import TechNode
from repro.tsp.generators import PAPER_DATASETS, make_paper_instance
from repro.tsp.instance import TSPInstance
from repro.tsp.reference import reference_length


@dataclass
class StrategyResult:
    """One Table I row."""

    strategy_name: str
    capacity_bytes: Optional[float]  # None for the arbitrary baseline
    tour_length: float
    optimal_ratio: float


def _resolve(strategy: Union[ClusterStrategy, str]) -> ClusterStrategy:
    return strategy_from_name(strategy) if isinstance(strategy, str) else strategy


#: The Table I row set.
TABLE1_STRATEGIES = ("arbitrary", "2", "4", "1/2", "1/2/3", "1/2/3/4")


def explore_cluster_strategies(
    instance: TSPInstance,
    strategies: Sequence[Union[ClusterStrategy, str]] = TABLE1_STRATEGIES,
    seed: int = 0,
    reference: Optional[float] = None,
    config_overrides: Optional[dict] = None,
) -> List[StrategyResult]:
    """Run Table I on one instance: capacity + optimal ratio per strategy."""
    if reference is None:
        reference = reference_length(instance, seed=seed)
    results: List[StrategyResult] = []
    for spec in strategies:
        strategy = _resolve(spec)
        kwargs = dict(strategy=strategy, seed=seed)
        if config_overrides:
            kwargs.update(config_overrides)
        annealer = ClusteredCIMAnnealer(AnnealerConfig(**kwargs))
        res = annealer.solve(instance)
        capacity = (
            None
            if isinstance(strategy, ArbitraryStrategy)
            else table1_capacity_bytes(instance.n, strategy)
        )
        results.append(
            StrategyResult(
                strategy_name=strategy.name,
                capacity_bytes=capacity,
                tour_length=res.length,
                optimal_ratio=res.optimal_ratio(reference),
            )
        )
    return results


def optimal_ratio_sweep(
    datasets: Sequence[str],
    p_values: Sequence[int] = (2, 3, 4),
    seed: int = 0,
    size_scale: float = 1.0,
    include_baseline: bool = True,
    config_overrides: Optional[dict] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 7a: optimal ratio per dataset per p_max (+ arbitrary baseline).

    ``size_scale`` < 1 shrinks each synthetic instance (e.g. 0.1 turns
    pcb3038 into a 304-city analog) for fast runs.
    """
    if not 0 < size_scale <= 1.0:
        raise ReproError(f"size_scale must be in (0,1], got {size_scale}")
    out: Dict[str, Dict[str, float]] = {}
    for dataset in datasets:
        instance = _scaled_instance(dataset, size_scale, seed)
        reference = reference_length(instance, seed=seed)
        row: Dict[str, float] = {"n": float(instance.n)}
        strategies: List[ClusterStrategy] = [
            SemiFlexibleStrategy(p_max=p) for p in p_values
        ]
        if include_baseline:
            strategies.append(ArbitraryStrategy())
        for strategy in strategies:
            kwargs = dict(strategy=strategy, seed=seed)
            if config_overrides:
                kwargs.update(config_overrides)
            res = ClusteredCIMAnnealer(AnnealerConfig(**kwargs)).solve(instance)
            row[strategy.name] = res.optimal_ratio(reference)
        out[dataset] = row
    return out


def ppa_sweep(
    datasets: Sequence[str],
    p_values: Sequence[int] = (2, 3, 4),
    tech: Optional[TechNode] = None,
) -> Dict[str, Dict[int, PPAReport]]:
    """Fig. 7b-d: PPA model predictions per dataset per p_max.

    Pure closed-form (no annealing run): area from the window count,
    latency/energy from the schedule — identical to how the paper's
    NeuroSim-based numbers are produced.
    """
    out: Dict[str, Dict[int, PPAReport]] = {}
    for dataset in datasets:
        if dataset not in PAPER_DATASETS:
            raise ReproError(f"unknown dataset {dataset!r}")
        _, n = PAPER_DATASETS[dataset]
        per_p: Dict[int, PPAReport] = {}
        for p in p_values:
            strategy = SemiFlexibleStrategy(p_max=p)
            per_p[p] = evaluate_ppa(
                n_cities=n,
                p=p,
                n_clusters=strategy.provisioned_clusters(n),
                tech=tech,
                mean_cluster_size=strategy.target_mean,
            )
        out[dataset] = per_p
    return out


def _scaled_instance(dataset: str, size_scale: float, seed: int) -> TSPInstance:
    """The paper instance, optionally shrunk for fast sweeps."""
    if size_scale >= 1.0:
        return make_paper_instance(dataset, seed=seed + 2024)
    if dataset not in PAPER_DATASETS:
        raise ReproError(f"unknown dataset {dataset!r}")
    family, n = PAPER_DATASETS[dataset]
    from repro.tsp.generators import pcb_style, pla_style, rl_style

    builder = {"pcb": pcb_style, "rl": rl_style, "pla": pla_style}[family]
    small_n = max(64, int(n * size_scale))
    return builder(small_n, seed=seed + 2024, name=f"{dataset}-x{size_scale:g}")
