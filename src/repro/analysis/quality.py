"""Ensemble quality statistics.

Annealers are stochastic: a single run's optimal ratio is a sample, not
a result.  These helpers standardise how the benchmark suite and the
examples aggregate multi-seed ensembles — mean/min/max/std plus a
bootstrap confidence interval on the mean — and how two solver
ensembles are compared (win rate + relative mean gap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence

import numpy as np

from repro.errors import ReproError
from repro.utils.rng import SeedLike, spawn_rng


@dataclass(frozen=True)
class QualityStats:
    """Summary statistics of one solver ensemble."""

    n_runs: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for table rendering."""
        return {
            "n_runs": self.n_runs,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def summarize(
    values: Sequence[float],
    confidence: float = 0.95,
    n_bootstrap: int = 2000,
    seed: SeedLike = 0,
) -> QualityStats:
    """Summarise an ensemble with a bootstrap CI on the mean."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size < 1:
        raise ReproError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ReproError(f"confidence must be in (0,1), got {confidence}")
    if arr.size == 1:
        v = float(arr[0])
        return QualityStats(1, v, 0.0, v, v, v, v)
    rng = spawn_rng(seed)
    resamples = rng.choice(arr, size=(n_bootstrap, arr.size), replace=True)
    means = resamples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return QualityStats(
        n_runs=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci_low=float(lo),
        ci_high=float(hi),
    )


def run_ensemble(
    solver: Callable[[int], float],
    seeds: Sequence[int],
    **summary_kwargs,
) -> QualityStats:
    """Run ``solver(seed)`` for every seed and summarise the outputs."""
    if not seeds:
        raise ReproError("need at least one seed")
    return summarize([solver(int(s)) for s in seeds], **summary_kwargs)


def compare_ensembles(
    a: Sequence[float], b: Sequence[float]
) -> Dict[str, float]:
    """Pairwise comparison of two equal-length ensembles.

    Returns the win rate of ``a`` (fraction of seeds where a < b,
    lower-is-better), the relative mean gap ``mean(a)/mean(b) - 1``,
    and both means.
    """
    va = np.asarray(list(a), dtype=np.float64)
    vb = np.asarray(list(b), dtype=np.float64)
    if va.size != vb.size or va.size == 0:
        raise ReproError("ensembles must be non-empty and equal-length")
    wins = float(np.mean(va < vb)) + 0.5 * float(np.mean(va == vb))
    return {
        "win_rate_a": wins,
        "mean_a": float(va.mean()),
        "mean_b": float(vb.mean()),
        "relative_gap": float(va.mean() / vb.mean() - 1.0),
    }
