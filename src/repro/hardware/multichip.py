"""Multi-chip partitioning (the related-work scaling axis).

Table III's [23] scales Max-Cut annealing across 9 chips with
chip-to-chip links; Amorphica advertises "compressed-spin-transfer
multi-chip extension".  The compact clustered design scales the same
way: the cluster sequence is a 1-D chain, so splitting it into
contiguous chip-sized segments only adds p-bit boundary transfers at
chip seams — exactly the Fig. 5e dataflow, one level up.

:func:`partition_design` sizes a multi-chip system under a per-chip
area budget and reports the seam-bandwidth overhead, letting the
extension bench explore problems beyond a single reticle.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Optional

from repro.cim.array import WINDOWS_PER_ARRAY
from repro.errors import HardwareModelError
from repro.hardware.area import AreaModel
from repro.hardware.tech import TechNode


@dataclass(frozen=True)
class MultiChipPlan:
    """A partitioned design.

    Attributes
    ----------
    n_chips:
        Chips required under the area budget.
    arrays_per_chip:
        Arrays on each chip (last chip may be partially filled).
    chip_area_m2:
        Area of one full chip.
    clusters_per_chip:
        Cluster windows hosted per chip.
    seam_transfers_per_phase:
        Cross-chip boundary transfers per update phase (p bits each) —
        chip seams are a strict subset of array seams, so this bounds
        the extra off-chip bandwidth.
    offchip_bits_per_iteration:
        Total bits crossing chip boundaries per iteration (two phases).
    """

    n_chips: int
    arrays_per_chip: int
    chip_area_m2: float
    clusters_per_chip: int
    seam_transfers_per_phase: int
    offchip_bits_per_iteration: int

    @property
    def total_area_m2(self) -> float:
        """Silicon across all chips."""
        return self.n_chips * self.chip_area_m2


def partition_design(
    p: int,
    n_clusters: int,
    max_chip_area_mm2: float,
    tech: Optional[TechNode] = None,
) -> MultiChipPlan:
    """Partition ``n_clusters`` windows across chips of bounded area.

    Contiguous cluster ranges go to each chip, so each chip boundary
    introduces exactly one seam cluster per phase (the cyclic wrap
    closes the chain across the first/last chip).
    """
    if max_chip_area_mm2 <= 0:
        raise HardwareModelError(
            f"max_chip_area_mm2 must be > 0, got {max_chip_area_mm2}"
        )
    if n_clusters < 1:
        raise HardwareModelError(f"n_clusters must be >= 1, got {n_clusters}")
    area_model = AreaModel(tech=tech or TechNode())
    array_area_mm2 = area_model.array_area_m2(p) * 1e6
    arrays_per_chip = int(max_chip_area_mm2 // array_area_mm2)
    if arrays_per_chip < 1:
        raise HardwareModelError(
            f"one {p=} array ({array_area_mm2:.4f} mm^2) exceeds the "
            f"{max_chip_area_mm2} mm^2 chip budget"
        )
    n_arrays = ceil(n_clusters / WINDOWS_PER_ARRAY)
    n_chips = ceil(n_arrays / arrays_per_chip)
    clusters_per_chip = arrays_per_chip * WINDOWS_PER_ARRAY
    # One boundary per chip seam; with >1 chip the cyclic wrap adds the
    # closing seam, giving exactly n_chips seams on the cluster ring.
    seams = n_chips if n_chips > 1 else 0
    # Each phase moves p bits per seam; two phases per iteration.
    offchip_bits = 2 * seams * p
    return MultiChipPlan(
        n_chips=n_chips,
        arrays_per_chip=arrays_per_chip,
        chip_area_m2=arrays_per_chip * array_area_mm2 * 1e-6,
        clusters_per_chip=clusters_per_chip,
        seam_transfers_per_phase=seams,
        offchip_bits_per_iteration=offchip_bits,
    )
