"""Dynamic-energy model (Fig. 7d, Table III power).

Energy decomposes into per-event costs drawn from 16 nm digital-CIM
macro surveys and calibrated against the paper's 433 mW chip power for
pla85900 at p_max = 3:

* **window MAC** — one column reduction: ``(p²+2p) · weight_bits``
  1-bit products plus the adder tree.  Calibrated at 0.16 fJ per
  row-bit, i.e. ≈19 fJ for the 15×8 p_max = 3 window — in family with
  the ~100 TOPS/W reported for 16-22 nm digital CIM macros [6-8];
* **weight-bit write** — 2 fJ per rewritten bit cell (short bit-lines:
  these arrays are only 40-120 rows tall).  Write-backs after the
  initial programming rewrite only the previously-noisy LSB planes, so
  the write share of both energy and latency stays small (Fig. 7c/d);
* **seam transfer** — 10 fJ per bit over short inter-array links, once
  per swap trial per seam (the boundary spin changes at most once per
  trial).

With these constants the model lands pla85900 / p_max = 3 at ≈0.45 W
average vs the published 433 mW.  Average power = total dynamic energy
/ time-to-solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cim.macro import CIMChip
from repro.hardware.latency import LatencyModel, LatencyReport
from repro.hardware.tech import TechNode

#: Calibrated per-event energies at the 16 nm reference (joules).
MAC_ENERGY_PER_ROW_BIT_J = 0.16e-15
WRITE_ENERGY_PER_BIT_J = 2e-15
TRANSFER_ENERGY_PER_BIT_J = 10e-15


@dataclass(frozen=True)
class EnergyReport:
    """Energy-to-solution breakdown in joules."""

    read_energy_j: float
    write_energy_j: float
    transfer_energy_j: float

    @property
    def total_energy_j(self) -> float:
        """Total dynamic energy."""
        return self.read_energy_j + self.write_energy_j + self.transfer_energy_j

    @property
    def write_fraction(self) -> float:
        """Share of energy spent on write-backs (small, per Fig. 7d)."""
        total = self.total_energy_j
        return self.write_energy_j / total if total > 0 else 0.0

    def average_power_w(self, latency: LatencyReport) -> float:
        """Average chip power over the anneal (Table III row)."""
        t = latency.total_time_s
        return self.total_energy_j / t if t > 0 else 0.0


@dataclass(frozen=True)
class EnergyModel:
    """Turns chip counters into an :class:`EnergyReport`."""

    tech: TechNode = field(default_factory=TechNode)

    def mac_energy_j(self, chip: CIMChip) -> float:
        """Energy of one window-column MAC."""
        return (
            chip.window_rows
            * chip.weight_bits
            * MAC_ENERGY_PER_ROW_BIT_J
            * self.tech.energy_scale
        )

    def report(self, chip: CIMChip) -> EnergyReport:
        """Energy report from a chip's recorded counters."""
        scale = self.tech.energy_scale
        read = chip.macs_performed * self.mac_energy_j(chip)
        write = chip.weight_bits_written * WRITE_ENERGY_PER_BIT_J * scale
        transfer = chip.bits_transferred * TRANSFER_ENERGY_PER_BIT_J * scale
        return EnergyReport(
            read_energy_j=read,
            write_energy_j=write,
            transfer_energy_j=transfer,
        )

    def predict(
        self,
        chip: CIMChip,
        n_levels: int,
        iterations_per_level: int = 400,
        writeback_bits_per_level: int | None = None,
    ) -> EnergyReport:
        """Closed-form prediction matching :meth:`LatencyModel.predict`.

        Assumes the paper's default schedule: each iteration trials
        every cluster once (half per phase, 4 MAC cycles per trial),
        and write-backs refresh 8 + 6 + 5 + 4 + 3 + 2 + 1 = 29 bit
        planes per level (initial full programming then the shrinking
        noisy-LSB refreshes).
        """
        # MACs: every cluster runs one 4-cycle trial per iteration.
        macs = n_levels * iterations_per_level * 4 * chip.n_clusters
        read = macs * self.mac_energy_j(chip)

        if writeback_bits_per_level is None:
            # Full initial program + refreshes of the shrinking LSB set.
            planes = chip.weight_bits + sum(range(1, 7))  # 8 + 21 = 29
            writeback_bits_per_level = (
                chip.n_clusters * chip.weights_per_window * planes
            )
        write = (
            n_levels
            * writeback_bits_per_level
            * WRITE_ENERGY_PER_BIT_J
            * self.tech.energy_scale
        )

        # One p-bit seam transfer per trial per array seam, both phases.
        seams = max(0, chip.n_arrays - 1)
        transfer_bits = n_levels * iterations_per_level * 2 * seams * chip.p
        transfer = transfer_bits * TRANSFER_ENERGY_PER_BIT_J * self.tech.energy_scale
        return EnergyReport(
            read_energy_j=read,
            write_energy_j=write,
            transfer_energy_j=transfer,
        )

    def latency_and_energy(
        self, chip: CIMChip, latency_model: LatencyModel | None = None
    ) -> tuple[LatencyReport, EnergyReport]:
        """Convenience: both reports from the same counters."""
        lm = latency_model or LatencyModel(tech=self.tech)
        return lm.report(chip), self.report(chip)
