"""Latency model (Fig. 7c).

Time-to-solution is derived from the CIM chip's cycle counters:

* **read/compute cycles** — each swap trial is four MAC cycles (two
  local energies before the swap, two after, Fig. 5a); odd and even
  cluster phases run in alternate cycles, and all windows of a phase
  compute in parallel, so one *iteration* (a trial in every cluster)
  costs ``4 (solid) + 4 (dash) = 8`` cycles regardless of problem size;
* **write cycles** — at every write-back the correct weights are
  rewritten row-by-row, all arrays in parallel:
  ``5 · (p² + 2p)`` cycles per event;
* seam transfers overlap the MAC pipeline (p bits on dedicated links)
  and add no cycles — consistent with "data transmissions ... are very
  trivial" (Sec. III-B).

At the 900 MHz macro clock this lands rl5934 / p_max = 3 (≈10
hierarchy levels × 400 iterations) at ≈42 µs vs the paper's 44 µs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cim.macro import CIMChip
from repro.errors import HardwareModelError
from repro.hardware.tech import TechNode

#: MAC cycles per swap trial (2 energies before + 2 after the swap).
CYCLES_PER_TRIAL = 4


@dataclass(frozen=True)
class LatencyReport:
    """Time-to-solution breakdown in seconds."""

    read_time_s: float
    write_time_s: float
    read_cycles: int
    write_cycles: int

    @property
    def total_time_s(self) -> float:
        """Total annealing time."""
        return self.read_time_s + self.write_time_s

    @property
    def write_fraction(self) -> float:
        """Share of time spent writing (small, per Fig. 7c)."""
        total = self.total_time_s
        return self.write_time_s / total if total > 0 else 0.0


@dataclass(frozen=True)
class LatencyModel:
    """Turns chip counters into a :class:`LatencyReport`."""

    tech: TechNode = field(default_factory=TechNode)

    def write_cycles_per_event(self, chip: CIMChip) -> int:
        """Row-sequential refresh of one array (arrays in parallel)."""
        rows, _ = chip.array_bit_geometry()
        return rows

    def report(self, chip: CIMChip) -> LatencyReport:
        """Latency report from a chip's recorded counters."""
        read_cycles = chip.mac_cycles
        write_cycles = chip.writeback_events * self.write_cycles_per_event(chip)
        t = self.tech.cycle_time_s
        return LatencyReport(
            read_time_s=read_cycles * t,
            write_time_s=write_cycles * t,
            read_cycles=read_cycles,
            write_cycles=write_cycles,
        )

    def predict(
        self,
        chip: CIMChip,
        n_levels: int,
        iterations_per_level: int = 400,
        writebacks_per_level: int = 8,
    ) -> LatencyReport:
        """Closed-form prediction without running the annealer.

        Used by the large-scale PPA sweeps (Fig. 7c for pla85900) where
        simulating the full anneal in Python would be slow: cycles
        follow directly from the schedule since the per-iteration cost
        is size-independent.
        """
        if n_levels < 1 or iterations_per_level < 1 or writebacks_per_level < 0:
            raise HardwareModelError("schedule parameters must be positive")
        read_cycles = n_levels * iterations_per_level * 2 * CYCLES_PER_TRIAL
        write_cycles = (
            n_levels * writebacks_per_level * self.write_cycles_per_event(chip)
        )
        t = self.tech.cycle_time_s
        return LatencyReport(
            read_time_s=read_cycles * t,
            write_time_s=write_cycles * t,
            read_cycles=read_cycles,
            write_cycles=write_cycles,
        )
