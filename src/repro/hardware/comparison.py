"""Table III: comparison with state-of-the-art scalable annealers.

The published metrics of the five comparison chips are embedded as a
dataset (they are literature values, not something we can re-measure);
the "This design" column is produced by our own PPA models.  The
*functional normalisation* argument of Sec. VI is implemented here:

* Max-Cut machines need #spins = #nodes, whereas Ising TSP needs
  N² spins and N⁴ weights before the clustering/CIM optimisations;
* the proposed design realises the functionality of
  ``N⁴`` weights (4×10²⁰ bits for pla85900) with only 46.4 Mb physical
  — so area/power *per functionally-equivalent weight bit* improves by
  >10¹³× over the best physical-per-bit numbers in the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import HardwareModelError


@dataclass(frozen=True)
class AnnealerChip:
    """Published metrics of one comparison chip (Table III)."""

    name: str
    technology: str
    problem: str
    n_spins: float
    weight_memory_bits: float
    chip_area_mm2: float
    chip_power_w: Optional[float]  # None where the paper lists NA

    @property
    def area_per_weight_bit_um2(self) -> float:
        """Physical µm² per weight bit."""
        return self.chip_area_mm2 * 1e6 / self.weight_memory_bits

    @property
    def power_per_weight_bit_w(self) -> Optional[float]:
        """Physical W per weight bit (None when power is NA)."""
        if self.chip_power_w is None:
            return None
        return self.chip_power_w / self.weight_memory_bits


#: The five published rows of Table III.
SOTA_ANNEALERS = (
    AnnealerChip(
        name="STATICA [18]",
        technology="65nm CMOS",
        problem="Max-Cut",
        n_spins=512,
        weight_memory_bits=1.31e6,
        chip_area_mm2=12.0,
        chip_power_w=0.649,
    ),
    AnnealerChip(
        name="CIM-Spin [22]",
        technology="65nm CMOS",
        problem="Max-Cut",
        n_spins=480,
        weight_memory_bits=17.28e3,
        chip_area_mm2=0.4,
        chip_power_w=360e-6,
    ),
    AnnealerChip(
        name="Takemoto [23]",
        technology="40nm CMOS",
        problem="Max-Cut",
        n_spins=16e3 * 9,
        weight_memory_bits=0.64e6,
        chip_area_mm2=10.8,
        chip_power_w=None,
    ),
    AnnealerChip(
        name="Yamaoka [27]",
        technology="65nm CMOS",
        problem="Max-Cut",
        n_spins=1024,
        weight_memory_bits=57e3,
        chip_area_mm2=0.34,
        chip_power_w=1.17e-3,
    ),
    AnnealerChip(
        name="Amorphica [25]",
        technology="40nm CMOS",
        problem="Max-Cut",
        n_spins=2e3,
        weight_memory_bits=8e6,
        chip_area_mm2=9.0,
        chip_power_w=0.313,
    ),
)


def functional_spins(n_cities: int) -> float:
    """Spins an unoptimised Ising TSP needs: N²."""
    if n_cities < 1:
        raise HardwareModelError(f"n_cities must be >= 1, got {n_cities}")
    return float(n_cities) ** 2


def functional_weight_bits(n_cities: int, weight_bits: int = 8) -> float:
    """Weight bits an unoptimised Ising TSP needs: N⁴ couplings.

    The paper quotes 4×10²⁰ b for pla85900: N⁴ couplings at 8-bit
    precision (85900⁴ · 8 ≈ 4.4×10²⁰).
    """
    return float(n_cities) ** 4 * weight_bits


def build_comparison_table(
    this_design: Dict[str, float], n_cities: int = 85900
) -> Dict[str, Dict[str, float]]:
    """Assemble the Table III rows including the proposed design.

    Parameters
    ----------
    this_design:
        Our PPA results: keys ``n_spins``, ``weight_memory_bits``,
        ``chip_area_mm2``, ``chip_power_w``.
    n_cities:
        Problem size for the functional normalisation (pla85900).

    Returns
    -------
    Mapping of row name to metrics, including physical and functionally
    normalised area/power per weight bit, and the improvement factors
    of "This design" over the best published physical numbers.
    """
    required = {"n_spins", "weight_memory_bits", "chip_area_mm2", "chip_power_w"}
    missing = required - set(this_design)
    if missing:
        raise HardwareModelError(f"this_design missing keys: {sorted(missing)}")

    rows: Dict[str, Dict[str, float]] = {}
    for chip in SOTA_ANNEALERS:
        rows[chip.name] = {
            "n_spins": chip.n_spins,
            "weight_memory_bits": chip.weight_memory_bits,
            "chip_area_mm2": chip.chip_area_mm2,
            "chip_power_w": chip.chip_power_w,
            "area_per_bit_um2": chip.area_per_weight_bit_um2,
            "power_per_bit_w": chip.power_per_weight_bit_w,
        }

    phys_bits = this_design["weight_memory_bits"]
    func_bits = functional_weight_bits(n_cities)
    area_um2 = this_design["chip_area_mm2"] * 1e6
    ours = {
        "n_spins": this_design["n_spins"],
        "functional_spins": functional_spins(n_cities),
        "weight_memory_bits": phys_bits,
        "functional_weight_bits": func_bits,
        "chip_area_mm2": this_design["chip_area_mm2"],
        "chip_power_w": this_design["chip_power_w"],
        "area_per_bit_um2": area_um2 / phys_bits,
        "power_per_bit_w": this_design["chip_power_w"] / phys_bits,
        "area_per_functional_bit_um2": area_um2 / func_bits,
        "power_per_functional_bit_w": this_design["chip_power_w"] / func_bits,
    }
    best_area = min(c.area_per_weight_bit_um2 for c in SOTA_ANNEALERS)
    best_power = min(
        c.power_per_weight_bit_w
        for c in SOTA_ANNEALERS
        if c.power_per_weight_bit_w is not None
    )
    ours["area_improvement_normalized"] = (
        best_area / ours["area_per_functional_bit_um2"]
    )
    ours["power_improvement_normalized"] = (
        best_power / ours["power_per_functional_bit_w"]
    )
    rows["This design"] = ours
    return rows
