"""Area model (Table II, Fig. 7b).

Array area decomposes into a bit-cell core plus peripheral rings:

    height = bit_rows · ROW_PITCH + H_PERIPHERY
    width  = bit_cols · COL_PITCH + W_PERIPHERY

The row pitch covers the 14T cell (6T SRAM above, NOR + two TGs below)
*and* the doubled horizontal routing tracks Sec. III-B argues for; the
column pitch covers one bit cell width plus the MUX drain rails.  The
peripheries cover word-line drivers / switch matrix (height) and the
adder trees, decoders and read/write control (width).

Calibration (16 nm): fitting the four constants to the paper's three
Table II design points gives

    ROW_PITCH = 1.30 µm, H_PERIPHERY =  5.0 µm
    COL_PITCH = 0.557 µm, W_PERIPHERY = 19.3 µm

which reproduces Table II within ±1.5 µm on every entry and lands the
pla85900 / p_max = 3 chip (4 295 arrays) at 43.8 mm² vs the published
43.7 mm².
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.cim.array import array_bit_geometry
from repro.cim.mapping import ClusterWindowMapping
from repro.errors import HardwareModelError
from repro.hardware.tech import TechNode

#: Calibrated 16 nm layout constants (µm) — see module docstring.
ROW_PITCH_UM = 1.30
COL_PITCH_UM = 0.557
H_PERIPHERY_UM = 5.0
W_PERIPHERY_UM = 19.3


@dataclass(frozen=True)
class AreaModel:
    """Array and chip area estimator."""

    tech: TechNode = field(default_factory=TechNode)
    weight_bits: int = 8

    def array_dimensions_um(self, p: int) -> Tuple[float, float]:
        """``(height, width)`` of one 5×2-window array in µm."""
        if p < 1:
            raise HardwareModelError(f"p must be >= 1, got {p}")
        rows, cols = array_bit_geometry(p, self.weight_bits)
        s = self.tech.linear_scale
        height = (rows * ROW_PITCH_UM + H_PERIPHERY_UM) * s
        width = (cols * COL_PITCH_UM + W_PERIPHERY_UM) * s
        return height, width

    def array_area_m2(self, p: int) -> float:
        """Area of one array in m²."""
        h, w = self.array_dimensions_um(p)
        return h * w * 1e-12

    def chip_area_m2(self, p: int, n_clusters: int) -> float:
        """Total chip area for ``n_clusters`` provisioned windows.

        Arrays are time-multiplexed across hierarchy levels (Sec. V),
        so the bottom level sets the array count.
        """
        mapping = ClusterWindowMapping(n_clusters, p)
        return mapping.n_arrays * self.array_area_m2(p)

    def area_per_weight_bit_um2(self, p: int, n_clusters: int) -> float:
        """Physical µm² per stored weight bit (Table III row)."""
        from repro.cim.macro import CIMChip

        chip = CIMChip(p=p, n_clusters=n_clusters, weight_bits=self.weight_bits)
        return self.chip_area_m2(p, n_clusters) * 1e12 / chip.capacity_bits
