"""Combined PPA evaluation (Fig. 7b-d, Table III inputs).

:func:`evaluate_ppa` joins the area, latency, and energy models into a
single :class:`PPAReport` for one (instance size, strategy) design
point — either from a *simulated* chip (counters recorded during an
actual anneal) or *predicted* from the schedule (large problems where
simulating every MAC in Python is unnecessary: the cycle counts follow
deterministically from the schedule).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log
from typing import Optional

from repro.cim.macro import CIMChip
from repro.errors import HardwareModelError
from repro.hardware.area import AreaModel
from repro.hardware.energy import EnergyModel, EnergyReport
from repro.hardware.latency import LatencyModel, LatencyReport
from repro.hardware.tech import TechNode


@dataclass(frozen=True)
class PPAReport:
    """One design point of Fig. 7b-d / Table III."""

    p: int
    n_cities: int
    n_clusters: int
    n_arrays: int
    n_levels: int
    capacity_bits: int
    chip_area_m2: float
    latency: LatencyReport
    energy: EnergyReport
    #: Power while the *bottom* (largest) hierarchy level runs — every
    #: provisioned window active.  This is the number a chip datasheet
    #: (and the paper's Table III "Chip Power") quotes.  The
    #: time-average over a whole anneal is lower because upper levels
    #: activate progressively fewer windows.
    peak_power_w: float = 0.0

    @property
    def chip_area_mm2(self) -> float:
        """Chip area in mm²."""
        return self.chip_area_m2 * 1e6

    @property
    def time_to_solution_s(self) -> float:
        """Total annealing time."""
        return self.latency.total_time_s

    @property
    def energy_to_solution_j(self) -> float:
        """Total dynamic energy."""
        return self.energy.total_energy_j

    @property
    def average_power_w(self) -> float:
        """Average chip power over the anneal."""
        return self.energy.average_power_w(self.latency)

    @property
    def n_spins(self) -> int:
        """Physical spins: p² per provisioned window."""
        return self.n_clusters * self.p * self.p


def estimate_levels(
    n_cities: int, mean_cluster_size: float, top_size: int = 8
) -> int:
    """Hierarchy depth: levels until ≤ ``top_size`` clusters remain."""
    if n_cities < 2:
        raise HardwareModelError(f"n_cities must be >= 2, got {n_cities}")
    if mean_cluster_size <= 1.0:
        raise HardwareModelError(
            f"mean_cluster_size must be > 1, got {mean_cluster_size}"
        )
    if n_cities <= top_size:
        return 1
    return max(1, ceil(log(n_cities / top_size) / log(mean_cluster_size)))


def evaluate_ppa(
    n_cities: int,
    p: int,
    n_clusters: int,
    tech: Optional[TechNode] = None,
    chip: Optional[CIMChip] = None,
    n_levels: Optional[int] = None,
    iterations_per_level: int = 400,
    writebacks_per_level: int = 8,
    mean_cluster_size: Optional[float] = None,
) -> PPAReport:
    """Evaluate one design point.

    When ``chip`` carries recorded counters (a real simulated anneal),
    latency/energy come from those; otherwise they are predicted from
    the schedule.  ``n_levels`` defaults to the hierarchy-depth
    estimate for the strategy's mean cluster size.
    """
    tech = tech or TechNode()
    area_model = AreaModel(tech=tech)
    latency_model = LatencyModel(tech=tech)
    energy_model = EnergyModel(tech=tech)

    measured = chip is not None and chip.mac_cycles > 0
    if chip is None:
        chip = CIMChip(p=p, n_clusters=n_clusters)
    if n_levels is None:
        mean = mean_cluster_size or (1 + p) / 2.0
        n_levels = estimate_levels(n_cities, mean)

    if measured:
        latency = latency_model.report(chip)
        energy = energy_model.report(chip)
    else:
        latency = latency_model.predict(
            chip,
            n_levels=n_levels,
            iterations_per_level=iterations_per_level,
            writebacks_per_level=writebacks_per_level,
        )
        energy = energy_model.predict(
            chip, n_levels=n_levels, iterations_per_level=iterations_per_level
        )

    # Datasheet-style peak power: one full bottom level, every
    # provisioned window active (matches the paper's Table III row).
    peak_latency = latency_model.predict(
        chip, n_levels=1, iterations_per_level=iterations_per_level,
        writebacks_per_level=writebacks_per_level,
    )
    peak_energy = energy_model.predict(
        chip, n_levels=1, iterations_per_level=iterations_per_level
    )
    peak_power = peak_energy.average_power_w(peak_latency)

    return PPAReport(
        p=p,
        n_cities=n_cities,
        n_clusters=n_clusters,
        n_arrays=chip.n_arrays,
        n_levels=n_levels,
        capacity_bits=chip.capacity_bits,
        chip_area_m2=area_model.chip_area_m2(p, n_clusters),
        latency=latency,
        energy=energy,
        peak_power_w=peak_power,
    )
