"""Technology-node parameters.

The paper evaluates at 16/14 nm FinFET with macro models "modified from
NeuroSim".  We express every physical constant at the 16 nm reference
and provide first-order scaling to other nodes so the models stay
usable for what-if studies:

* linear dimensions scale with ``node / 16``;
* dynamic energy scales with ``(node/16) · (vdd/0.8)²`` (capacitance ×
  voltage-squared);
* clock period scales with ``node / 16`` (gate-delay dominated).

The 16 nm reference constants are *calibrated*, not derived: they are
fitted so the model lands on the paper's published design points
(Table II array areas, 43.7 mm² chip, 433 mW, ~44 µs on rl5934).  The
calibration is documented next to each constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareModelError

#: Reference node of all calibrated constants (nm).
REFERENCE_NODE_NM = 16.0
#: Nominal supply at the reference node (V).
REFERENCE_VDD_V = 0.8


@dataclass(frozen=True)
class TechNode:
    """A technology node with scaling helpers.

    Attributes
    ----------
    node_nm:
        Feature size in nanometres (16 = the paper's node).
    vdd_v:
        Nominal supply voltage.
    f_clk_hz:
        Macro clock frequency.  The default 900 MHz reproduces the
        paper's ~44 µs annealing time for rl5934 at p_max = 3 given the
        cycle counts of the update schedule.
    """

    node_nm: float = 16.0
    vdd_v: float = 0.8
    f_clk_hz: float = 900e6

    def __post_init__(self) -> None:
        if self.node_nm <= 0:
            raise HardwareModelError(f"node_nm must be > 0, got {self.node_nm}")
        if self.vdd_v <= 0:
            raise HardwareModelError(f"vdd_v must be > 0, got {self.vdd_v}")
        if self.f_clk_hz <= 0:
            raise HardwareModelError(f"f_clk_hz must be > 0, got {self.f_clk_hz}")

    @property
    def linear_scale(self) -> float:
        """Length multiplier vs the 16 nm reference."""
        return self.node_nm / REFERENCE_NODE_NM

    @property
    def area_scale(self) -> float:
        """Area multiplier vs the 16 nm reference."""
        return self.linear_scale**2

    @property
    def energy_scale(self) -> float:
        """Dynamic-energy multiplier vs the 16 nm reference."""
        return self.linear_scale * (self.vdd_v / REFERENCE_VDD_V) ** 2

    @property
    def cycle_time_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.f_clk_hz
