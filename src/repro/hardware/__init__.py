"""Hardware PPA (power / performance / area) models.

NeuroSim-style analytical macro models for the 16 nm FinFET digital
CIM annealer, calibrated against the paper's published design points:

* **Area** (:mod:`repro.hardware.area`) — per-array geometry fitted to
  Table II (57×55 / 102×98 / 161×162 µm² for p_max = 2/3/4) and chip
  area anchored at 43.7 mm² for pla85900;
* **Latency** (:mod:`repro.hardware.latency`) — cycle-accurate counts
  from the CIM chip counters at the macro clock, anchored at the
  paper's ~44 µs rl5934 annealing time;
* **Energy** (:mod:`repro.hardware.energy`) — per-event energies
  (window MAC, weight-bit write, seam-bit transfer) anchored at the
  433 mW chip power of Table III;
* **Comparison** (:mod:`repro.hardware.comparison`) — the Table III
  SOTA dataset and the functional-normalisation arithmetic.
"""

from repro.hardware.area import AreaModel
from repro.hardware.comparison import SOTA_ANNEALERS, build_comparison_table
from repro.hardware.energy import EnergyModel, EnergyReport
from repro.hardware.latency import LatencyModel, LatencyReport
from repro.hardware.ppa import PPAReport, evaluate_ppa
from repro.hardware.tech import TechNode

__all__ = [
    "TechNode",
    "AreaModel",
    "LatencyModel",
    "LatencyReport",
    "EnergyModel",
    "EnergyReport",
    "PPAReport",
    "evaluate_ppa",
    "SOTA_ANNEALERS",
    "build_comparison_table",
]
