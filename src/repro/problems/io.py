"""Workload I/O: the QUBO interchange format and published-file readers.

Three ways a problem enters the subsystem from disk:

* **JSON interchange** (``repro.qubo/v1``) — the strict, versioned
  round-trip format used by ``repro problems convert`` and the tests.
  Decoding follows the gateway codec's posture: unknown keys are
  rejected, every field is type-checked, and malformed documents raise
  :class:`~repro.errors.ReproError` with the offending field named.
* **``.qubo`` / BQP text** — the two de-facto standards for published
  QUBO instances: the qbsolv header format (``p qubo 0 maxNodes
  nNodes nCouplers`` then 0-indexed ``i j value`` lines) and the
  OR-Library/Beasley format (``n m`` then 1-indexed triples).
  :func:`load_qubo_file` sniffs which one it is reading.
* **rudy / ``.mc`` edge lists** — the standard Max-Cut exchange format
  (``n m`` header then 1-indexed ``u v w`` edges).  :func:`load_rudy`
  returns a :class:`~repro.maxcut.problem.MaxCutProblem` so published
  G-set-style instances load without hand-written converters.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple, Union

from repro.errors import ReproError
from repro.maxcut.problem import MaxCutProblem
from repro.problems.qubo import QUBOProblem

QUBO_SCHEMA = "repro.qubo/v1"

_QUBO_DOC_FIELDS = frozenset({"schema", "name", "n_vars", "offset", "terms"})


# ----------------------------------------------------------------------
# JSON interchange (repro.qubo/v1)
# ----------------------------------------------------------------------
def qubo_to_dict(problem: QUBOProblem) -> Dict[str, Any]:
    """Encode as a ``repro.qubo/v1`` document (COO terms, upper triangle)."""
    terms: List[List[Union[int, float]]] = []
    for i in range(problem.n_vars):
        row = problem.q[i]
        for j in range(i, problem.n_vars):
            if row[j] != 0.0:
                terms.append([int(i), int(j), float(row[j])])
    return {
        "schema": QUBO_SCHEMA,
        "name": problem.name,
        "n_vars": int(problem.n_vars),
        "offset": float(problem.offset),
        "terms": terms,
    }


def qubo_from_dict(doc: Any) -> QUBOProblem:
    """Decode a ``repro.qubo/v1`` document (strict: unknown keys rejected)."""
    if not isinstance(doc, dict):
        raise ReproError(f"qubo document must be a mapping, got {type(doc).__name__}")
    unknown = sorted(set(doc) - _QUBO_DOC_FIELDS)
    if unknown:
        raise ReproError(f"qubo document has unknown fields: {unknown}")
    schema = doc.get("schema")
    if schema != QUBO_SCHEMA:
        raise ReproError(f"expected schema {QUBO_SCHEMA!r}, got {schema!r}")
    name = doc.get("name", "qubo")
    if not isinstance(name, str):
        raise ReproError("qubo field 'name' must be a string")
    n_vars = doc.get("n_vars")
    if not isinstance(n_vars, int) or isinstance(n_vars, bool):
        raise ReproError("qubo field 'n_vars' must be an integer")
    offset = doc.get("offset", 0.0)
    if isinstance(offset, bool) or not isinstance(offset, (int, float)):
        raise ReproError("qubo field 'offset' must be a number")
    raw_terms = doc.get("terms")
    if not isinstance(raw_terms, list):
        raise ReproError("qubo field 'terms' must be a list")
    terms: List[Tuple[int, int, float]] = []
    for k, item in enumerate(raw_terms):
        if not isinstance(item, (list, tuple)) or len(item) != 3:
            raise ReproError(f"terms[{k}] must be an (i, j, value) triple")
        i, j, value = item
        if any(isinstance(v, bool) for v in (i, j)) or not (
            isinstance(i, int) and isinstance(j, int)
        ):
            raise ReproError(f"terms[{k}] indices must be integers")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ReproError(f"terms[{k}] value must be a number")
        terms.append((i, j, float(value)))
    return QUBOProblem.from_terms(
        n_vars, terms, offset=float(offset), name=name
    )


def save_qubo(problem: QUBOProblem, path: Union[str, Path]) -> None:
    """Write the JSON interchange form to ``path``."""
    Path(path).write_text(
        json.dumps(qubo_to_dict(problem), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_qubo(path: Union[str, Path]) -> QUBOProblem:
    """Load a QUBO from disk, sniffing JSON vs ``.qubo``/BQP text."""
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"invalid JSON in {path}: {exc}") from exc
        return qubo_from_dict(doc)
    return _parse_qubo_text(text, source=str(path))


# ----------------------------------------------------------------------
# .qubo / BQP text formats
# ----------------------------------------------------------------------
def load_qubo_file(path: Union[str, Path]) -> QUBOProblem:
    """Load a ``.qubo`` (qbsolv) or BQP (OR-Library) text file."""
    return _parse_qubo_text(
        Path(path).read_text(encoding="utf-8"), source=str(path)
    )


def _parse_qubo_text(text: str, source: str = "<string>") -> QUBOProblem:
    lines = [
        ln.strip()
        for ln in text.splitlines()
        if ln.strip() and not ln.lstrip().startswith("c")
    ]
    if not lines:
        raise ReproError(f"{source}: no parseable lines")
    if lines[0].startswith("p"):
        return _parse_qbsolv(lines, source)
    return _parse_beasley(lines, source)


def _parse_qbsolv(lines: List[str], source: str) -> QUBOProblem:
    """qbsolv header: ``p qubo 0 maxNodes nNodes nCouplers``, 0-indexed."""
    header = lines[0].split()
    if len(header) != 6 or header[:2] != ["p", "qubo"]:
        raise ReproError(f"{source}: malformed qbsolv header {lines[0]!r}")
    try:
        max_nodes = int(header[3])
        n_nodes = int(header[4])
        n_couplers = int(header[5])
    except ValueError as exc:
        raise ReproError(f"{source}: non-integer qbsolv header field") from exc
    n_vars = max(max_nodes, 1)
    terms: List[Tuple[int, int, float]] = []
    n_diag = 0
    for ln in lines[1:]:
        parts = ln.split()
        if len(parts) != 3:
            raise ReproError(f"{source}: expected 'i j value', got {ln!r}")
        try:
            i, j, value = int(parts[0]), int(parts[1]), float(parts[2])
        except ValueError as exc:
            raise ReproError(f"{source}: malformed entry {ln!r}") from exc
        if i == j:
            n_diag += 1
        terms.append((i, j, value))
    n_off = len(terms) - n_diag
    if n_diag != n_nodes or n_off != n_couplers:
        raise ReproError(
            f"{source}: header promises {n_nodes} nodes / {n_couplers} "
            f"couplers, file has {n_diag} / {n_off}"
        )
    return QUBOProblem.from_terms(n_vars, terms, name=Path(source).stem)


def _parse_beasley(lines: List[str], source: str) -> QUBOProblem:
    """OR-Library BQP: ``n m`` then 1-indexed ``i j value`` triples."""
    header = lines[0].split()
    if len(header) != 2:
        raise ReproError(
            f"{source}: expected 'n m' header, got {lines[0]!r}"
        )
    try:
        n_vars, n_entries = int(header[0]), int(header[1])
    except ValueError as exc:
        raise ReproError(f"{source}: non-integer BQP header") from exc
    body = lines[1:]
    if len(body) != n_entries:
        raise ReproError(
            f"{source}: header promises {n_entries} entries, file has "
            f"{len(body)}"
        )
    terms: List[Tuple[int, int, float]] = []
    for ln in body:
        parts = ln.split()
        if len(parts) != 3:
            raise ReproError(f"{source}: expected 'i j value', got {ln!r}")
        try:
            i, j, value = int(parts[0]), int(parts[1]), float(parts[2])
        except ValueError as exc:
            raise ReproError(f"{source}: malformed entry {ln!r}") from exc
        if i < 1 or j < 1:
            raise ReproError(
                f"{source}: BQP indices are 1-based, got ({i}, {j})"
            )
        terms.append((i - 1, j - 1, value))
    return QUBOProblem.from_terms(n_vars, terms, name=Path(source).stem)


# ----------------------------------------------------------------------
# rudy / .mc Max-Cut edge lists
# ----------------------------------------------------------------------
def load_rudy(path: Union[str, Path]) -> MaxCutProblem:
    """Load a rudy/``.mc`` edge list as a :class:`MaxCutProblem`.

    Format: optional ``c``-comment lines, an ``n m`` header, then ``m``
    lines of 1-indexed ``u v weight`` edges (G-set style).
    """
    source = str(path)
    lines = [
        ln.strip()
        for ln in Path(path).read_text(encoding="utf-8").splitlines()
        if ln.strip() and not ln.lstrip().startswith(("c", "#"))
    ]
    if not lines:
        raise ReproError(f"{source}: no parseable lines")
    header = lines[0].split()
    if len(header) != 2:
        raise ReproError(
            f"{source}: expected 'n_nodes n_edges' header, got {lines[0]!r}"
        )
    try:
        n_nodes, n_edges = int(header[0]), int(header[1])
    except ValueError as exc:
        raise ReproError(f"{source}: non-integer rudy header") from exc
    body = lines[1:]
    if len(body) != n_edges:
        raise ReproError(
            f"{source}: header promises {n_edges} edges, file has {len(body)}"
        )
    edges: List[Tuple[int, int]] = []
    weights: List[float] = []
    for ln in body:
        parts = ln.split()
        if len(parts) not in (2, 3):
            raise ReproError(f"{source}: expected 'u v [w]', got {ln!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
            w = float(parts[2]) if len(parts) == 3 else 1.0
        except ValueError as exc:
            raise ReproError(f"{source}: malformed edge {ln!r}") from exc
        if u < 1 or v < 1:
            raise ReproError(
                f"{source}: rudy nodes are 1-based, got ({u}, {v})"
            )
        edges.append((u - 1, v - 1))
        weights.append(w)
    return MaxCutProblem(
        n_nodes, edges, weights=weights, name=Path(source).stem
    )
