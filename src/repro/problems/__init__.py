"""Unified QUBO workload subsystem.

Every problem family here reduces to a :class:`QUBOProblem`, which all
registered solver backends accept as a ``qubo``-kind plan — so each new
family is immediately traffic the ensemble runtime, the service, and
the HTTP gateway can serve.  The subsystem has four layers:

* :mod:`repro.problems.qubo` — the container and the QUBO ↔ Ising
  bridge;
* :mod:`repro.problems.io` — the ``repro.qubo/v1`` JSON interchange
  plus readers for published ``.qubo``/BQP and rudy/``.mc`` files;
* the family reductions (:mod:`~repro.problems.coloring`,
  :mod:`~repro.problems.knapsack`, :mod:`~repro.problems.maxsat`),
  each with ``to_qubo`` / ``decode`` / ``encode`` / feasibility
  checks and a deterministic reference baseline;
* :mod:`repro.problems.opcount` + :mod:`repro.problems.solvers` — the
  op-counting instrumentation and the instrumented kernels behind the
  Table-I style ``BENCH_workloads.json`` comparisons.

:data:`FAMILIES` maps family names to seeded generators so the CLI and
the CI smoke tests can mint an instance of any family from
``(size, seed)`` alone.  See ``docs/problems.md`` for the reduction
math and the how-to-add-a-family walkthrough.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Union

from repro.errors import ReproError
from repro.problems.coloring import (
    GraphColoringProblem,
    random_coloring_problem,
)
from repro.problems.io import (
    QUBO_SCHEMA,
    load_qubo,
    load_qubo_file,
    load_rudy,
    qubo_from_dict,
    qubo_to_dict,
    save_qubo,
)
from repro.problems.knapsack import KnapsackProblem, random_knapsack_problem
from repro.problems.maxsat import MaxSATProblem, random_maxsat_problem
from repro.problems.opcount import HISTORY_SCHEMA, History, OpCounter
from repro.problems.qubo import QUBOProblem
from repro.problems.solvers import (
    QUBOAnnealOutcome,
    anneal_qubo_chromatic,
    anneal_qubo_sequential,
    greedy_qubo_descent,
    relax_qubo_simcim,
)

FamilyProblem = Union[GraphColoringProblem, KnapsackProblem, MaxSATProblem]


def _make_coloring(size: int, seed: int) -> GraphColoringProblem:
    return random_coloring_problem(max(size, 4), n_colors=3, seed=seed)


def _make_knapsack(size: int, seed: int) -> KnapsackProblem:
    return random_knapsack_problem(max(size, 3), seed=seed)


def _make_maxsat(size: int, seed: int) -> MaxSATProblem:
    n_vars = max(size, 4)
    return random_maxsat_problem(n_vars, n_clauses=3 * n_vars, seed=seed)


#: Family name → seeded generator of a representative random instance.
FAMILIES: Dict[str, Callable[[int, int], FamilyProblem]] = {
    "coloring": _make_coloring,
    "knapsack": _make_knapsack,
    "maxsat": _make_maxsat,
}


def list_families() -> Tuple[str, ...]:
    """Registered family names, sorted."""
    return tuple(sorted(FAMILIES))


def make_problem(family: str, size: int, seed: int) -> FamilyProblem:
    """Mint a seeded random instance of ``family`` (CLI / smoke tests)."""
    try:
        factory = FAMILIES[family]
    except KeyError:
        raise ReproError(
            f"unknown problem family {family!r}; "
            f"known: {', '.join(list_families())}"
        ) from None
    return factory(int(size), int(seed))


__all__: List[str] = [
    "FAMILIES",
    "FamilyProblem",
    "GraphColoringProblem",
    "HISTORY_SCHEMA",
    "History",
    "KnapsackProblem",
    "MaxSATProblem",
    "OpCounter",
    "QUBOAnnealOutcome",
    "QUBOProblem",
    "QUBO_SCHEMA",
    "anneal_qubo_chromatic",
    "anneal_qubo_sequential",
    "greedy_qubo_descent",
    "list_families",
    "load_qubo",
    "load_qubo_file",
    "load_rudy",
    "make_problem",
    "qubo_from_dict",
    "qubo_to_dict",
    "random_coloring_problem",
    "random_knapsack_problem",
    "random_maxsat_problem",
    "relax_qubo_simcim",
    "save_qubo",
]
