"""Operation-count instrumentation for algorithmic-cost comparisons.

The paper's Table I compares solvers by *operation counts* — MACs,
spin updates, random draws — not wall-clock, because wall-clock mixes
the algorithm with the host.  This module supplies the recording
half of that methodology (the ``IAlgorithm``/history pattern of the
QUBO-benchmark line of work): solver kernels call the named counting
methods of an :class:`OpCounter` as they execute, and snapshot the
cumulative counts into a :class:`History` every ``record_every``
steps together with the current energy, so convergence can be plotted
against *algorithmic* cost for every backend and problem family
(``benchmarks/test_ext_workloads.py`` writes exactly that into
``BENCH_workloads.json``).

Both types are plain JSON-native data (picklable, RL003-safe), so a
:class:`~repro.backends.base.BackendRunResult` can carry its history
across the worker-pool boundary and the ensemble telemetry can embed
the totals in every ``repro.run_telemetry/v1`` frame.
"""

from __future__ import annotations

from typing import Any, Dict, List

HISTORY_SCHEMA = "repro.op_history/v1"


class OpCounter:
    """Named cumulative counters for one solver run.

    * ``spin_flips`` — state bits/spins that actually changed value;
    * ``macs`` — multiply-accumulate operations (local-field and
      energy-difference evaluations; the CIM array's unit of work);
    * ``rng_draws`` — random numbers consumed (the annealing noise
      budget; the paper generates these from SRAM process variation).

    Instrumentation-side energy evaluations (the snapshot taken when a
    history record is written) are *not* counted — they are part of the
    measurement, not the algorithm.
    """

    __slots__ = ("spin_flips", "macs", "rng_draws")

    def __init__(self) -> None:
        self.spin_flips = 0
        self.macs = 0
        self.rng_draws = 0

    def spin_flip(self, count: int = 1) -> None:
        """Record ``count`` state bits changing value."""
        self.spin_flips += int(count)

    def mac(self, count: int = 1) -> None:
        """Record ``count`` multiply-accumulate operations."""
        self.macs += int(count)

    def rng_draw(self, count: int = 1) -> None:
        """Record ``count`` random numbers consumed."""
        self.rng_draws += int(count)

    def totals(self) -> Dict[str, int]:
        """JSON-native snapshot of the cumulative counts."""
        return {
            "spin_flips": int(self.spin_flips),
            "macs": int(self.macs),
            "rng_draws": int(self.rng_draws),
        }

    def __repr__(self) -> str:
        return (
            f"OpCounter(spin_flips={self.spin_flips}, macs={self.macs}, "
            f"rng_draws={self.rng_draws})"
        )


class History:
    """Per-step convergence records of one op-counted solve.

    Each record is ``{"step", "energy", "spin_flips", "macs",
    "rng_draws"}`` — the energy at that step next to the cumulative
    operation counts spent to reach it.
    """

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def record(self, step: int, energy: float, ops: OpCounter) -> None:
        """Snapshot the cumulative counts at ``step``."""
        self.records.append(
            {"step": int(step), "energy": float(energy), **ops.totals()}
        )

    @property
    def n_records(self) -> int:
        """Number of snapshots taken."""
        return len(self.records)

    def final_totals(self) -> Dict[str, int]:
        """Cumulative op counts of the last snapshot (zeros when empty)."""
        if not self.records:
            return {"spin_flips": 0, "macs": 0, "rng_draws": 0}
        last = self.records[-1]
        return {
            "spin_flips": int(last["spin_flips"]),
            "macs": int(last["macs"]),
            "rng_draws": int(last["rng_draws"]),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native view (schema-tagged, for bench artifacts)."""
        return {
            "schema": HISTORY_SCHEMA,
            "totals": self.final_totals(),
            "records": [dict(r) for r in self.records],
        }

    def __repr__(self) -> str:
        return f"History(n_records={self.n_records})"
