"""0/1 knapsack → QUBO reduction (Lucas 2014, §5.2).

Maximize ``Σ vᵢ xᵢ`` subject to ``Σ wᵢ xᵢ ≤ W``.  The inequality is
turned into an equality with a binary-encoded slack ``S = Σ_k c_k y_k``
that can represent any residual capacity in ``[0, W]``:

    H = A (Σᵢ wᵢ xᵢ + Σ_k c_k y_k − W)²  −  B Σᵢ vᵢ xᵢ

with slack coefficients ``c_k = 2^k`` for ``k < m`` and a final partial
coefficient ``c_m = W + 1 − 2^m`` (``m = ⌊log₂ W⌋``), the standard
bounded-integer encoding.  Violating the capacity by even one unit
costs at least ``A`` while the best possible value gain is
``B · max(v)``, so ``A = B · max(v) + 1`` makes every optimum of ``H``
feasible; see ``docs/problems.md``.  At a feasible optimum the penalty
term is 0 and ``H = −B · value + offset`` tracks the (negated) value.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.problems.qubo import QUBOProblem
from repro.utils.rng import SeedLike, spawn_rng


def _slack_coefficients(capacity: int) -> List[int]:
    """Binary coefficients spanning exactly ``[0, capacity]``."""
    if capacity <= 0:
        return []
    coeffs: List[int] = []
    total = 0
    while total + (1 << len(coeffs)) <= capacity:
        coeffs.append(1 << len(coeffs))
        total += coeffs[-1]
    if total < capacity:
        coeffs.append(capacity - total)
    return coeffs


class KnapsackProblem:
    """A 0/1 knapsack instance with integer weights and capacity.

    Parameters
    ----------
    values:
        Per-item values (positive).
    weights:
        Per-item integer weights (positive).
    capacity:
        Integer capacity ``W >= 1``.
    name:
        Display name.
    """

    family = "knapsack"

    def __init__(
        self,
        values: Sequence[float],
        weights: Sequence[int],
        capacity: int,
        name: str = "knapsack",
    ) -> None:
        vals = np.asarray(values, dtype=np.float64)
        wts = np.asarray(weights, dtype=np.int64)
        if vals.ndim != 1 or vals.size < 1:
            raise ReproError("values must be a non-empty 1-d sequence")
        if wts.shape != vals.shape:
            raise ReproError("weights must match values in length")
        if not np.all(vals > 0):
            raise ReproError("values must be positive")
        if not np.all(wts > 0):
            raise ReproError("weights must be positive integers")
        if capacity < 1:
            raise ReproError(f"capacity must be >= 1, got {capacity}")
        self.values = vals
        self.weights = wts
        self.capacity = int(capacity)
        self.name = str(name)
        self.slack_coeffs = _slack_coefficients(self.capacity)

    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        """Number of selectable items."""
        return int(self.values.size)

    @property
    def n_qubo_vars(self) -> int:
        """Item bits plus binary slack bits."""
        return self.n_items + len(self.slack_coeffs)

    def to_qubo(self, value_weight: float = 1.0) -> QUBOProblem:
        """Compile to a :class:`QUBOProblem` (``A = B·max(v) + 1``)."""
        if value_weight <= 0:
            raise ReproError(
                f"value_weight must be > 0, got {value_weight}"
            )
        b = float(value_weight)
        a = b * float(self.values.max()) + 1.0
        w = self.capacity
        # Combined coefficient vector over (items, slack bits).
        coeff = np.concatenate(
            [self.weights.astype(np.float64), np.asarray(self.slack_coeffs, dtype=np.float64)]
        )
        n = coeff.size
        terms: List[Tuple[int, int, float]] = []
        # A(Σ a_l z_l - W)² = A Σ (a_l² - 2W a_l) z_l
        #                   + 2A Σ_{l<l'} a_l a_l' z_l z_l' + A W².
        for l in range(n):
            terms.append((l, l, a * (coeff[l] ** 2 - 2.0 * w * coeff[l])))
            for l2 in range(l + 1, n):
                terms.append((l, l2, 2.0 * a * coeff[l] * coeff[l2]))
        for i in range(self.n_items):
            terms.append((i, i, -b * float(self.values[i])))
        return QUBOProblem.from_terms(
            n,
            terms,
            offset=a * float(w) ** 2,
            name=f"{self.name}/qubo",
        )

    # ------------------------------------------------------------------
    def validate(self, selection: np.ndarray) -> np.ndarray:
        """Check a 0/1 item-selection vector."""
        sel = np.asarray(selection, dtype=np.int64)
        if sel.shape != (self.n_items,):
            raise ReproError(
                f"selection must have shape ({self.n_items},), "
                f"got {sel.shape}"
            )
        if not set(np.unique(sel).tolist()) <= {0, 1}:
            raise ReproError("selection values must be 0/1")
        return sel

    def decode(self, bits: np.ndarray) -> np.ndarray:
        """Bit vector → item selection, with deterministic repair.

        Slack bits are dropped; an over-capacity selection is repaired
        by removing the lowest value/weight items (index tie-break)
        until it fits.
        """
        x = np.asarray(bits, dtype=np.float64)
        if x.shape != (self.n_qubo_vars,):
            raise ReproError(
                f"bits must have shape ({self.n_qubo_vars},), got {x.shape}"
            )
        sel = (x[: self.n_items] > 0.5).astype(np.int64)
        load = int(self.weights @ sel)
        if load > self.capacity:
            ratio = self.values / self.weights
            chosen = sorted(
                np.nonzero(sel)[0].tolist(), key=lambda i: (ratio[i], -i)
            )
            for i in chosen:
                if load <= self.capacity:
                    break
                sel[i] = 0
                load -= int(self.weights[i])
        return sel

    def encode(self, selection: np.ndarray) -> np.ndarray:
        """Item selection → bit vector with the slack set to the residual.

        Raises for infeasible selections (the residual would be
        negative and unrepresentable).
        """
        sel = self.validate(selection)
        residual = self.capacity - int(self.weights @ sel)
        if residual < 0:
            raise ReproError(
                f"selection exceeds capacity by {-residual}; cannot encode"
            )
        bits = np.zeros(self.n_qubo_vars)
        bits[: self.n_items] = sel
        # Greedy fill, largest coefficient first — spans [0, capacity].
        order = sorted(
            range(len(self.slack_coeffs)),
            key=lambda k: -self.slack_coeffs[k],
        )
        for k in order:
            if self.slack_coeffs[k] <= residual:
                bits[self.n_items + k] = 1.0
                residual -= self.slack_coeffs[k]
        if residual != 0:
            raise ReproError(
                f"slack encoding failed with residual {residual}"
            )  # pragma: no cover - coefficients span [0, W] by construction
        return bits

    def total_weight(self, selection: np.ndarray) -> int:
        """Load of a selection."""
        return int(self.weights @ self.validate(selection))

    def is_feasible(self, selection: np.ndarray) -> bool:
        """True iff the selection fits the capacity."""
        return self.total_weight(selection) <= self.capacity

    def objective(self, selection: np.ndarray) -> float:
        """Maximised objective: total value of the selection."""
        return float(self.values @ self.validate(selection))

    def reference(self) -> np.ndarray:
        """Exact optimum by dynamic programming over the capacity."""
        n, w = self.n_items, self.capacity
        best = np.zeros((n + 1, w + 1))
        for i in range(1, n + 1):
            wi = int(self.weights[i - 1])
            vi = float(self.values[i - 1])
            best[i] = best[i - 1]
            if wi <= w:
                take = best[i - 1, : w - wi + 1] + vi
                best[i, wi:] = np.maximum(best[i - 1, wi:], take)
        sel = np.zeros(n, dtype=np.int64)
        remaining = w
        for i in range(n, 0, -1):
            if best[i, remaining] != best[i - 1, remaining]:
                sel[i - 1] = 1
                remaining -= int(self.weights[i - 1])
        return sel

    def __repr__(self) -> str:
        return (
            f"KnapsackProblem(name={self.name!r}, n_items={self.n_items}, "
            f"capacity={self.capacity})"
        )


def random_knapsack_problem(
    n_items: int,
    seed: SeedLike = None,
    name: str = "random-knapsack",
) -> KnapsackProblem:
    """A random instance with ~half the total weight as capacity.

    Integer weights in ``[1, 9]``, values in ``[1, 20]``, capacity
    ``max(1, ⌊Σw / 2⌋)``.  Deterministic for a given seed.
    """
    if n_items < 1:
        raise ReproError(f"n_items must be >= 1, got {n_items}")
    rng = spawn_rng(seed)
    weights = rng.integers(1, 10, size=n_items)
    values = rng.integers(1, 21, size=n_items).astype(np.float64)
    capacity = max(1, int(weights.sum()) // 2)
    return KnapsackProblem(values, weights, capacity, name=name)
