"""The QUBO problem container and the QUBO ↔ Ising bridge.

QUBO (quadratic unconstrained binary optimization) is the lingua
franca of annealer workloads: every problem family in this subsystem
(graph coloring, 0/1 knapsack, Max-SAT — see ``docs/problems.md``)
reduces to one, and every registered solver backend accepts the
compiled form.  The container stores the *upper-triangular* coefficient
matrix ``q`` with the linear terms on the diagonal, so the energy of a
bit vector ``x ∈ {0,1}ⁿ`` is

    E(x) = Σᵢ qᵢᵢ xᵢ + Σ_{i<j} qᵢⱼ xᵢ xⱼ + offset
         = xᵀ q x + offset            (xᵢ² = xᵢ for binary x)

:meth:`QUBOProblem.to_ising` maps onto the repo's
:class:`~repro.ising.model.IsingModel` with its *double-counted* pm1
convention (``H = -Σ_{i,j} Jᵢⱼ sᵢ sⱼ - Σᵢ hᵢ sᵢ``, every pair counted
twice) via ``x = (1 + s) / 2``, returning the constant shift so that
``E(x) = H(s) + ising_offset`` holds exactly — brute-forced in
``tests/problems/test_qubo.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.ising.model import IsingModel

#: Dense ``q`` refusal threshold, mirroring MaxCutProblem.adjacency().
MAX_DENSE_VARS = 4096


class QUBOProblem:
    """A QUBO instance over ``n_vars`` binary variables.

    Parameters
    ----------
    q:
        ``(n, n)`` coefficient matrix.  Any lower-triangle mass is
        folded onto the upper triangle (``q[i, j] + q[j, i]`` for
        ``i < j``); the diagonal holds the linear terms.
    offset:
        Constant added to every energy (reductions use it to carry the
        constant part of their penalty expansion).
    name:
        Display name.
    """

    def __init__(
        self,
        q: np.ndarray,
        offset: float = 0.0,
        name: str = "qubo",
    ) -> None:
        mat = np.asarray(q, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise ReproError(f"q must be square, got shape {mat.shape}")
        n = mat.shape[0]
        if n < 1:
            raise ReproError("QUBO needs at least one variable")
        if n > MAX_DENSE_VARS:
            raise ReproError(
                f"refusing dense QUBO for n={n} > {MAX_DENSE_VARS}"
            )
        if not np.all(np.isfinite(mat)):
            raise ReproError("q must be finite")
        # Canonical upper-triangular storage: fold the lower triangle up.
        upper = np.triu(mat) + np.tril(mat, k=-1).T
        self.n_vars = int(n)
        self.q = upper
        self.offset = float(offset)
        self.name = str(name)

    # ------------------------------------------------------------------
    @classmethod
    def from_terms(
        cls,
        n_vars: int,
        terms: Sequence[Tuple[int, int, float]],
        offset: float = 0.0,
        name: str = "qubo",
    ) -> "QUBOProblem":
        """Build from COO-sparse ``(i, j, value)`` terms.

        ``i == j`` terms are linear coefficients; duplicate and
        transposed pairs are merged by summation, so reductions can
        emit terms in whatever order their expansion produces them.
        """
        if n_vars < 1:
            raise ReproError(f"n_vars must be >= 1, got {n_vars}")
        if n_vars > MAX_DENSE_VARS:
            raise ReproError(
                f"refusing dense QUBO for n={n_vars} > {MAX_DENSE_VARS}"
            )
        mat = np.zeros((n_vars, n_vars))
        for i, j, value in terms:
            i, j = int(i), int(j)
            if not (0 <= i < n_vars and 0 <= j < n_vars):
                raise ReproError(
                    f"term ({i}, {j}) out of range for n_vars={n_vars}"
                )
            lo, hi = (i, j) if i <= j else (j, i)
            mat[lo, hi] += float(value)
        return cls(mat, offset=offset, name=name)

    @classmethod
    def from_dense(
        cls, q: np.ndarray, offset: float = 0.0, name: str = "qubo"
    ) -> "QUBOProblem":
        """Build from any dense square matrix (lower triangle folded up)."""
        return cls(q, offset=offset, name=name)

    # ------------------------------------------------------------------
    @property
    def n_terms(self) -> int:
        """Nonzero coefficients (linear + quadratic)."""
        return int(np.count_nonzero(self.q))

    def validate_state(self, bits: np.ndarray) -> np.ndarray:
        """Check a 0/1 bit vector against the problem size."""
        x = np.asarray(bits, dtype=np.float64)
        if x.shape != (self.n_vars,):
            raise ReproError(
                f"state must have shape ({self.n_vars},), got {x.shape}"
            )
        if not set(np.unique(x).tolist()) <= {0.0, 1.0}:
            raise ReproError("state values must be 0/1")
        return x

    def energy(self, bits: np.ndarray) -> float:
        """``xᵀ q x + offset`` (the minimised objective)."""
        x = self.validate_state(bits)
        return float(x @ self.q @ x) + self.offset

    def flip_delta(self, bits: np.ndarray, i: int) -> float:
        """Energy change of toggling bit ``i`` (O(n))."""
        x = self.validate_state(bits)
        if not 0 <= i < self.n_vars:
            raise ReproError(f"variable index {i} out of range")
        # Coefficient of x_i given the others: q_ii + Σ_{j≠i} q_(ij) x_j.
        coupled = float(self.q[i] @ x) + float(self.q[:, i] @ x)
        local = coupled - 2.0 * float(self.q[i, i]) * float(x[i])
        field = float(self.q[i, i]) + local
        return (1.0 - 2.0 * float(x[i])) * field

    # ------------------------------------------------------------------
    def to_ising(self) -> Tuple[IsingModel, float]:
        """Map onto a pm1 :class:`IsingModel` plus a constant shift.

        With ``x = (1 + s) / 2`` and the repo's double-counted energy
        ``H = -2 Σ_{i<j} Jᵢⱼ sᵢ sⱼ - Σᵢ hᵢ sᵢ``:

        * ``Jᵢⱼ = -qᵢⱼ / 8`` for ``i < j`` (stored symmetric),
        * ``hᵢ  = -(qᵢᵢ / 2 + Σ_{j≠i} q₍ᵢⱼ₎ / 4)``,
        * ``ising_offset = offset + Σᵢ qᵢᵢ / 2 + Σ_{i<j} qᵢⱼ / 4``,

        so ``energy(x) == model.energy(s) + ising_offset`` exactly.
        """
        upper = np.triu(self.q, k=1)
        diag = np.diag(self.q)
        coupling = -(upper + upper.T) / 8.0
        row_sums = (upper + upper.T).sum(axis=1)
        field = -(diag / 2.0 + row_sums / 4.0)
        ising_offset = (
            self.offset + float(diag.sum()) / 2.0 + float(upper.sum()) / 4.0
        )
        return IsingModel(coupling, field=field, convention="pm1"), ising_offset

    @classmethod
    def from_ising(
        cls,
        model: IsingModel,
        ising_offset: float = 0.0,
        name: str = "qubo",
    ) -> "QUBOProblem":
        """Inverse of :meth:`to_ising` (pm1 models only)."""
        if model.convention != "pm1":
            raise ReproError(
                "from_ising needs the pm1 convention, got "
                f"{model.convention!r}"
            )
        coupling = np.asarray(model.couplings)
        upper = np.triu(-8.0 * coupling, k=1)
        pair = upper + upper.T
        diag = -2.0 * np.asarray(model.field) - pair.sum(axis=1) / 2.0
        mat = upper + np.diag(diag)
        offset = (
            ising_offset - float(diag.sum()) / 2.0 - float(upper.sum()) / 4.0
        )
        return cls(mat, offset=offset, name=name)

    # ------------------------------------------------------------------
    @staticmethod
    def bits_to_spins(bits: np.ndarray) -> np.ndarray:
        """``{0,1} → {-1,+1}`` (``s = 2x - 1``)."""
        return 2.0 * np.asarray(bits, dtype=np.float64) - 1.0

    @staticmethod
    def spins_to_bits(spins: np.ndarray) -> np.ndarray:
        """``{-1,+1} → {0,1}`` (``x = (s + 1) / 2``)."""
        return (np.asarray(spins, dtype=np.float64) + 1.0) / 2.0

    def interaction_edges(self) -> List[Tuple[int, int]]:
        """``(i, j)`` pairs with a nonzero quadratic coefficient."""
        rows, cols = np.nonzero(np.triu(self.q, k=1))
        return [(int(i), int(j)) for i, j in zip(rows, cols)]

    def __repr__(self) -> str:
        return (
            f"QUBOProblem(name={self.name!r}, n_vars={self.n_vars}, "
            f"n_terms={self.n_terms})"
        )
