"""Weighted Max-SAT → QUBO reduction (quadratization by Rosenberg).

Clauses are DIMACS-style literal tuples (``+v`` / ``−v``, 1-indexed,
lengths 1–3) with positive weights; the QUBO minimises the total
weight of *unsatisfied* clauses.  A clause ``(l₁ … l_k, w)`` is
unsatisfied iff every literal is false, so its cost is

    w · Π u_i       with  u_i = 1 − z_i

where ``z_i = x_v`` for a positive literal and ``1 − x_v`` for a
negative one — each ``u_i`` is affine in the decision bits.  Lengths 1
and 2 expand directly into linear/quadratic terms.  A 3-clause's cubic
monomial ``w·u₁u₂u₃`` is quadratized with one auxiliary bit ``a`` per
clause via Rosenberg's penalty (Rosenberg 1975):

    w·a·u₃  +  M·(u₁u₂ − 2u₁a − 2u₂a + 3a),   M = 2w

The penalty is 0 exactly when ``a = u₁u₂`` and ≥ M otherwise; since
mis-setting ``a`` can save at most ``w`` from the objective term,
``M = 2w > w`` forces ``a = u₁u₂`` at every optimum, so the QUBO
minimum equals the minimum unsatisfied weight (brute-forced in
``tests/problems/test_maxsat.py``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.problems.qubo import QUBOProblem
from repro.utils.rng import SeedLike, spawn_rng

#: A clause: DIMACS-style literals plus a positive weight.
Clause = Tuple[Tuple[int, ...], float]


class MaxSATProblem:
    """A weighted Max-SAT instance with clauses of length 1–3.

    Parameters
    ----------
    n_vars:
        Number of boolean variables (literals are 1-indexed:
        ``+3``/``−3`` refer to variable index 2).
    clauses:
        ``(literals, weight)`` pairs; weights must be positive and a
        clause may not mention a variable twice.
    name:
        Display name.
    """

    family = "maxsat"

    def __init__(
        self,
        n_vars: int,
        clauses: Sequence[Clause],
        name: str = "maxsat",
    ) -> None:
        if n_vars < 1:
            raise ReproError(f"n_vars must be >= 1, got {n_vars}")
        clean: List[Clause] = []
        for k, (literals, weight) in enumerate(clauses):
            lits = tuple(int(lit) for lit in literals)
            if not 1 <= len(lits) <= 3:
                raise ReproError(
                    f"clause {k} must have 1-3 literals, got {len(lits)}"
                )
            variables = []
            for lit in lits:
                if lit == 0 or abs(lit) > n_vars:
                    raise ReproError(
                        f"clause {k} literal {lit} out of range "
                        f"for n_vars={n_vars}"
                    )
                variables.append(abs(lit))
            if len(set(variables)) != len(variables):
                raise ReproError(f"clause {k} mentions a variable twice")
            w = float(weight)
            if w <= 0:
                raise ReproError(f"clause {k} weight must be > 0, got {w}")
            clean.append((lits, w))
        if not clean:
            raise ReproError("at least one clause is required")
        self.n_vars = int(n_vars)
        self.clauses = clean
        self.name = str(name)

    # ------------------------------------------------------------------
    @property
    def n_clauses(self) -> int:
        """Number of clauses."""
        return len(self.clauses)

    @property
    def n_aux(self) -> int:
        """One Rosenberg auxiliary bit per 3-clause."""
        return sum(1 for lits, _ in self.clauses if len(lits) == 3)

    @property
    def n_qubo_vars(self) -> int:
        """Decision bits plus auxiliary bits."""
        return self.n_vars + self.n_aux

    @property
    def total_weight(self) -> float:
        """Sum of all clause weights."""
        return float(sum(w for _, w in self.clauses))

    @staticmethod
    def _unsat_factor(lit: int) -> Tuple[int, float, float]:
        """``u = c + d·x_v`` for literal ``lit`` (variable, c, d)."""
        v = abs(lit) - 1
        # Positive literal: u = 1 - x_v.  Negative: u = x_v.
        return (v, 1.0, -1.0) if lit > 0 else (v, 0.0, 1.0)

    def to_qubo(self) -> QUBOProblem:
        """Compile to a :class:`QUBOProblem` minimising unsat weight."""
        terms: List[Tuple[int, int, float]] = []
        offset = 0.0

        def add_product(
            f1: Tuple[int, float, float],
            f2: Tuple[int, float, float],
            scale: float,
        ) -> None:
            """Accumulate ``scale·(c₁+d₁x₁)(c₂+d₂x₂)`` into the terms."""
            nonlocal offset
            v1, c1, d1 = f1
            v2, c2, d2 = f2
            offset += scale * c1 * c2
            if scale * c1 * d2:
                terms.append((v2, v2, scale * c1 * d2))
            if scale * c2 * d1:
                terms.append((v1, v1, scale * c2 * d1))
            if scale * d1 * d2:
                terms.append((v1, v2, scale * d1 * d2))

        aux = self.n_vars
        for lits, w in self.clauses:
            factors = [self._unsat_factor(lit) for lit in lits]
            if len(factors) == 1:
                v, c, d = factors[0]
                offset += w * c
                if w * d:
                    terms.append((v, v, w * d))
            elif len(factors) == 2:
                add_product(factors[0], factors[1], w)
            else:
                f1, f2, f3 = factors
                a = (aux, 0.0, 1.0)
                aux += 1
                m = 2.0 * w
                # w·a·u₃ + M·(u₁u₂ − 2u₁a − 2u₂a + 3a)
                add_product(a, f3, w)
                add_product(f1, f2, m)
                add_product(f1, a, -2.0 * m)
                add_product(f2, a, -2.0 * m)
                terms.append((aux - 1, aux - 1, 3.0 * m))
        return QUBOProblem.from_terms(
            self.n_qubo_vars,
            terms,
            offset=offset,
            name=f"{self.name}/qubo",
        )

    # ------------------------------------------------------------------
    def validate(self, assignment: np.ndarray) -> np.ndarray:
        """Check a 0/1 truth assignment over the decision variables."""
        x = np.asarray(assignment, dtype=np.int64)
        if x.shape != (self.n_vars,):
            raise ReproError(
                f"assignment must have shape ({self.n_vars},), got {x.shape}"
            )
        if not set(np.unique(x).tolist()) <= {0, 1}:
            raise ReproError("assignment values must be 0/1")
        return x

    def decode(self, bits: np.ndarray) -> np.ndarray:
        """Bit vector → truth assignment (auxiliary bits dropped)."""
        x = np.asarray(bits, dtype=np.float64)
        if x.shape != (self.n_qubo_vars,):
            raise ReproError(
                f"bits must have shape ({self.n_qubo_vars},), got {x.shape}"
            )
        return (x[: self.n_vars] > 0.5).astype(np.int64)

    def encode(self, assignment: np.ndarray) -> np.ndarray:
        """Truth assignment → bit vector with optimal auxiliary bits."""
        x = self.validate(assignment)
        bits = np.zeros(self.n_qubo_vars)
        bits[: self.n_vars] = x
        aux = self.n_vars
        for lits, _ in self.clauses:
            if len(lits) != 3:
                continue
            (v1, c1, d1), (v2, c2, d2) = (
                self._unsat_factor(lits[0]),
                self._unsat_factor(lits[1]),
            )
            u1 = c1 + d1 * float(x[v1])
            u2 = c2 + d2 * float(x[v2])
            bits[aux] = u1 * u2
            aux += 1
        return bits

    def _literal_true(self, assignment: np.ndarray, lit: int) -> bool:
        value = int(assignment[abs(lit) - 1])
        return value == 1 if lit > 0 else value == 0

    def satisfied_weight(self, assignment: np.ndarray) -> float:
        """Total weight of satisfied clauses."""
        x = self.validate(assignment)
        return float(
            sum(
                w
                for lits, w in self.clauses
                if any(self._literal_true(x, lit) for lit in lits)
            )
        )

    def unsat_weight(self, assignment: np.ndarray) -> float:
        """Total weight of unsatisfied clauses (the QUBO objective)."""
        return self.total_weight - self.satisfied_weight(assignment)

    def is_feasible(self, assignment: np.ndarray) -> bool:
        """Every 0/1 assignment is a valid Max-SAT solution."""
        self.validate(assignment)
        return True

    def objective(self, assignment: np.ndarray) -> float:
        """Maximised objective: satisfied clause weight."""
        return self.satisfied_weight(assignment)

    def reference(self) -> np.ndarray:
        """Deterministic greedy: majority literal polarity by weight.

        Each variable takes the polarity carrying more clause weight
        across its occurrences (ties → true) — the classic
        unit-propagation-free greedy baseline.
        """
        pos = np.zeros(self.n_vars)
        neg = np.zeros(self.n_vars)
        for lits, w in self.clauses:
            for lit in lits:
                if lit > 0:
                    pos[lit - 1] += w
                else:
                    neg[-lit - 1] += w
        return (pos >= neg).astype(np.int64)

    def __repr__(self) -> str:
        return (
            f"MaxSATProblem(name={self.name!r}, n_vars={self.n_vars}, "
            f"n_clauses={self.n_clauses})"
        )


def random_maxsat_problem(
    n_vars: int,
    n_clauses: int,
    seed: SeedLike = None,
    name: str = "random-maxsat",
) -> MaxSATProblem:
    """A planted-satisfiable weighted instance (mixed clause lengths).

    A secret assignment is drawn first and one literal of every clause
    is forced to agree with it, so the optimum satisfies everything and
    the QUBO minimum is exactly 0.  Clause lengths mix 1/2/3 (mostly
    3), weights are integers in ``[1, 5]``.  Deterministic for a given
    seed.
    """
    if n_vars < 3:
        raise ReproError(f"n_vars must be >= 3, got {n_vars}")
    if n_clauses < 1:
        raise ReproError(f"n_clauses must be >= 1, got {n_clauses}")
    rng = spawn_rng(seed)
    planted = rng.integers(0, 2, size=n_vars)
    clauses: List[Clause] = []
    lengths = rng.choice([1, 2, 3], size=n_clauses, p=[0.15, 0.25, 0.6])
    for k in range(n_clauses):
        length = int(lengths[k])
        variables = rng.choice(n_vars, size=length, replace=False)
        lits = []
        for v in variables:
            positive = bool(rng.integers(0, 2))
            lits.append(int(v) + 1 if positive else -(int(v) + 1))
        # Plant satisfiability: force one literal to agree.
        pin = int(rng.integers(0, length))
        v = abs(lits[pin]) - 1
        lits[pin] = (v + 1) if planted[v] == 1 else -(v + 1)
        clauses.append((tuple(lits), float(rng.integers(1, 6))))
    return MaxSATProblem(n_vars, clauses, name=name)
