"""Op-counted QUBO solver kernels shared by the serving backends.

Three kernels, one per registered backend's solving style, all
instrumented with the :mod:`repro.problems.opcount` layer so Table-I
style algorithmic-cost comparisons work on every workload:

* :func:`anneal_qubo_sequential` — temperature-annealed sequential
  Gibbs sampling directly on the 0/1 bits (``dense-ising``'s style);
* :func:`anneal_qubo_chromatic` — chromatic-parallel Gibbs: the QUBO's
  interaction graph is greedily colored and each independent set
  updates simultaneously, the paper's odd/even cluster trick
  generalised (``cluster-cim``'s style);
* :func:`relax_qubo_simcim` — the mean-field SimCIM dynamics of
  :mod:`repro.ising.simcim` run on the compiled Ising form, with MAC /
  RNG / sign-flip counts recorded per step (``simcim``'s style).

Gibbs update rule on a QUBO: toggling bit ``i`` changes the energy by
``field_i = q_ii + Σ_{j≠i} q_(ij) x_j`` when going 0→1, so the
conditional Boltzmann probability is ``p(x_i=1) = σ(−field_i / T)``
(computed with the numerically stable sigmoid, RL001).  MAC counts
charge the sparse row work ``nnz(row i)`` per field evaluation; RNG
draws charge one uniform per resampled bit; spin flips count bits that
actually changed value.  All kernels are deterministic for a given
seed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ReproError
from repro.ising.gibbs import chromatic_groups
from repro.ising.numerics import stable_sigmoid
from repro.ising.simcim import SimCIMParams
from repro.problems.opcount import History, OpCounter
from repro.problems.qubo import QUBOProblem
from repro.utils.rng import SeedLike, spawn_rng


class QUBOAnnealOutcome:
    """Plain (picklable) result of one op-counted QUBO solve."""

    __slots__ = ("bits", "energy", "history")

    def __init__(
        self, bits: np.ndarray, energy: float, history: History
    ) -> None:
        self.bits = bits
        self.energy = float(energy)
        self.history = history

    def __repr__(self) -> str:
        return (
            f"QUBOAnnealOutcome(energy={self.energy:.6g}, "
            f"n_records={self.history.n_records})"
        )


def _split_matrix(
    problem: QUBOProblem,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(diag, symmetric off-diagonal couplings, per-row MAC cost)."""
    upper = np.triu(problem.q, k=1)
    pair = upper + upper.T
    diag = np.diag(problem.q).copy()
    # One MAC per nonzero coupling touched, plus the diagonal add.
    row_cost = np.count_nonzero(pair, axis=1) + 1
    return diag, pair, row_cost


def _check_schedule(
    n_sweeps: int, t_start: float, t_end: float, record_every: int
) -> None:
    if n_sweeps < 1:
        raise ReproError(f"n_sweeps must be >= 1, got {n_sweeps}")
    if t_start < t_end:
        raise ReproError(
            f"t_start must be >= t_end, got {t_start} < {t_end}"
        )
    if t_end <= 0:
        raise ReproError(f"t_end must be > 0, got {t_end}")
    if record_every < 1:
        raise ReproError(f"record_every must be >= 1, got {record_every}")


def _temperatures(
    n_sweeps: int, t_start: float, t_end: float
) -> np.ndarray:
    """Geometric cooling schedule of length ``n_sweeps``."""
    return np.geomspace(t_start, t_end, n_sweeps)


def anneal_qubo_sequential(
    problem: QUBOProblem,
    *,
    n_sweeps: int = 200,
    t_start: float = 2.0,
    t_end: float = 0.05,
    seed: SeedLike = None,
    record_every: int = 10,
) -> QUBOAnnealOutcome:
    """Sequential Gibbs annealing over the bits, one at a time."""
    _check_schedule(n_sweeps, t_start, t_end, record_every)
    rng = spawn_rng(seed)
    diag, pair, row_cost = _split_matrix(problem)
    n = problem.n_vars
    ops = OpCounter()
    history = History()

    x = rng.integers(0, 2, size=n).astype(np.float64)
    ops.rng_draw(n)
    energy = problem.energy(x)
    for sweep, temperature in enumerate(
        _temperatures(n_sweeps, t_start, t_end)
    ):
        for i in range(n):
            field = float(diag[i]) + float(pair[i] @ x)
            ops.mac(int(row_cost[i]))
            p_one = stable_sigmoid(-field / temperature)
            new = 1.0 if rng.random() < p_one else 0.0
            ops.rng_draw()
            if new != x[i]:
                energy += (new - x[i]) * field
                x[i] = new
                ops.spin_flip()
        if sweep % record_every == 0:
            history.record(sweep, energy, ops)
    history.record(n_sweeps, energy, ops)
    return QUBOAnnealOutcome(x, energy, history)


def anneal_qubo_chromatic(
    problem: QUBOProblem,
    *,
    n_sweeps: int = 200,
    t_start: float = 2.0,
    t_end: float = 0.05,
    seed: SeedLike = None,
    record_every: int = 10,
) -> QUBOAnnealOutcome:
    """Chromatic-parallel Gibbs annealing (independent sets together).

    Bits in the same color class share no quadratic coupling, so their
    conditional distributions are independent and a whole class is
    resampled in one vectorised step — exactly the parallel-update
    argument the paper makes for its odd/even cluster phases.
    """
    _check_schedule(n_sweeps, t_start, t_end, record_every)
    rng = spawn_rng(seed)
    diag, pair, row_cost = _split_matrix(problem)
    n = problem.n_vars
    groups = chromatic_groups(n, problem.interaction_edges())
    ops = OpCounter()
    history = History()

    x = rng.integers(0, 2, size=n).astype(np.float64)
    ops.rng_draw(n)
    energy = problem.energy(x)
    for sweep, temperature in enumerate(
        _temperatures(n_sweeps, t_start, t_end)
    ):
        for group in groups:
            fields = diag[group] + pair[group] @ x
            ops.mac(int(row_cost[group].sum()))
            p_one = stable_sigmoid(-fields / temperature)
            draws = rng.random(group.size)
            ops.rng_draw(group.size)
            new = (draws < p_one).astype(np.float64)
            changed = new != x[group]
            # No intra-group couplings → the flip deltas are additive.
            energy += float(((new - x[group]) * fields).sum())
            x[group] = new
            ops.spin_flip(int(changed.sum()))
        if sweep % record_every == 0:
            history.record(sweep, energy, ops)
    history.record(n_sweeps, energy, ops)
    return QUBOAnnealOutcome(x, energy, history)


def relax_qubo_simcim(
    problem: QUBOProblem,
    *,
    params: Optional[SimCIMParams] = None,
    seed: SeedLike = None,
    record_every: int = 10,
) -> QUBOAnnealOutcome:
    """SimCIM mean-field relaxation on the compiled Ising form.

    Mirrors :func:`repro.ising.simcim.simcim_optimize` step for step
    (same dynamics, same RNG consumption) while charging MACs for the
    dense ``J @ a`` injection, RNG draws for the per-step noise, and
    spin flips for amplitude sign changes.  Returns the best bit
    pattern seen, scored in QUBO energy (``H + ising_offset``).
    """
    if record_every < 1:
        raise ReproError(f"record_every must be >= 1, got {record_every}")
    params = params or SimCIMParams()
    model, ising_offset = problem.to_ising()
    rng = spawn_rng(seed)
    j = model.couplings
    h = model.field
    n = model.n_spins
    ops = OpCounter()
    history = History()

    zeta = params.coupling_scale
    if zeta is None:
        sigma_j = float(np.sqrt((j**2).sum() / max(1, n * (n - 1))))
        zeta = 0.5 / (sigma_j * np.sqrt(n)) if sigma_j > 0 else 0.5
    j_cost = int(np.count_nonzero(j)) + 2 * n  # J@a plus pump and field adds

    amplitudes = np.zeros(n)
    signs = np.ones(n)
    best_spins = np.ones(n)
    best_energy = model.energy(best_spins)
    pump_span = params.pump_end - params.pump_start
    noise_scale = params.noise_sigma * np.sqrt(params.dt)

    for step in range(params.n_steps):
        pump = params.pump_start + pump_span * step / params.n_steps
        drive = pump * amplitudes + zeta * (2.0 * (j @ amplitudes) + h)
        amplitudes = amplitudes + params.dt * drive
        ops.mac(j_cost)
        if noise_scale:
            amplitudes = amplitudes + noise_scale * rng.standard_normal(n)
            ops.rng_draw(n)
        np.clip(amplitudes, -1.0, 1.0, out=amplitudes)

        new_signs = np.sign(amplitudes)
        new_signs[new_signs == 0] = 1.0
        ops.spin_flip(int((new_signs != signs).sum()))
        signs = new_signs

        if step % record_every == 0:
            energy = model.energy(signs)
            history.record(step, energy + ising_offset, ops)
            if energy < best_energy:
                best_energy, best_spins = energy, signs.copy()

    energy = model.energy(signs)
    if energy <= best_energy:
        best_energy, best_spins = energy, signs.copy()
    history.record(params.n_steps, best_energy + ising_offset, ops)
    bits = QUBOProblem.spins_to_bits(best_spins)
    return QUBOAnnealOutcome(bits, best_energy + ising_offset, history)


def greedy_qubo_descent(
    problem: QUBOProblem,
    seed: SeedLike = None,
    max_passes: int = 64,
) -> Tuple[np.ndarray, float]:
    """Deterministic seeded greedy descent — the reference baseline.

    Starts from a seeded random bit vector and repeatedly sweeps,
    taking every single-bit flip that lowers the energy, until a full
    pass makes no change (or ``max_passes`` is hit).  Backends use this
    as the ``optimal_ratio`` denominator for QUBO plans.
    """
    if max_passes < 1:
        raise ReproError(f"max_passes must be >= 1, got {max_passes}")
    rng = spawn_rng(seed)
    diag, pair, _ = _split_matrix(problem)
    n = problem.n_vars
    x = rng.integers(0, 2, size=n).astype(np.float64)
    energy = problem.energy(x)
    for _ in range(max_passes):
        improved = False
        for i in range(n):
            field = float(diag[i]) + float(pair[i] @ x)
            delta = (1.0 - 2.0 * x[i]) * field
            if delta < 0.0:
                x[i] = 1.0 - x[i]
                energy += delta
                improved = True
        if not improved:
            break
    return x, energy


__all__: List[str] = [
    "QUBOAnnealOutcome",
    "anneal_qubo_sequential",
    "anneal_qubo_chromatic",
    "relax_qubo_simcim",
    "greedy_qubo_descent",
]
