"""Graph coloring → QUBO reduction (Lucas 2014, §6.1).

One-hot variables ``x_{v,c}`` ("node v has color c", flat index
``v * n_colors + c``) with the penalty Hamiltonian

    H = A Σ_v (1 − Σ_c x_{v,c})²  +  B Σ_{(u,v)∈E} Σ_c x_{u,c} x_{v,c}

The first term forces exactly one color per node, the second charges
``B`` per monochromatic edge.  With ``A > B · max_degree`` breaking a
one-hot constraint is never profitable (recoloring the node to any
color costs at most ``B · degree`` in conflicts), so we pin
``A = B · (max_degree + 1)``; see ``docs/problems.md`` for the
argument.  A feasible coloring has QUBO energy exactly 0.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ReproError
from repro.problems.qubo import QUBOProblem
from repro.utils.rng import SeedLike, spawn_rng


class GraphColoringProblem:
    """Color ``n_nodes`` with ``n_colors`` so no edge is monochromatic.

    Parameters
    ----------
    n_nodes:
        Number of nodes.
    edges:
        ``(u, v)`` pairs (0-indexed; duplicates and orientation merged).
    n_colors:
        Palette size.
    name:
        Display name.
    """

    family = "coloring"

    def __init__(
        self,
        n_nodes: int,
        edges: Sequence[Tuple[int, int]],
        n_colors: int,
        name: str = "coloring",
    ) -> None:
        if n_nodes < 1:
            raise ReproError(f"n_nodes must be >= 1, got {n_nodes}")
        if n_colors < 1:
            raise ReproError(f"n_colors must be >= 1, got {n_colors}")
        seen = set()
        clean: List[Tuple[int, int]] = []
        for u, v in edges:
            u, v = int(u), int(v)
            if not (0 <= u < n_nodes and 0 <= v < n_nodes):
                raise ReproError(f"edge ({u}, {v}) out of range")
            if u == v:
                raise ReproError(f"self-loop on node {u}")
            key = (min(u, v), max(u, v))
            if key not in seen:
                seen.add(key)
                clean.append(key)
        self.n_nodes = int(n_nodes)
        self.n_colors = int(n_colors)
        self.edges = sorted(clean)
        self.name = str(name)

    # ------------------------------------------------------------------
    @property
    def n_qubo_vars(self) -> int:
        """One bit per (node, color) pair."""
        return self.n_nodes * self.n_colors

    @property
    def max_degree(self) -> int:
        """Largest node degree (sets the penalty weight A)."""
        degree = np.zeros(self.n_nodes, dtype=np.int64)
        for u, v in self.edges:
            degree[u] += 1
            degree[v] += 1
        return int(degree.max()) if self.n_nodes else 0

    def _var(self, node: int, color: int) -> int:
        return node * self.n_colors + color

    def to_qubo(self, conflict_weight: float = 1.0) -> QUBOProblem:
        """Compile to a :class:`QUBOProblem` (``A = B·(max_degree+1)``)."""
        if conflict_weight <= 0:
            raise ReproError(
                f"conflict_weight must be > 0, got {conflict_weight}"
            )
        b = float(conflict_weight)
        a = b * (self.max_degree + 1)
        terms: List[Tuple[int, int, float]] = []
        # A(1 - Σ_c x)² = A - 2A Σ_c x + A Σ_c x + 2A Σ_{c<c'} x_c x_c'
        for v in range(self.n_nodes):
            for c in range(self.n_colors):
                terms.append((self._var(v, c), self._var(v, c), -a))
                for c2 in range(c + 1, self.n_colors):
                    terms.append((self._var(v, c), self._var(v, c2), 2.0 * a))
        for u, v in self.edges:
            for c in range(self.n_colors):
                terms.append((self._var(u, c), self._var(v, c), b))
        return QUBOProblem.from_terms(
            self.n_qubo_vars,
            terms,
            offset=a * self.n_nodes,
            name=f"{self.name}/qubo",
        )

    # ------------------------------------------------------------------
    def validate(self, assignment: np.ndarray) -> np.ndarray:
        """Check a per-node color vector (shape and palette range)."""
        colors = np.asarray(assignment, dtype=np.int64)
        if colors.shape != (self.n_nodes,):
            raise ReproError(
                f"assignment must have shape ({self.n_nodes},), "
                f"got {colors.shape}"
            )
        if colors.size and (colors.min() < 0 or colors.max() >= self.n_colors):
            raise ReproError("assignment colors out of palette range")
        return colors

    def decode(self, bits: np.ndarray) -> np.ndarray:
        """Bit vector → per-node colors, with deterministic repair.

        A node with exactly one set bit keeps that color; zero or
        multiple set bits are repaired to the lowest-index color with
        the fewest conflicts against already-decoded neighbours.
        """
        x = np.asarray(bits, dtype=np.float64)
        if x.shape != (self.n_qubo_vars,):
            raise ReproError(
                f"bits must have shape ({self.n_qubo_vars},), got {x.shape}"
            )
        grid = x.reshape(self.n_nodes, self.n_colors)
        colors = np.full(self.n_nodes, -1, dtype=np.int64)
        neighbours: List[List[int]] = [[] for _ in range(self.n_nodes)]
        for u, v in self.edges:
            neighbours[u].append(v)
            neighbours[v].append(u)
        for v in range(self.n_nodes):
            on = np.nonzero(grid[v] > 0.5)[0]
            if on.size == 1:
                colors[v] = int(on[0])
                continue
            candidates = on if on.size else np.arange(self.n_colors)
            conflicts = [
                sum(
                    1
                    for nb in neighbours[v]
                    if colors[nb] == int(c)
                )
                for c in candidates
            ]
            colors[v] = int(candidates[int(np.argmin(conflicts))])
        return colors

    def encode(self, assignment: np.ndarray) -> np.ndarray:
        """Per-node colors → one-hot bit vector."""
        colors = self.validate(assignment)
        bits = np.zeros(self.n_qubo_vars)
        for v in range(self.n_nodes):
            bits[self._var(v, int(colors[v]))] = 1.0
        return bits

    def conflicts(self, assignment: np.ndarray) -> int:
        """Number of monochromatic edges."""
        colors = self.validate(assignment)
        return sum(1 for u, v in self.edges if colors[u] == colors[v])

    def is_feasible(self, assignment: np.ndarray) -> bool:
        """True iff no edge is monochromatic."""
        return self.conflicts(assignment) == 0

    def objective(self, assignment: np.ndarray) -> float:
        """Minimised objective: conflicting-edge count."""
        return float(self.conflicts(assignment))

    def reference(self) -> np.ndarray:
        """Welsh–Powell greedy coloring, clamped to the palette.

        Deterministic: nodes in decreasing-degree order (index
        tie-break), each taking the lowest color unused by its
        neighbours; overflow past the palette wraps to the
        least-conflicting color.
        """
        degree = np.zeros(self.n_nodes, dtype=np.int64)
        neighbours: List[List[int]] = [[] for _ in range(self.n_nodes)]
        for u, v in self.edges:
            degree[u] += 1
            degree[v] += 1
            neighbours[u].append(v)
            neighbours[v].append(u)
        order = sorted(range(self.n_nodes), key=lambda v: (-degree[v], v))
        colors = np.full(self.n_nodes, -1, dtype=np.int64)
        for v in order:
            used = {int(colors[nb]) for nb in neighbours[v] if colors[nb] >= 0}
            free = next(
                (c for c in range(self.n_colors) if c not in used), None
            )
            if free is not None:
                colors[v] = free
                continue
            counts = [
                sum(1 for nb in neighbours[v] if colors[nb] == c)
                for c in range(self.n_colors)
            ]
            colors[v] = int(np.argmin(counts))
        return colors

    def __repr__(self) -> str:
        return (
            f"GraphColoringProblem(name={self.name!r}, "
            f"n_nodes={self.n_nodes}, n_edges={len(self.edges)}, "
            f"n_colors={self.n_colors})"
        )


def random_coloring_problem(
    n_nodes: int,
    n_colors: int = 3,
    edge_prob: float = 0.3,
    seed: SeedLike = None,
    name: str = "random-coloring",
) -> GraphColoringProblem:
    """A planted-coloring random graph (always ``n_colors``-colorable).

    Nodes are secretly partitioned into ``n_colors`` classes and edges
    are drawn only *between* classes with probability ``edge_prob``, so
    the planted assignment is a feasible coloring and the QUBO optimum
    is exactly 0.  Deterministic for a given seed.
    """
    if n_nodes < 2:
        raise ReproError(f"n_nodes must be >= 2, got {n_nodes}")
    if not 0.0 < edge_prob <= 1.0:
        raise ReproError(f"edge_prob must be in (0, 1], got {edge_prob}")
    rng = spawn_rng(seed)
    planted = rng.integers(0, n_colors, size=n_nodes)
    edges: List[Tuple[int, int]] = []
    for u in range(n_nodes):
        for v in range(u + 1, n_nodes):
            if planted[u] != planted[v] and rng.random() < edge_prob:
                edges.append((u, v))
    return GraphColoringProblem(n_nodes, edges, n_colors, name=name)
