"""Per-file analysis context shared by all rules.

One :class:`FileContext` is built per linted file.  It owns the parsed
AST plus the derived indexes every rule wants — import aliases, a
child→parent node map, and the repo-relative posix path used for
path-scoped rules (e.g. RL006 only applies inside ``repro/`` solver
modules).  Building these once per file keeps each rule a small, pure
AST walk.

Cross-file rules additionally read :attr:`FileContext.project` — the
pass-1 :class:`~repro_lint.project.ProjectContext` with the module
import graph, exported-symbol table, and dataclass field index (see
``project.py``).  The engine always provides one; a context built by
hand without it still resolves dataclasses defined in the same file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

if TYPE_CHECKING:
    from repro_lint.project import ProjectContext


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str  # as passed on the command line (for reports)
    rel_path: str  # posix path relative to the lint root (for scoping)
    source: str
    tree: ast.Module
    #: Pass-1 cross-file indexes (None only for hand-built contexts).
    project: Optional["ProjectContext"] = None
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(
        default=None, repr=False
    )
    _numpy_aliases: Optional[Set[str]] = field(default=None, repr=False)
    _module_imports: Optional[Set[str]] = field(default=None, repr=False)
    _from_imports: Optional[Dict[str, str]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child → parent map over the whole tree (built lazily)."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        """The syntactic parent of ``node`` (None for the module)."""
        return self.parents.get(node)

    # ------------------------------------------------------------------
    def _index_imports(self) -> None:
        numpy_aliases: Set[str] = set()
        modules: Set[str] = set()
        from_imports: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    modules.add(alias.asname or alias.name)
                    if alias.name in ("numpy", "numpy.random"):
                        numpy_aliases.add(name)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    from_imports[local] = f"{node.module}.{alias.name}"
        self._numpy_aliases = numpy_aliases
        self._module_imports = modules
        self._from_imports = from_imports

    @property
    def numpy_aliases(self) -> Set[str]:
        """Local names bound to the numpy module (``np``, ``numpy``, …)."""
        if self._numpy_aliases is None:
            self._index_imports()
        assert self._numpy_aliases is not None
        return self._numpy_aliases

    @property
    def module_imports(self) -> Set[str]:
        """Module names imported with ``import X`` / ``import X as Y``."""
        if self._module_imports is None:
            self._index_imports()
        assert self._module_imports is not None
        return self._module_imports

    @property
    def from_imports(self) -> Dict[str, str]:
        """``from M import N [as A]`` bindings: local name → ``M.N``."""
        if self._from_imports is None:
            self._index_imports()
        assert self._from_imports is not None
        return self._from_imports

    # ------------------------------------------------------------------
    def resolve_dataclass(self, local_name: str) -> Optional[Tuple[str, ...]]:
        """Ordered public fields of the dataclass bound to ``local_name``.

        Resolution order: a ``@dataclass`` defined in this file, then a
        ``from M import N`` binding looked up in the project's
        cross-file dataclass index.  Returns None when the name does
        not resolve to a known dataclass.
        """
        from repro_lint.project import dataclass_fields_of

        for node in self.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == local_name:
                return dataclass_fields_of(node)
        if self.project is not None:
            origin = self.from_imports.get(local_name)
            if origin is not None:
                fields = self.project.fields_of(origin)
                if fields is not None:
                    return fields
        return None

    # ------------------------------------------------------------------
    def imports_module(self, name: str) -> bool:
        """True when the file does ``import <name>`` (any alias)."""
        return name in self.module_imports

    def in_repro_package(self) -> bool:
        """True when the file lives under a ``repro/`` package dir."""
        return "repro" in self.rel_path.split("/")

    def repro_subpath(self) -> Optional[str]:
        """Path below the ``repro/`` package root, or None.

        ``src/repro/ising/gibbs.py`` → ``ising/gibbs.py``.
        """
        parts = self.rel_path.split("/")
        if "repro" not in parts:
            return None
        idx = parts.index("repro")
        return "/".join(parts[idx + 1 :])
