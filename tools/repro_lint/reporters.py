"""Report rendering: human text, machine JSON, and SARIF 2.1.0.

The JSON schema (``repro_lint.report/v1``) is stable and round-trips
through :func:`json.loads` into the same shape the test suite asserts
on; CI artifacts and dashboards consume it directly.  The SARIF view
(``--format sarif``) targets GitHub code scanning: every violation the
JSON reporter carries appears as one SARIF ``result`` with a physical
location, and every registered rule is described in the tool driver so
annotations link back to the rule catalogue.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro_lint.engine import LintReport
from repro_lint.registry import all_rules

JSON_SCHEMA = "repro_lint.report/v1"

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: LintReport) -> str:
    """One ``path:line:col: CODE message`` line per hit, plus a summary."""
    lines = [v.format() for v in report.violations]
    if report.violations:
        by_code: Dict[str, int] = {}
        for v in report.violations:
            by_code[v.code] = by_code.get(v.code, 0) + 1
        summary = ", ".join(
            f"{code}×{count}" for code, count in sorted(by_code.items())
        )
        lines.append(
            f"{len(report.violations)} violation(s) in "
            f"{report.files_checked} file(s) checked [{summary}]"
        )
    else:
        lines.append(f"clean: {report.files_checked} file(s) checked")
    return "\n".join(lines)


def to_payload(report: LintReport) -> Dict[str, Any]:
    """JSON-native dict view of a report."""
    by_code: Dict[str, int] = {}
    for v in report.violations:
        by_code[v.code] = by_code.get(v.code, 0) + 1
    return {
        "schema": JSON_SCHEMA,
        "files_checked": report.files_checked,
        "n_violations": len(report.violations),
        "counts_by_code": dict(sorted(by_code.items())),
        "violations": [v.to_dict() for v in report.violations],
    }


def render_json(report: LintReport, indent: int = 2) -> str:
    """Serialise the report to a JSON document."""
    return json.dumps(to_payload(report), indent=indent)


def to_sarif(report: LintReport) -> Dict[str, Any]:
    """SARIF 2.1.0 log of a report (one run, one result per hit).

    Parse errors (``RL000``) are reported at level ``error``; rule
    violations at ``warning`` — they gate CI via the exit code, but a
    single convention slip should not mask a file that does not parse.
    """
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.description},
        }
        for rule in all_rules()
    ]
    rules.insert(
        0,
        {
            "id": "RL000",
            "name": "parse-error",
            "shortDescription": {"text": "parse-error"},
            "fullDescription": {"text": "file does not parse"},
        },
    )
    results = [
        {
            "ruleId": v.code,
            "level": "error" if v.code == "RL000" else "warning",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": v.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(v.line, 1),
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        for v in report.violations
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro_lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(report: LintReport, indent: int = 2) -> str:
    """Serialise the report to a SARIF 2.1.0 document."""
    return json.dumps(to_sarif(report), indent=indent)
