"""Report rendering: human-readable text and machine-readable JSON.

The JSON schema (``repro_lint.report/v1``) is stable and round-trips
through :func:`json.loads` into the same shape the test suite asserts
on; CI artifacts and dashboards consume it directly.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro_lint.engine import LintReport

JSON_SCHEMA = "repro_lint.report/v1"


def render_text(report: LintReport) -> str:
    """One ``path:line:col: CODE message`` line per hit, plus a summary."""
    lines = [v.format() for v in report.violations]
    if report.violations:
        by_code: Dict[str, int] = {}
        for v in report.violations:
            by_code[v.code] = by_code.get(v.code, 0) + 1
        summary = ", ".join(
            f"{code}×{count}" for code, count in sorted(by_code.items())
        )
        lines.append(
            f"{len(report.violations)} violation(s) in "
            f"{report.files_checked} file(s) checked [{summary}]"
        )
    else:
        lines.append(f"clean: {report.files_checked} file(s) checked")
    return "\n".join(lines)


def to_payload(report: LintReport) -> Dict[str, Any]:
    """JSON-native dict view of a report."""
    by_code: Dict[str, int] = {}
    for v in report.violations:
        by_code[v.code] = by_code.get(v.code, 0) + 1
    return {
        "schema": JSON_SCHEMA,
        "files_checked": report.files_checked,
        "n_violations": len(report.violations),
        "counts_by_code": dict(sorted(by_code.items())),
        "violations": [v.to_dict() for v in report.violations],
    }


def render_json(report: LintReport, indent: int = 2) -> str:
    """Serialise the report to a JSON document."""
    return json.dumps(to_payload(report), indent=indent)
