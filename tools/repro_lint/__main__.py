"""``python -m repro_lint`` entry point."""

import sys

from repro_lint.cli import main

sys.exit(main())
