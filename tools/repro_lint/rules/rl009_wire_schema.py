"""RL009 — wire-schema drift between codecs and their dataclasses.

``repro.solve_request/v1`` payloads are hand-coded in
``gateway/protocol.py``: ``encode_*`` builds a dict literal per
dataclass, ``decode_*`` reconstructs the dataclass field by field, and
a ``_*_FIELDS`` frozenset literal gates unknown keys.  Each of those
three artefacts repeats the dataclass's field list — so adding a knob
like ``EnsembleOptions.batch_size`` silently drops off the wire unless
every copy is updated by hand.  This rule makes the drift loud by
checking all three against the *actual* field list from the project's
cross-file dataclass index (pass 1):

* an ``encode_<x>(obj: D)`` returning a dict literal must emit exactly
  the public fields of ``D`` (the ``schema`` envelope tag is allowed);
* a constructor call of a known dataclass inside a ``decode_*``
  function must pass every field (positionally, in field order, or by
  keyword).  Zero-argument calls (defaults probes) and ``**kwargs``
  splats are exempt — there is nothing lexical to check;
* a module-level ``NAME = frozenset({...})`` literal passed to
  ``_reject_unknown`` in a ``decode_*`` function must equal the field
  set of the dataclass that same function constructs (again plus
  ``schema``).

Scope: any file that defines a module-level string constant starting
with ``repro.solve_request/`` — the wire module and its fixtures, not
the dataclass definitions themselves.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro_lint.context import FileContext
from repro_lint.registry import Rule, register
from repro_lint.violations import Violation

_SCHEMA_PREFIX = "repro.solve_request/"

#: Envelope keys a wire payload may carry beyond dataclass fields.
_ENVELOPE_KEYS = {"schema"}


def _annotation_class_name(node: Optional[ast.expr]) -> Optional[str]:
    """Bare class name of a parameter annotation, unwrapping
    ``Optional[X]`` / ``"X"`` string forms.  None when unresolvable."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        name = node.value.strip().strip("'\"")
        return name if name.isidentifier() else None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):  # Optional[X], Type[X], ...
        return _annotation_class_name(
            node.slice if not isinstance(node.slice, ast.Tuple) else None
        )
    return None


def _dict_literal_keys(node: ast.Dict) -> Optional[Set[str]]:
    """Constant string keys of a dict literal (None when it has a
    ``**`` splat or non-constant keys — nothing provable)."""
    keys: Set[str] = set()
    for key in node.keys:
        if key is None:
            return None  # **spread
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.add(key.value)
    return keys


def _frozenset_literal(node: ast.expr) -> Optional[Set[str]]:
    """Members of ``frozenset({...})`` / ``frozenset([...])`` when all
    are string constants."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "frozenset"
        and len(node.args) == 1
        and not node.keywords
    ):
        return None
    arg = node.args[0]
    if not isinstance(arg, (ast.Set, ast.List, ast.Tuple)):
        return None
    members: Set[str] = set()
    for elt in arg.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        members.add(elt.value)
    return members


def _constructed_dataclass(
    ctx: FileContext, call: ast.Call
) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """``(class name, fields)`` when ``call`` constructs a known
    dataclass — directly or via a ``.build`` factory classmethod."""
    func = call.func
    name: Optional[str] = None
    if isinstance(func, ast.Name):
        name = func.id
    elif (
        isinstance(func, ast.Attribute)
        and func.attr == "build"
        and isinstance(func.value, ast.Name)
    ):
        name = func.value.id
    if name is None:
        return None
    fields = ctx.resolve_dataclass(name)
    if fields is None:
        return None
    return name, fields


@register
class WireSchemaDrift(Rule):
    code = "RL009"
    name = "wire-schema-drift"
    description = (
        "wire codec out of bijection with its dataclass: an encoder "
        "dict, decoder constructor, or _FIELDS guard is missing or "
        "inventing fields relative to the dataclass definition"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Constant
            ):
                value = node.value.value
                if isinstance(value, str) and value.startswith(
                    _SCHEMA_PREFIX
                ):
                    return True
        return False

    # ------------------------------------------------------------------
    def check(self, ctx: FileContext) -> Iterator[Violation]:
        guards = self._module_guards(ctx)
        for node in ctx.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name.startswith("encode_"):
                yield from self._check_encoder(ctx, node)
            elif node.name.startswith("decode_"):
                yield from self._check_decoder(ctx, node, guards)

    @staticmethod
    def _module_guards(ctx: FileContext) -> Dict[str, Set[str]]:
        """Module-level ``NAME = frozenset({...})`` literals."""
        guards: Dict[str, Set[str]] = {}
        for node in ctx.tree.body:
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            members = _frozenset_literal(node.value)
            if members is not None:
                guards[node.targets[0].id] = members
        return guards

    # ------------------------------------------------------------------
    def _check_encoder(
        self, ctx: FileContext, fn: ast.FunctionDef
    ) -> Iterator[Violation]:
        # Codec convention: ``encode_x(x: X) -> dict``.  Only the first
        # parameter is considered — envelope builders that *mention* a
        # dataclass later in their signature (encode_job_result) are
        # not field codecs.
        if not fn.args.args:
            return
        cls_name = _annotation_class_name(fn.args.args[0].annotation)
        fields = (
            ctx.resolve_dataclass(cls_name) if cls_name is not None else None
        )
        if fields is None:
            return  # encoder of something we cannot see; out of scope
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Return)
                and isinstance(node.value, ast.Dict)
            ):
                continue
            keys = _dict_literal_keys(node.value)
            if keys is None:
                continue
            for missing in sorted(set(fields) - keys):
                yield self.violation(
                    ctx,
                    node.value,
                    f"encoder {fn.name}() omits field {missing!r} of "
                    f"{cls_name}; the wire silently drops it",
                )
            for extra in sorted(keys - set(fields) - _ENVELOPE_KEYS):
                yield self.violation(
                    ctx,
                    node.value,
                    f"encoder {fn.name}() emits key {extra!r} which is "
                    f"not a field of {cls_name}; the strict decoder "
                    "will reject it",
                )

    # ------------------------------------------------------------------
    def _check_decoder(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef,
        guards: Dict[str, Set[str]],
    ) -> Iterator[Violation]:
        constructed: List[Tuple[str, Tuple[str, ...]]] = []
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            info = _constructed_dataclass(ctx, node)
            if info is None:
                continue
            name, fields = info
            if not node.args and not node.keywords:
                continue  # defaults probe (`defaults = EnsembleOptions()`)
            if any(kw.arg is None for kw in node.keywords):
                continue  # **splat: field list is not lexical here
            constructed.append((name, fields))
            covered = set(fields[: len(node.args)])
            covered |= {kw.arg for kw in node.keywords if kw.arg}
            for missing in sorted(set(fields) - covered):
                yield self.violation(
                    ctx,
                    node,
                    f"decoder {fn.name}() constructs {name} without "
                    f"field {missing!r}; wire payloads can never set it",
                )
            for unknown in sorted(covered - set(fields)):
                yield self.violation(
                    ctx,
                    node,
                    f"decoder {fn.name}() passes {unknown!r} which is "
                    f"not a field of {name}",
                )
        # The unknown-key guard this decoder applies must match the
        # field set of the dataclass it constructs.
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "_reject_unknown"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Name)
            ):
                continue
            guard_name = node.args[1].id
            members = guards.get(guard_name)
            if members is None or len(constructed) != 1:
                continue  # nested guards (sub-payloads) are unprovable
            cls_name, fields = constructed[0]
            for missing in sorted(set(fields) - members):
                yield self.violation(
                    ctx,
                    node,
                    f"guard {guard_name} omits field {missing!r} of "
                    f"{cls_name}; valid payloads carrying it are "
                    "rejected as unknown",
                )
            for extra in sorted(members - set(fields) - _ENVELOPE_KEYS):
                yield self.violation(
                    ctx,
                    node,
                    f"guard {guard_name} allows key {extra!r} which is "
                    f"not a field of {cls_name}; the decoder ignores it "
                    "silently",
                )
