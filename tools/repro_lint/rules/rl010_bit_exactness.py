"""RL010 — float reductions that endanger batched bit-identity.

The batched replica engine's contract is *bit-identical* energies and
tours against the serial oracle (``tests/ising`` pins this).  That
only holds while every floating-point accumulation happens in the same
order as the serial code: a vectorised ``np.sum``/``@``/``.dot()``/
``einsum`` over the replica axis lets BLAS reassociate the adds, and
the last few mantissa bits drift — silently, and only on some
machines.

Scope: batched kernels (``repro/**/batched.py`` — today
``repro/ising/batched.py`` and ``repro/annealer/batched.py``).

Flagged: ``np.sum`` / ``np.dot`` / ``np.einsum`` (any numpy alias),
``.sum()`` / ``.dot()`` method calls, and the ``@`` matmul operator.

Sanctioned: a reduction whose *immediate* consumer is a ``float(...)``
call — the serial-gap idiom (``2.0 * float(ji @ cols[r]) + hi``)
collapses one replica's gap to a Python scalar that is then combined
serially, exactly like the oracle.  The builtin ``sum`` is never
flagged (integer bookkeeping like step counting is exact).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.context import FileContext
from repro_lint.registry import Rule, register
from repro_lint.violations import Violation

_NP_REDUCTIONS = {"sum", "dot", "einsum", "matmul", "inner", "vdot"}
_METHOD_REDUCTIONS = {"sum", "dot"}


def _scalar_wrapped(ctx: FileContext, node: ast.AST) -> bool:
    """True when ``node`` is the sole argument of ``float(...)`` or
    ``int(...)``.

    ``float(...)`` marks the serial-gap idiom; ``int(...)`` marks
    integer bookkeeping (cluster sizes, step counts) — integer adds are
    associative, so reassociation cannot change the result.
    """
    parent = ctx.parent(node)
    return (
        isinstance(parent, ast.Call)
        and isinstance(parent.func, ast.Name)
        and parent.func.id in ("float", "int")
        and len(parent.args) == 1
        and parent.args[0] is node
    )


@register
class FloatReductionInBatchedKernel(Rule):
    code = "RL010"
    name = "batched-bit-exactness"
    description = (
        "vectorised float reduction (np.sum/@/.dot/einsum) in a "
        "batched kernel; BLAS reassociation breaks bit-identity with "
        "the serial oracle — use the float()-wrapped serial-gap idiom"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        sub = ctx.repro_subpath()
        return sub is not None and sub.endswith("batched.py")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.MatMult
            ):
                if not _scalar_wrapped(ctx, node):
                    yield self.violation(
                        ctx,
                        node,
                        "'@' matmul outside the float()-wrapped "
                        "serial-gap idiom reassociates replica-axis "
                        "adds; bit-identity with the serial oracle "
                        "is lost",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            fn = ""
            is_numpy_receiver = (
                isinstance(func.value, ast.Name)
                and func.value.id in ctx.numpy_aliases
            )
            if is_numpy_receiver and func.attr in _NP_REDUCTIONS:
                fn = f"np.{func.attr}"
            elif not is_numpy_receiver and func.attr in _METHOD_REDUCTIONS:
                fn = f".{func.attr}()"
            if fn and not _scalar_wrapped(ctx, node):
                yield self.violation(
                    ctx,
                    node,
                    f"{fn} float reduction in a batched kernel can "
                    "reassociate replica-axis adds; accumulate via the "
                    "float()-wrapped serial-gap idiom instead",
                )
