"""RL002 — legacy global RNG instead of an explicit ``Generator``.

Reproducibility discipline: every stochastic component takes a seeded
:class:`numpy.random.Generator` (normalised by
:func:`repro.utils.rng.spawn_rng`).  Calls into the *global* legacy
streams — ``np.random.rand(...)``, ``random.random()``, … — are
process-wide hidden state: they make runs irreproducible under
parallel dispatch and decouple results from the recorded seed.

Flagged:

* any call ``<numpy>.random.<fn>(...)`` except ``default_rng`` (the
  sanctioned constructor) — including ``SeedSequence``, which is only
  legitimate inside ``repro/utils/rng.py`` and is suppressed there
  with a justification;
* any call ``random.<fn>(...)`` on the imported stdlib module;
* importing names out of ``numpy.random`` or stdlib ``random``
  (``from numpy.random import rand``), which launders the same global
  state past the call-site checks.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.context import FileContext
from repro_lint.registry import Rule, register
from repro_lint.violations import Violation

_ALLOWED_NUMPY_RANDOM = {"default_rng"}
_ALLOWED_FROM_IMPORTS = {"default_rng", "Generator", "BitGenerator"}


def _numpy_random_fn(ctx: FileContext, func: ast.AST) -> str:
    """``<np>.random.<fn>`` attribute chain → fn name, else ''."""
    if not isinstance(func, ast.Attribute):
        return ""
    base = func.value
    if (
        isinstance(base, ast.Attribute)
        and base.attr == "random"
        and isinstance(base.value, ast.Name)
        and base.value.id in ctx.numpy_aliases
    ):
        return func.attr
    # `import numpy.random as npr` → npr.<fn>
    if isinstance(base, ast.Name) and base.id in ctx.numpy_aliases:
        # only when the alias is bound to numpy.random itself
        return func.attr if _alias_is_numpy_random(ctx, base.id) else ""
    return ""


def _alias_is_numpy_random(ctx: FileContext, alias: str) -> bool:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if (a.asname or a.name) == alias and a.name == "numpy.random":
                    return True
    return False


@register
class LegacyGlobalRNG(Rule):
    code = "RL002"
    name = "legacy-global-rng"
    description = (
        "legacy global RNG (np.random.<fn> / random.<fn>); stochastic "
        "code must take an explicit numpy.random.Generator "
        "(repro.utils.rng.spawn_rng)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        stdlib_random = ctx.imports_module("random")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                fn = _numpy_random_fn(ctx, node.func)
                if fn and fn not in _ALLOWED_NUMPY_RANDOM:
                    yield self.violation(
                        ctx,
                        node,
                        f"np.random.{fn}() uses the legacy global stream; "
                        "take an explicit Generator "
                        "(repro.utils.rng.spawn_rng)",
                    )
                elif (
                    stdlib_random
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "random"
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"random.{node.func.attr}() uses the process-global "
                        "stdlib stream; take an explicit "
                        "numpy.random.Generator instead",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module in (
                "random",
                "numpy.random",
            ):
                bad = [
                    a.name
                    for a in node.names
                    if a.name not in _ALLOWED_FROM_IMPORTS
                ]
                if bad:
                    yield self.violation(
                        ctx,
                        node,
                        f"importing {', '.join(bad)} from {node.module} "
                        "binds global-stream RNG; pass a Generator "
                        "explicitly",
                    )
