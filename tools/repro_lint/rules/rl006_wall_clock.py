"""RL006 — wall-clock reads in solver kernels outside the telemetry layer.

``RunTelemetry`` per-level times are only comparable when every timing
read goes through the telemetry layer's :class:`repro.runtime.telemetry.
Stopwatch`: ad-hoc ``time.time()`` / ``time.perf_counter()`` calls
sprinkled through solver kernels measure overlapping spans, get lost
on the retry path, and silently skew the per-level numbers the
benchmarks aggregate.

Scope: modules under the ``repro/`` package **except**
``repro/runtime/`` (the telemetry layer owns the clock).  Tests and
benchmarks may time whatever they like.

Flagged: calls to ``time.time`` / ``perf_counter`` / ``monotonic`` /
``process_time`` / ``thread_time`` — via the module (``time.
perf_counter()``) or a ``from time import perf_counter`` binding.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.context import FileContext
from repro_lint.registry import Rule, register
from repro_lint.violations import Violation

_CLOCK_FNS = {
    "time",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
    "thread_time",
    "thread_time_ns",
}


@register
class WallClockInSolverKernel(Rule):
    code = "RL006"
    name = "wall-clock-in-kernel"
    description = (
        "wall-clock read in a solver kernel outside the telemetry "
        "layer; use repro.runtime.telemetry.Stopwatch so RunTelemetry "
        "per-level times stay consistent"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        sub = ctx.repro_subpath()
        if sub is None:
            return False  # tests/benchmarks/tools may time freely
        return not sub.startswith("runtime/")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            fn = ""
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
                and ctx.imports_module("time")
                and func.attr in _CLOCK_FNS
            ):
                fn = f"time.{func.attr}"
            elif isinstance(func, ast.Name):
                origin = ctx.from_imports.get(func.id, "")
                if origin.startswith("time.") and origin[5:] in _CLOCK_FNS:
                    fn = origin
            if fn:
                yield self.violation(
                    ctx,
                    node,
                    f"{fn}() in a solver kernel bypasses the telemetry "
                    "layer; time spans with "
                    "repro.runtime.telemetry.Stopwatch",
                )
