"""RL004 — mutable default arguments (including dataclass fields).

A mutable default (``def f(xs=[])``) is evaluated once at definition
time and shared across every call — accumulated state leaks between
runs, which is poison for reproducibility.  Dataclasses reject plain
``list``/``dict``/``set`` defaults at runtime but happily accept other
mutables (``np.zeros(3)``, a user object), sharing one instance across
all dataclass instances.

Flagged as defaults (function args and dataclass fields alike):

* display literals ``[]`` / ``{}`` / ``{…}`` and comprehensions;
* constructor calls ``list()`` / ``dict()`` / ``set()`` /
  ``bytearray()`` / ``collections.defaultdict`` / ``deque``;
* numpy array constructors (``np.array``, ``np.zeros``, …).

Use ``None`` + in-body construction, or
``dataclasses.field(default_factory=…)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro_lint.context import FileContext
from repro_lint.registry import Rule, register
from repro_lint.violations import Violation

_MUTABLE_CTOR_NAMES = {
    "list",
    "dict",
    "set",
    "bytearray",
    "defaultdict",
    "deque",
    "OrderedDict",
    "Counter",
}
_NUMPY_ARRAY_CTORS = {
    "array",
    "zeros",
    "ones",
    "empty",
    "full",
    "arange",
    "linspace",
    "geomspace",
}


def _mutable_desc(ctx: FileContext, node: ast.AST) -> Optional[str]:
    """Describe ``node`` if it builds a fresh mutable object."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_CTOR_NAMES:
            return f"{func.id}()"
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ctx.numpy_aliases
            and func.attr in _NUMPY_ARRAY_CTORS
        ):
            return f"np.{func.attr}() array"
    return None


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


@register
class MutableDefaultArgument(Rule):
    code = "RL004"
    name = "mutable-default"
    description = (
        "mutable default argument / dataclass field default shared "
        "across calls; use None or dataclasses.field(default_factory=...)"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                defaults = [
                    *node.args.defaults,
                    *[d for d in node.args.kw_defaults if d is not None],
                ]
                for default in defaults:
                    desc = _mutable_desc(ctx, default)
                    if desc:
                        yield self.violation(
                            ctx,
                            default,
                            f"mutable default {desc} is shared across "
                            "calls; default to None and build it in the "
                            "body (or use field(default_factory=...))",
                        )
            elif isinstance(node, ast.ClassDef) and _is_dataclass(node):
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.AnnAssign)
                        and stmt.value is not None
                    ):
                        desc = _mutable_desc(ctx, stmt.value)
                        if desc:
                            yield self.violation(
                                ctx,
                                stmt.value,
                                f"dataclass field default {desc} is one "
                                "object shared by every instance; use "
                                "field(default_factory=...)",
                            )
