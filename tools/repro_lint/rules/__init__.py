"""Built-in domain rules.

Importing this package registers every ``RLnnn`` rule with
:mod:`repro_lint.registry`.  Each rule lives in its own module so a
rule can be read, tested, and extended in isolation; adding a rule is
one new module plus an import line here.
"""

from repro_lint.rules import (  # noqa: F401  (imports register the rules)
    rl001_raw_exp,
    rl002_global_rng,
    rl003_pool_pickle,
    rl004_mutable_default,
    rl005_swallowed_except,
    rl006_wall_clock,
    rl007_unbounded_retry,
    rl008_blocking_async,
    rl009_wire_schema,
    rl010_bit_exactness,
    rl011_stale_suppression,
)
