"""RL011 — stale-suppression hygiene.

A ``# repro-lint: ignore[RLxxx]`` is a debt marker: it says "this line
knowingly violates RLxxx, here is why".  Once the code it excused is
fixed or deleted the comment keeps silencing — and the *next* genuine
violation on that line inherits a free pass.  RL011 closes the loop:
any suppression entry that silenced nothing over a run is itself a
violation.

Unlike RL001–RL010 this rule cannot be a per-file AST walk — staleness
is only knowable *after* every other active rule has run and the
engine has recorded which suppression entries actually fired.  The
class below therefore only registers the code (so ``--select RL011``,
``--ignore RL011`` and suppression comments address it uniformly);
the detection itself lives in the engine
(:func:`repro_lint.engine.lint_file`), fed by
:meth:`repro_lint.suppressions.Suppressions.stale_entries`.

Semantics enforced there:

* entries for codes not in the registry are always stale (typo'd or
  long-deleted rules);
* under ``--select``/``--ignore`` filtering, entries for *skipped*
  rules are not judged — they had no chance to fire;
* ``ignore[*]`` wildcards are judged only when the full rule set ran;
* ``ignore[RL011]`` entries are exempt from staleness accounting and
  instead silence RL011 findings on their line the ordinary way.
"""

from __future__ import annotations

from typing import Iterator

from repro_lint.context import FileContext
from repro_lint.registry import Rule, register
from repro_lint.suppressions import STALE_RULE_CODE
from repro_lint.violations import Violation


@register
class StaleSuppression(Rule):
    code = STALE_RULE_CODE  # "RL011"
    name = "stale-suppression"
    description = (
        "a # repro-lint: ignore[...] / file-ignore[...] entry that "
        "suppresses nothing; remove it so suppressions cannot rot"
    )

    #: Detection happens in the engine after all other rules ran.
    engine_driven = True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())
