"""RL003 — unpicklable state crossing the process-pool boundary.

:mod:`repro.runtime.executor` fans work out over a
``ProcessPoolExecutor``: everything submitted is pickled into the
worker.  Lambdas, nested functions, locks, and open handles fail there
at runtime — sometimes only on the retry path, long after the code
"worked" serially.  This rule catches the statically visible cases:

* a ``lambda`` or locally-defined (nested) function passed to a
  pool-crossing call — ``submit`` / ``apply_async`` / ``imap*`` /
  ``starmap`` on anything, plus ``map`` when the receiver looks like a
  pool or executor;
* a default argument or dataclass-field default constructing an
  unpicklable object (``threading.Lock()`` & friends, ``open(...)``) —
  shared mutable state that cannot ride along into a worker.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set

from repro_lint.context import FileContext
from repro_lint.registry import Rule, register
from repro_lint.violations import Violation

_POOL_ONLY_METHODS = {
    "submit",
    "apply_async",
    "map_async",
    "starmap",
    "starmap_async",
    "imap",
    "imap_unordered",
}
_POOLISH_RECEIVER = re.compile(r"(pool|executor)", re.IGNORECASE)
_UNPICKLABLE_CTORS = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "Barrier",
}


def _receiver_name(func: ast.Attribute) -> str:
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return ""


def _is_pool_crossing(node: ast.Call) -> bool:
    if not isinstance(node.func, ast.Attribute):
        return False
    attr = node.func.attr
    if attr in _POOL_ONLY_METHODS:
        return True
    if attr == "map":
        return bool(_POOLISH_RECEIVER.search(_receiver_name(node.func)))
    return False


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function's body."""
    nested: Set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


def _is_unpicklable_ctor(node: ast.AST) -> str:
    """Describe an unpicklable constructor call, or ''."""
    if not isinstance(node, ast.Call):
        return ""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open()"
        if func.id in _UNPICKLABLE_CTORS:
            return f"{func.id}()"
    if isinstance(func, ast.Attribute) and func.attr in _UNPICKLABLE_CTORS:
        base = func.value
        mod = base.id if isinstance(base, ast.Name) else "?"
        return f"{mod}.{func.attr}()"
    return ""


@register
class PoolPickleSafety(Rule):
    code = "RL003"
    name = "pool-pickle-safety"
    description = (
        "unpicklable state crossing the repro.runtime pool boundary "
        "(lambda/nested function submitted to a pool, lock or open "
        "handle as a default); only module-level callables and plain "
        "data survive pickling into workers"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        nested = _nested_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_pool_crossing(node):
                args: List[ast.expr] = [
                    *node.args,
                    *[kw.value for kw in node.keywords],
                ]
                for arg in args:
                    if isinstance(arg, ast.Lambda):
                        yield self.violation(
                            ctx,
                            arg,
                            "lambda submitted across the process-pool "
                            "boundary cannot be pickled into a worker; "
                            "use a module-level function",
                        )
                    elif isinstance(arg, ast.Name) and arg.id in nested:
                        yield self.violation(
                            ctx,
                            arg,
                            f"nested function {arg.id!r} submitted across "
                            "the process-pool boundary cannot be pickled "
                            "into a worker; hoist it to module level",
                        )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                defaults = [
                    *node.args.defaults,
                    *[d for d in node.args.kw_defaults if d is not None],
                ]
                for default in defaults:
                    desc = _is_unpicklable_ctor(default)
                    if desc:
                        yield self.violation(
                            ctx,
                            default,
                            f"default argument {desc} is unpicklable "
                            "shared state; create it per call or inject "
                            "it explicitly",
                        )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                desc = _is_unpicklable_ctor(node.value)
                if desc and isinstance(
                    ctx.parent(node), ast.ClassDef
                ):
                    yield self.violation(
                        ctx,
                        node.value,
                        f"class attribute default {desc} is unpicklable "
                        "shared state; it cannot cross the pool boundary "
                        "— build it in __post_init__ or per use",
                    )
