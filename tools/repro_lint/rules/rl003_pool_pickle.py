"""RL003 — unpicklable state crossing the process-pool boundary.

:mod:`repro.runtime.executor` fans work out over a
``ProcessPoolExecutor``: everything submitted is pickled into the
worker.  Lambdas, nested functions, locks, and open handles fail there
at runtime — sometimes only on the retry path, long after the code
"worked" serially.  This rule catches the statically visible cases:

* a ``lambda`` or locally-defined (nested) function passed to a
  pool-crossing call — ``submit`` / ``apply_async`` / ``imap*`` /
  ``starmap`` on anything, plus ``map`` when the receiver looks like a
  pool or executor;
* a default argument or dataclass-field default constructing an
  unpicklable object (``threading.Lock()`` & friends, ``open(...)``) —
  shared mutable state that cannot ride along into a worker.

With the async serving runtime (:mod:`repro.runtime.service`) the same
hazards appear at the asyncio boundary, so the rule also covers:

* ``loop.run_in_executor(executor, fn, *args)`` — treated as a
  pool-crossing call unless the executor argument is the literal
  ``None`` (the default thread pool never pickles its payload);
* an ``async def`` function name submitted as a pool payload — the
  worker would manufacture a coroutine object nothing ever awaits;
* a local name previously bound to an unpicklable constructor (a lock,
  an ``open()`` handle, …) passed as a pool-crossing payload argument —
  the capture fails in the worker exactly like a default would.

With the HTTP gateway (:mod:`repro.gateway`) a third resource class
appears at the same boundary: live connections.  A ``socket.socket()``
(or anything bound to one) must never ride into a pool payload or a
default — the worker cannot pickle an open file descriptor, and even
if it could, two processes writing one HTTP response is wrong.  The
gateway keeps sockets on the event-loop side and ships only plain
request data to the shards.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set

from repro_lint.context import FileContext
from repro_lint.registry import Rule, register
from repro_lint.violations import Violation

_POOL_ONLY_METHODS = {
    "submit",
    "apply_async",
    "map_async",
    "starmap",
    "starmap_async",
    "imap",
    "imap_unordered",
}
_POOLISH_RECEIVER = re.compile(r"(pool|executor)", re.IGNORECASE)
_UNPICKLABLE_CTORS = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Event",
    "Barrier",
    "socket",
}


def _receiver_name(func: ast.Attribute) -> str:
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return ""


def _is_pool_crossing(node: ast.Call) -> bool:
    if not isinstance(node.func, ast.Attribute):
        return False
    attr = node.func.attr
    if attr in _POOL_ONLY_METHODS:
        return True
    if attr == "run_in_executor":
        # loop.run_in_executor(None, ...) is the default thread pool:
        # the payload never pickles, so lambdas/locals are fine there.
        if node.args and _is_none_literal(node.args[0]):
            return False
        return True
    if attr == "map":
        return bool(_POOLISH_RECEIVER.search(_receiver_name(node.func)))
    return False


def _is_none_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _payload_args(node: ast.Call) -> List[ast.expr]:
    """Arguments that actually travel into the worker.

    For ``run_in_executor`` the first positional argument is the
    executor itself, not payload.
    """
    args = list(node.args)
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "run_in_executor"
        and args
    ):
        args = args[1:]
    return [*args, *[kw.value for kw in node.keywords]]


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function's body."""
    nested: Set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


def _async_function_names(tree: ast.Module) -> Set[str]:
    """Names bound to ``async def`` anywhere in the module."""
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.AsyncFunctionDef)
    }


def _unpicklable_bindings(tree: ast.Module) -> dict:
    """Map of simple names assigned an unpicklable constructor."""
    bindings: dict = {}
    for node in ast.walk(tree):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        desc = _is_unpicklable_ctor(value)
        if not desc:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                bindings[target.id] = desc
    return bindings


def _is_unpicklable_ctor(node: ast.AST) -> str:
    """Describe an unpicklable constructor call, or ''."""
    if not isinstance(node, ast.Call):
        return ""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open()"
        if func.id in _UNPICKLABLE_CTORS:
            return f"{func.id}()"
    if isinstance(func, ast.Attribute) and func.attr in _UNPICKLABLE_CTORS:
        base = func.value
        mod = base.id if isinstance(base, ast.Name) else "?"
        return f"{mod}.{func.attr}()"
    return ""


@register
class PoolPickleSafety(Rule):
    code = "RL003"
    name = "pool-pickle-safety"
    description = (
        "unpicklable state crossing the repro.runtime pool boundary "
        "(lambda/nested function/coroutine submitted to a pool or "
        "run_in_executor; lock, socket, or open handle as a default or "
        "payload); only module-level plain callables and plain data "
        "survive pickling into workers"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        nested = _nested_function_names(ctx.tree)
        async_defs = _async_function_names(ctx.tree)
        bindings = _unpicklable_bindings(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_pool_crossing(node):
                for arg in _payload_args(node):
                    if isinstance(arg, ast.Lambda):
                        yield self.violation(
                            ctx,
                            arg,
                            "lambda submitted across the process-pool "
                            "boundary cannot be pickled into a worker; "
                            "use a module-level function",
                        )
                    elif isinstance(arg, ast.Name) and arg.id in nested:
                        yield self.violation(
                            ctx,
                            arg,
                            f"nested function {arg.id!r} submitted across "
                            "the process-pool boundary cannot be pickled "
                            "into a worker; hoist it to module level",
                        )
                    elif isinstance(arg, ast.Name) and arg.id in async_defs:
                        yield self.violation(
                            ctx,
                            arg,
                            f"coroutine function {arg.id!r} submitted as a "
                            "pool payload: the worker would build a "
                            "coroutine object nothing awaits; submit a "
                            "plain function and await on the loop side",
                        )
                    elif isinstance(arg, ast.Name) and arg.id in bindings:
                        yield self.violation(
                            ctx,
                            arg,
                            f"{arg.id!r} is bound to {bindings[arg.id]} "
                            "and cannot be pickled into a worker; pass "
                            "plain data and rebuild the resource inside "
                            "the worker",
                        )
            elif isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                defaults = [
                    *node.args.defaults,
                    *[d for d in node.args.kw_defaults if d is not None],
                ]
                for default in defaults:
                    desc = _is_unpicklable_ctor(default)
                    if desc:
                        yield self.violation(
                            ctx,
                            default,
                            f"default argument {desc} is unpicklable "
                            "shared state; create it per call or inject "
                            "it explicitly",
                        )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                desc = _is_unpicklable_ctor(node.value)
                if desc and isinstance(
                    ctx.parent(node), ast.ClassDef
                ):
                    yield self.violation(
                        ctx,
                        node.value,
                        f"class attribute default {desc} is unpicklable "
                        "shared state; it cannot cross the pool boundary "
                        "— build it in __post_init__ or per use",
                    )
