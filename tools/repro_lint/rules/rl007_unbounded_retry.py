"""RL007 — ad-hoc retry loops: bare sleeps and unbounded ``while True``.

The runtime's sanctioned retry machinery
(:class:`repro.runtime.faults.Backoff` pacing inside the executor's
bounded attempt loop) exists so every retry in ``src/repro`` is
*bounded* (a budget, not a prayer) and *paced* (exponential backoff
with deterministic jitter, not a constant ``time.sleep``).  Hand-rolled
retry loops defeat both: a bare ``time.sleep`` in an ``except`` path
retries in lockstep across workers (thundering herd) and is invisible
to telemetry's ``backoff_s`` accounting, and a ``while True`` whose
``except`` arm quietly loops again can spin forever on a persistent
fault.

Scope: modules under the ``repro/`` package.  Tests, benchmarks, and
tools may sleep and loop however they like.

Flagged:

* a ``time.sleep`` call (module attribute or ``from time import
  sleep`` binding) lexically inside an ``except`` handler, or inside a
  loop that also contains a ``try`` statement (retry pacing);
* a ``while True`` loop containing an ``except`` handler that neither
  re-raises nor leaves the loop (no ``raise`` / ``return`` / ``break``
  in the handler body) — an unbounded retry.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro_lint.context import FileContext
from repro_lint.registry import Rule, register
from repro_lint.violations import Violation


def _is_sleep_call(node: ast.AST, ctx: FileContext) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
        and func.attr == "sleep"
        and ctx.imports_module("time")
    ):
        return True
    if isinstance(func, ast.Name):
        return ctx.from_imports.get(func.id, "") == "time.sleep"
    return False


def _handler_escapes(handler: ast.ExceptHandler) -> bool:
    """Does the ``except`` arm leave the retry loop (or re-raise)?"""
    for stmt in ast.walk(handler):
        if isinstance(stmt, (ast.Raise, ast.Return, ast.Break)):
            return True
    return False


@register
class UnboundedRetry(Rule):
    code = "RL007"
    name = "unbounded-retry"
    description = (
        "ad-hoc retry: bare time.sleep pacing or an unbounded "
        "`while True` retry loop; bound attempts and pace with "
        "repro.runtime.faults.Backoff"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.repro_subpath() is not None

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # Sleeps inside except handlers: always retry pacing.
        flagged: List[ast.AST] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                for inner in ast.walk(node):
                    if _is_sleep_call(inner, ctx):
                        flagged.append(inner)
                        yield self.violation(
                            ctx,
                            inner,
                            "bare time.sleep in an except path retries in "
                            "lockstep and is invisible to backoff_s "
                            "telemetry; pace retries with "
                            "repro.runtime.faults.Backoff",
                        )
        # Sleeps inside a loop that also wraps work in try/except:
        # the loop is a retry loop and the sleep is its pacer.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.While, ast.For)):
                continue
            body_nodes = list(ast.walk(node))
            if not any(isinstance(n, ast.Try) for n in body_nodes):
                continue
            for inner in body_nodes:
                if _is_sleep_call(inner, ctx) and inner not in flagged:
                    flagged.append(inner)
                    yield self.violation(
                        ctx,
                        inner,
                        "bare time.sleep pacing a try/except retry loop; "
                        "use repro.runtime.faults.Backoff (bounded, "
                        "jittered, telemetry-accounted)",
                    )
        # while True loops whose except arm silently loops again.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            test = node.test
            if not (isinstance(test, ast.Constant) and test.value is True):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.ExceptHandler) and not (
                    _handler_escapes(inner)
                ):
                    yield self.violation(
                        ctx,
                        node,
                        "`while True` retry whose except arm never leaves "
                        "the loop can spin forever on a persistent fault; "
                        "bound the attempts (see EnsembleOptions."
                        "max_retries) and pace them with Backoff",
                    )
                    break
