"""RL001 — raw ``exp`` in a Boltzmann-accept / sigmoid context.

``np.exp(-delta / temp)`` overflows for large gaps or tiny
temperatures; the repo's convention is to route every acceptance
probability through :mod:`repro.ising.numerics`
(``boltzmann_accept_probability`` / ``stable_sigmoid``), whose
exponent is clamped non-positive by construction.  This rule flags a
raw ``np.exp`` / ``math.exp`` call when either

* it is compared against a ``*.random()`` / ``*.uniform()`` draw —
  the Metropolis-accept idiom, or
* its argument divides by a temperature-like name (``temp``,
  ``temperature``, ``beta``, ``tau``, a bare ``t``/``T``) — an
  acceptance or Gibbs probability even when the comparison is built
  elsewhere.

``repro/ising/numerics.py`` itself is exempt: it is the sanctioned
implementation the rule points everyone to.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro_lint.context import FileContext
from repro_lint.registry import Rule, register
from repro_lint.violations import Violation

_TEMP_NAME = re.compile(r"(^|_)(t|temp|temperature|beta|tau)(\d*)(_|$)")
_RANDOM_DRAW_ATTRS = {"random", "uniform", "random_sample", "rand"}


def _is_exp_call(ctx: FileContext, node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "exp":
        if isinstance(func.value, ast.Name):
            return (
                func.value.id in ctx.numpy_aliases
                or func.value.id == "math"
                and ctx.imports_module("math")
            )
    if isinstance(func, ast.Name):
        origin = ctx.from_imports.get(func.id, "")
        return origin in ("math.exp", "numpy.exp")
    return False


def _is_random_draw(node: ast.AST) -> bool:
    """``rng.random()``-shaped call (any receiver, no/any args)."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _RANDOM_DRAW_ATTRS
    )


def _compared_with_random(ctx: FileContext, call: ast.Call) -> bool:
    """Whether ``call`` is an operand of a compare against a draw."""
    node: ast.AST = call
    parent = ctx.parent(node)
    # Walk through trivial wrappers (unary minus, parens are implicit).
    while isinstance(parent, (ast.UnaryOp, ast.BinOp)):
        node = parent
        parent = ctx.parent(node)
    if not isinstance(parent, ast.Compare):
        return False
    operands = [parent.left, *parent.comparators]
    return any(_is_random_draw(op) for op in operands if op is not node)


def _divides_by_temperature(call: ast.Call) -> Optional[str]:
    """Temperature-like denominator name inside the exp argument."""
    for sub in ast.walk(call):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            denom = sub.right
            name = None
            if isinstance(denom, ast.Name):
                name = denom.id
            elif isinstance(denom, ast.Attribute):
                name = denom.attr
            if name is not None and _TEMP_NAME.search(name.lower()):
                return name
    return None


@register
class RawExpInAcceptContext(Rule):
    code = "RL001"
    name = "raw-exp-accept"
    description = (
        "raw np.exp/math.exp in an acceptance/sigmoid context; use "
        "repro.ising.numerics (boltzmann_accept_probability, "
        "stable_sigmoid) so the exponent cannot overflow"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not ctx.rel_path.endswith("repro/ising/numerics.py")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _is_exp_call(ctx, node)):
                continue
            if _compared_with_random(ctx, node):
                yield self.violation(
                    ctx,
                    node,
                    "raw exp() compared against a random draw "
                    "(Metropolis accept); use repro.ising.numerics."
                    "boltzmann_accept_probability instead",
                )
                continue
            denom = _divides_by_temperature(node)
            if denom is not None:
                yield self.violation(
                    ctx,
                    node,
                    f"raw exp() of an energy gap over temperature-like "
                    f"{denom!r}; use the clamped kernels in "
                    f"repro.ising.numerics instead",
                )
