"""RL005 — bare/overbroad ``except`` that swallows ``AnnealerError``.

:class:`repro.errors.AnnealerError` (and the wider ``ReproError``
family) signal *configuration* mistakes — they must fail loud, not be
absorbed by a blanket handler that was aimed at transient worker
faults.  A bare ``except:`` or ``except Exception:`` whose body never
re-raises swallows them silently.

Not flagged:

* handlers for specific exception types (``except ValueError:``);
* broad handlers that re-raise somewhere in their body;
* broad handlers in a ``try`` where an *earlier* handler already
  catches and re-raises the repro error family —
  ``except AnnealerError: raise`` followed by ``except Exception:`` is
  the sanctioned isolate-worker-faults idiom.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.context import FileContext
from repro_lint.registry import Rule, register
from repro_lint.violations import Violation

_BROAD = {"Exception", "BaseException"}
_REPRO_ERRORS = {"ReproError", "AnnealerError"}


def _type_names(expr: ast.AST) -> Iterator[str]:
    if isinstance(expr, ast.Name):
        yield expr.id
    elif isinstance(expr, ast.Attribute):
        yield expr.attr
    elif isinstance(expr, ast.Tuple):
        for elt in expr.elts:
            yield from _type_names(elt)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    return any(name in _BROAD for name in _type_names(handler.type))


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(sub, ast.Raise)
        for stmt in handler.body
        for sub in ast.walk(stmt)
    )


def _earlier_handler_reraises_repro(
    try_node: ast.Try, handler: ast.ExceptHandler
) -> bool:
    for earlier in try_node.handlers:
        if earlier is handler:
            return False
        if earlier.type is None:
            continue
        catches_repro = any(
            name in _REPRO_ERRORS for name in _type_names(earlier.type)
        )
        if catches_repro and _reraises(earlier):
            return True
    return False


@register
class SwallowedAnnealerError(Rule):
    code = "RL005"
    name = "swallowed-annealer-error"
    description = (
        "bare/overbroad except swallows AnnealerError; catch specific "
        "types, re-raise, or precede with `except AnnealerError: raise`"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if not _is_broad(handler):
                    continue
                if _reraises(handler):
                    continue
                if _earlier_handler_reraises_repro(node, handler):
                    continue
                kind = (
                    "bare except:"
                    if handler.type is None
                    else "except "
                    + "/".join(_type_names(handler.type))
                )
                yield self.violation(
                    ctx,
                    handler,
                    f"{kind} swallows AnnealerError (config errors must "
                    "fail loud); catch specific exceptions, re-raise, or "
                    "add `except AnnealerError: raise` first",
                )
