"""RL008 — blocking calls inside ``async def`` on the serving path.

The gateway and :class:`~repro.runtime.service.AnnealingService` run on
a single asyncio event loop; one synchronous ``time.sleep``, sync
socket/subprocess/file I/O, or blocking ``Future.result()`` inside a
coroutine stalls *every* in-flight request behind it.  Solver work is
deliberately pushed onto executor threads — the coroutine layer itself
must never block.

Scope: ``repro/runtime/service.py`` and everything under
``repro/gateway/``.  Only statements lexically inside an
``async def`` body are judged; synchronous helpers defined next to the
coroutines (and nested ``def`` functions destined for executors) may
block freely.

Flagged inside a coroutine:

* ``time.sleep(...)`` (module call or ``from time import sleep``) —
  use ``await asyncio.sleep``;
* ``subprocess.run/call/check_call/check_output/Popen`` — use
  ``asyncio.create_subprocess_exec``;
* ``socket.socket/create_connection/getaddrinfo`` — use asyncio
  streams / ``loop.getaddrinfo``;
* builtin ``open(...)`` — do file I/O on an executor;
* a non-awaited ``.result()`` call — blocking on a Future from a
  coroutine deadlock-prone; ``await`` the future or wrap it;
* ``.shutdown(wait=True)`` (or ``wait`` omitted) on an
  executor/pool/thread-named receiver — joining worker threads from
  the loop stalls it; offload via ``run_in_executor``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro_lint.context import FileContext
from repro_lint.registry import Rule, register
from repro_lint.violations import Violation

_SUBPROCESS_FNS = {"run", "call", "check_call", "check_output", "Popen"}
_SOCKET_FNS = {"socket", "create_connection", "getaddrinfo"}
#: Receiver-name fragments marking a thread-pool-ish object whose
#: ``.shutdown()`` joins worker threads.
_POOL_NAME_HINTS = ("pool", "executor", "thread")


def _module_attr_call(
    ctx: FileContext, node: ast.Call, module: str
) -> Optional[str]:
    """``module.fn(...)`` → ``fn`` when ``module`` is imported."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == module
        and ctx.imports_module(module)
    ):
        return func.attr
    return None


def _receiver_name(node: ast.expr) -> str:
    """Trailing identifier of a receiver expression (lower-cased)."""
    if isinstance(node, ast.Attribute):
        return node.attr.lower()
    if isinstance(node, ast.Name):
        return node.id.lower()
    return ""


def _keyword(node: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _blocking_reason(ctx: FileContext, node: ast.Call) -> str:
    """Why this call blocks the event loop ('' when it doesn't)."""
    func = node.func

    fn = _module_attr_call(ctx, node, "time")
    if fn == "sleep":
        return "time.sleep() stalls the event loop; await asyncio.sleep"
    fn = _module_attr_call(ctx, node, "subprocess")
    if fn in _SUBPROCESS_FNS:
        return (
            f"subprocess.{fn}() blocks the event loop; use "
            "asyncio.create_subprocess_exec"
        )
    fn = _module_attr_call(ctx, node, "socket")
    if fn in _SOCKET_FNS:
        return (
            f"sync socket.{fn}() blocks the event loop; use asyncio "
            "streams"
        )

    if isinstance(func, ast.Name):
        origin = ctx.from_imports.get(func.id, "")
        if origin == "time.sleep":
            return (
                "time.sleep() stalls the event loop; await asyncio.sleep"
            )
        if origin.startswith("subprocess.") and origin[11:] in _SUBPROCESS_FNS:
            return (
                f"{origin}() blocks the event loop; use "
                "asyncio.create_subprocess_exec"
            )
        if origin.startswith("socket.") and origin[7:] in _SOCKET_FNS:
            return f"sync {origin}() blocks the event loop; use asyncio streams"
        if func.id == "open" and func.id not in ctx.from_imports:
            return (
                "sync file I/O in a coroutine blocks the event loop; "
                "offload open() to an executor"
            )

    if isinstance(func, ast.Attribute):
        if func.attr == "result":
            return (
                "blocking Future.result() in a coroutine can deadlock "
                "the loop; await the future instead"
            )
        if func.attr == "shutdown":
            receiver = _receiver_name(func.value)
            if any(hint in receiver for hint in _POOL_NAME_HINTS):
                wait = _keyword(node, "wait")
                blocks = wait is None or not (
                    isinstance(wait, ast.Constant) and wait.value is False
                )
                if blocks:
                    return (
                        "executor.shutdown(wait=True) joins worker "
                        "threads on the event loop; offload via "
                        "loop.run_in_executor"
                    )
    return ""


def _async_body_calls(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AsyncFunctionDef, ast.Call, bool]]:
    """Yield ``(coroutine, call, is_awaited)`` for every call lexically
    inside a coroutine body.

    Nested ``def``/``async def`` bodies are not attributed to the outer
    coroutine: a sync closure handed to ``run_in_executor`` may block
    freely, and an inner coroutine is visited in its own right (``ast.
    walk`` finds it at any nesting depth).  Only the *direct* operand
    of an ``await`` counts as awaited.
    """
    for owner in ast.walk(tree):
        if not isinstance(owner, ast.AsyncFunctionDef):
            continue

        def visit(node: ast.AST) -> Iterator[Tuple[ast.Call, bool]]:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return  # separate execution context
            if isinstance(node, ast.Await) and isinstance(
                node.value, ast.Call
            ):
                yield node.value, True
                for child in ast.iter_child_nodes(node.value):
                    yield from visit(child)
                return
            if isinstance(node, ast.Call):
                yield node, False
            for child in ast.iter_child_nodes(node):
                yield from visit(child)

        for stmt in owner.body:
            for call, is_awaited in visit(stmt):
                yield owner, call, is_awaited


@register
class BlockingCallInAsync(Rule):
    code = "RL008"
    name = "blocking-call-in-async"
    description = (
        "blocking call (time.sleep, sync socket/subprocess/file I/O, "
        "Future.result, executor.shutdown(wait=True)) inside an async "
        "def on the serving path; the event loop must never stall"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        sub = ctx.repro_subpath()
        if sub is None:
            return False
        return sub == "runtime/service.py" or sub.startswith("gateway/")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for owner, call, is_awaited in _async_body_calls(ctx.tree):
            if is_awaited:
                continue  # awaited expressions yield the loop by design
            reason = _blocking_reason(ctx, call)
            if reason:
                yield self.violation(
                    ctx, call, f"in 'async def {owner.name}': {reason}"
                )
