"""Lint engine: file discovery, parsing, rule dispatch, suppression.

The engine is deliberately small: it turns paths into
:class:`~repro_lint.context.FileContext` objects, runs every active
rule over each, filters hits through the file's suppression comments,
and returns a deterministic, sorted violation list.  All domain
knowledge lives in the rules; all output formatting in the reporters.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro_lint.context import FileContext
from repro_lint.registry import Rule, select_rules
from repro_lint.suppressions import parse_suppressions
from repro_lint.violations import Violation

#: Directories never descended into during discovery.  ``fixtures``
#: holds the lint-rule test corpus — files that violate rules on
#: purpose (they are still linted explicitly by tests/lint).
_SKIP_DIRS = {
    "fixtures",
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    ".benchmarks",
    "results",
    "results_full",
    "build",
    "dist",
}

#: Code used for files that do not parse (always active, never a rule).
PARSE_ERROR_CODE = "RL000"


@dataclass
class LintReport:
    """Outcome of one engine run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted unique ``.py`` file list."""
    seen = set()
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for p in candidates:
            key = p.resolve()
            if key not in seen:
                seen.add(key)
                out.append(p)
    return out


def _build_context(path: Path, root: Optional[Path]) -> FileContext:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    try:
        rel = path.resolve().relative_to((root or Path.cwd()).resolve())
    except ValueError:
        rel = path
    return FileContext(
        path=str(path),
        rel_path=rel.as_posix(),
        source=source,
        tree=tree,
    )


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    root: Optional[Path] = None,
) -> List[Violation]:
    """Run ``rules`` over one file, honouring suppression comments."""
    try:
        ctx = _build_context(path, root)
    except SyntaxError as exc:
        return [
            Violation(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = parse_suppressions(ctx.source)
    hits: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if not suppressions.is_suppressed(violation.code, violation.line):
                hits.append(violation)
    return hits


def lint_paths(
    paths: Sequence[str],
    select: Iterable[str] = (),
    ignore: Iterable[str] = (),
    root: Optional[Path] = None,
) -> LintReport:
    """Lint every ``.py`` file reachable from ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories (directories are walked recursively).
    select, ignore:
        Optional rule-code filters (``select`` empty = all rules).
    root:
        Base for the repo-relative paths used by path-scoped rules;
        defaults to the current working directory.
    """
    rules = select_rules(select, ignore)
    report = LintReport()
    for path in discover_files(paths):
        report.files_checked += 1
        report.violations.extend(lint_file(path, rules, root=root))
    report.violations.sort()
    return report
