"""Lint engine: two-pass project analysis, rule dispatch, suppression.

Pass 1 parses every discovered file once and distils it into a
:class:`~repro_lint.project.ProjectContext` — the cross-file indexes
(import graph, exported symbols, dataclass fields, async defs) that
rules like RL009 read.  Pass 2 runs the per-file rules with that
context attached, filters hits through suppression comments (recording
which suppressions actually fired, the raw material of RL011), and
returns a deterministic, sorted violation list.

Two optional accelerators keep the bigger engine pre-commit fast:

* a content-hash cache (``cache_path``) replays per-file verdicts when
  neither the file, the active rule set, nor the project facts changed;
* ``jobs > 1`` fans pass 2 out over worker processes, with results
  re-ordered so output is byte-identical to a serial run.

All domain knowledge lives in the rules; all output formatting in the
reporters.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro_lint.cache import LintCache, cache_key, file_digest
from repro_lint.context import FileContext
from repro_lint.project import ProjectContext, build_project_context
from repro_lint.registry import Rule, rule_codes, select_rules
from repro_lint.suppressions import STALE_RULE_CODE, parse_suppressions
from repro_lint.violations import Violation

#: Directories never descended into during discovery.  ``fixtures``
#: holds the lint-rule test corpus — files that violate rules on
#: purpose (they are still linted explicitly by tests/lint).
_SKIP_DIRS = {
    "fixtures",
    "__pycache__",
    ".git",
    ".hypothesis",
    ".pytest_cache",
    ".benchmarks",
    "results",
    "results_full",
    "build",
    "dist",
}

#: Code used for files that do not parse (always active, never a rule).
PARSE_ERROR_CODE = "RL000"


@dataclass
class LintReport:
    """Outcome of one engine run."""

    violations: List[Violation] = field(default_factory=list)
    files_checked: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def discover_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted unique ``.py`` file list."""
    seen = set()
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for p in candidates:
            key = p.resolve()
            if key not in seen:
                seen.add(key)
                out.append(p)
    return out


def rel_path_for(path: Path, root: Optional[Path]) -> str:
    """Repo-relative posix path used for scoping and cross-file keys."""
    try:
        rel = path.resolve().relative_to((root or Path.cwd()).resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


def _build_context(
    path: Path, root: Optional[Path], project: Optional[ProjectContext]
) -> FileContext:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return FileContext(
        path=str(path),
        rel_path=rel_path_for(path, root),
        source=source,
        tree=tree,
        project=project,
    )


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    root: Optional[Path] = None,
    project: Optional[ProjectContext] = None,
) -> List[Violation]:
    """Run ``rules`` over one file, honouring suppression comments.

    When no pass-1 ``project`` is supplied (direct calls, tests), a
    single-file context is built on the fly so cross-file rules still
    see the facts of this one module.
    """
    if project is None:
        project = build_project_context([(path, rel_path_for(path, root))])
    try:
        ctx = _build_context(path, root, project)
    except SyntaxError as exc:
        return [
            Violation(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                code=PARSE_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    suppressions = parse_suppressions(ctx.source)
    hits: List[Violation] = []
    active = {rule.code for rule in rules}
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if not suppressions.suppress(violation.code, violation.line):
                hits.append(violation)
    if STALE_RULE_CODE in active:
        registry = set(rule_codes())
        # A wildcard entry is only provably stale when every registered
        # rule had the chance to fire on this run.
        assess_wildcard = registry.issubset(active)
        for line, scope, code in suppressions.stale_entries(
            active, registry, assess_wildcard
        ):
            if suppressions.is_suppressed(STALE_RULE_CODE, line):
                continue
            hits.append(
                Violation(
                    path=str(path),
                    line=line,
                    col=0,
                    code=STALE_RULE_CODE,
                    message=(
                        f"stale suppression: {scope}[{code}] silences "
                        "nothing on this run; remove it or restore the "
                        "code it excused"
                    ),
                )
            )
    return hits


# ----------------------------------------------------------------------
# --jobs worker plumbing.  Workers are primed once per process with the
# (picklable) rule selection, root, and project context, then receive
# bare path strings — the cheap part of each task.
_WORKER_STATE: Dict[str, object] = {}


def _init_worker(
    select: Tuple[str, ...],
    ignore: Tuple[str, ...],
    root: Optional[str],
    project: ProjectContext,
) -> None:
    _WORKER_STATE["rules"] = select_rules(select, ignore)
    _WORKER_STATE["root"] = Path(root) if root else None
    _WORKER_STATE["project"] = project


def _lint_one(path_str: str) -> List[Violation]:
    return lint_file(
        Path(path_str),
        _WORKER_STATE["rules"],  # type: ignore[arg-type]
        root=_WORKER_STATE["root"],  # type: ignore[arg-type]
        project=_WORKER_STATE["project"],  # type: ignore[arg-type]
    )


def _lint_parallel(
    files: Sequence[Path],
    select: Tuple[str, ...],
    ignore: Tuple[str, ...],
    root: Optional[Path],
    project: ProjectContext,
    jobs: int,
) -> Optional[List[List[Violation]]]:
    """Fan pass 2 out over processes; None when a pool cannot start."""
    import concurrent.futures

    try:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(select, ignore, str(root) if root else None, project),
        ) as pool:
            return list(pool.map(_lint_one, [str(p) for p in files]))
    except (OSError, ValueError, RuntimeError, PermissionError):
        return None  # sandboxed / restricted env: fall back to serial


def lint_paths(
    paths: Sequence[str],
    select: Iterable[str] = (),
    ignore: Iterable[str] = (),
    root: Optional[Path] = None,
    jobs: int = 1,
    cache_path: Optional[Path] = None,
) -> LintReport:
    """Lint every ``.py`` file reachable from ``paths``.

    Parameters
    ----------
    paths:
        Files and/or directories (directories are walked recursively).
    select, ignore:
        Optional rule-code filters (``select`` empty = all rules).
    root:
        Base for the repo-relative paths used by path-scoped rules;
        defaults to the current working directory.
    jobs:
        Worker processes for pass 2 (1 = in-process serial).  Output
        is byte-identical either way.
    cache_path:
        When given, per-file verdicts are replayed from / persisted to
        this JSON cache (see :mod:`repro_lint.cache` for the key).
    """
    select = tuple(select)
    ignore = tuple(ignore)
    rules = select_rules(select, ignore)
    files = discover_files(paths)
    pairs = [(path, rel_path_for(path, root)) for path in files]

    # Pass 1: project-wide indexes shared by every rule.
    project = build_project_context(pairs)

    report = LintReport(files_checked=len(files))
    results: Dict[int, List[Violation]] = {}

    cache: Optional[LintCache] = None
    keys: Dict[int, str] = {}
    if cache_path is not None:
        cache = LintCache.load(cache_path)
        fingerprint = project.fingerprint()
        signature = ",".join(sorted(rule.code for rule in rules))
        for idx, (path, rel) in enumerate(pairs):
            try:
                digest = file_digest(path.read_bytes())
            except OSError:
                digest = ""
            keys[idx] = cache_key(rel, str(path), digest, signature, fingerprint)
            cached = cache.get(keys[idx])
            if cached is not None:
                results[idx] = cached

    todo = [idx for idx in range(len(files)) if idx not in results]

    # Pass 2: per-file rules, parallel when asked and worthwhile.
    fresh: Optional[List[List[Violation]]] = None
    if jobs > 1 and len(todo) > 1:
        fresh = _lint_parallel(
            [files[idx] for idx in todo], select, ignore, root, project, jobs
        )
    if fresh is not None:
        for idx, violations in zip(todo, fresh):
            results[idx] = violations
    else:
        for idx in todo:
            results[idx] = lint_file(
                files[idx], rules, root=root, project=project
            )

    if cache is not None:
        for idx in todo:
            cache.put(keys[idx], results[idx])
        cache.save()
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses

    for idx in range(len(files)):
        report.violations.extend(results[idx])
    report.violations.sort()
    return report
