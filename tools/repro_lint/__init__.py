"""repro_lint — domain-aware static analysis for the repro codebase.

An AST-based rule engine that machine-checks the conventions the
reproduction's correctness rests on: numerically stable Boltzmann
accepts (RL001), explicit seeded ``Generator`` RNG (RL002),
pickle-safety across the ``repro.runtime`` process-pool boundary
(RL003), no shared mutable defaults (RL004), no blanket handlers that
swallow ``AnnealerError`` (RL005), and telemetry-owned wall-clock
reads in solver kernels (RL006).

Usage::

    python -m repro_lint src tests benchmarks
    python -m repro_lint --format json src
    python -m repro_lint --list-rules

Suppress a finding with a justification::

    np.random.SeedSequence()  # repro-lint: ignore[RL002] — entropy root

See ``docs/static-analysis.md`` for the rule catalogue and how to add
rules.
"""

from repro_lint.engine import (  # noqa: F401
    LintReport,
    discover_files,
    lint_file,
    lint_paths,
)
from repro_lint.registry import (  # noqa: F401
    Rule,
    all_rules,
    get_rule,
    register,
    rule_codes,
    select_rules,
)
from repro_lint.reporters import render_json, render_text  # noqa: F401
from repro_lint.violations import Violation  # noqa: F401

# Importing the rules package registers the built-in RLnnn rules.
import repro_lint.rules  # noqa: F401  isort:skip

__version__ = "1.0.0"

__all__ = [
    "LintReport",
    "Rule",
    "Violation",
    "all_rules",
    "discover_files",
    "get_rule",
    "lint_file",
    "lint_paths",
    "register",
    "render_json",
    "render_text",
    "rule_codes",
    "select_rules",
    "__version__",
]
