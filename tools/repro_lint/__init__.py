"""repro_lint — domain-aware static analysis for the repro codebase.

A two-pass, project-wide rule engine.  Pass 1 parses every file into a
:class:`~repro_lint.project.ProjectContext` (import graph, exported
symbols, dataclass field index, async-def index); pass 2 runs per-file
AST rules with that context available, which is what lets rules reason
*across* modules.

The rules machine-check the conventions the reproduction's correctness
rests on: numerically stable Boltzmann accepts (RL001), explicit
seeded ``Generator`` RNG (RL002), pickle-safety across the
``repro.runtime`` process-pool boundary (RL003), no shared mutable
defaults (RL004), no blanket handlers that swallow ``AnnealerError``
(RL005), telemetry-owned wall-clock reads in solver kernels (RL006),
bounded retry loops (RL007), no blocking calls on the async serving
path (RL008), wire codecs in bijection with their dataclasses
(RL009), bit-exactness of batched kernels (RL010), and no stale
suppression comments (RL011).

Usage::

    python -m repro_lint src tests benchmarks tools
    python -m repro_lint --format json src
    python -m repro_lint --format sarif --jobs 4 src
    python -m repro_lint --cache-path .lint-cache.json src
    python -m repro_lint --list-rules

Suppress a finding with a justification::

    np.random.SeedSequence()  # repro-lint: ignore[RL002] — entropy root

See ``docs/static-analysis.md`` for the rule catalogue and how to add
rules.
"""

from repro_lint.cache import LintCache  # noqa: F401
from repro_lint.engine import (  # noqa: F401
    LintReport,
    discover_files,
    lint_file,
    lint_paths,
)
from repro_lint.project import (  # noqa: F401
    ModuleSummary,
    ProjectContext,
    build_project_context,
)
from repro_lint.registry import (  # noqa: F401
    Rule,
    all_rules,
    get_rule,
    register,
    rule_codes,
    select_rules,
)
from repro_lint.reporters import (  # noqa: F401
    render_json,
    render_sarif,
    render_text,
    to_sarif,
)
from repro_lint.violations import Violation  # noqa: F401

# Importing the rules package registers the built-in RLnnn rules.
import repro_lint.rules  # noqa: F401  isort:skip

__version__ = "2.0.0"

__all__ = [
    "LintCache",
    "LintReport",
    "ModuleSummary",
    "ProjectContext",
    "Rule",
    "Violation",
    "all_rules",
    "build_project_context",
    "discover_files",
    "get_rule",
    "lint_file",
    "lint_paths",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_codes",
    "select_rules",
    "to_sarif",
    "__version__",
]
