"""Command-line interface: ``python -m repro_lint [paths...]``.

Exit codes: 0 clean, 1 violations found, 2 usage/IO error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import repro_lint.rules  # noqa: F401  (registers the built-in rules)
from repro_lint.engine import lint_paths
from repro_lint.registry import all_rules
from repro_lint.reporters import render_json, render_sarif, render_text


def _parse_codes(raw: Optional[str]) -> List[str]:
    if not raw:
        return []
    return [c.strip() for c in raw.split(",") if c.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro_lint",
        description=(
            "Domain-aware static analysis for the repro codebase: "
            "numeric-stability, reproducibility, and pickle-safety "
            "conventions, machine-checked."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files and/or directories to lint (recursed for *.py)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text; sarif is SARIF 2.1.0)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        help=(
            "base directory for path-scoped rules "
            "(default: current working directory)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for per-file analysis (default: 1; "
            "output is byte-identical either way)"
        ),
    )
    parser.add_argument(
        "--cache-path",
        metavar="FILE",
        help=(
            "JSON cache of per-file verdicts; replayed when neither "
            "the file, the rule set, nor the project facts changed"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}")
            print(f"       {rule.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro_lint: error: no paths given", file=sys.stderr)
        return 2

    if args.jobs < 1:
        print("repro_lint: error: --jobs must be >= 1", file=sys.stderr)
        return 2

    try:
        report = lint_paths(
            args.paths,
            select=_parse_codes(args.select),
            ignore=_parse_codes(args.ignore),
            root=Path(args.root) if args.root else None,
            jobs=args.jobs,
            cache_path=Path(args.cache_path) if args.cache_path else None,
        )
    except (FileNotFoundError, KeyError) as exc:
        msg = exc.args[0] if exc.args else str(exc)
        print(f"repro_lint: error: {msg}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(report))
    elif args.format == "sarif":
        print(render_sarif(report))
    else:
        print(render_text(report))
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
