"""Project-wide analysis context (pass 1 of the two-pass engine).

Single-file AST walks cannot see the bug classes that live *between*
modules: a wire codec drifting from the dataclass it serialises, a
blocking call inside an ``async def`` that a refactor moved across
files, a suppression left behind after the code it silenced was
deleted.  Pass 1 therefore parses every discovered file once and
distils it into a :class:`ProjectContext` — a picklable, pure-data
snapshot shared by every rule in pass 2:

* **module import graph** — which dotted module imports which;
* **exported-symbol table** — top-level ``def``/``class`` names (and
  ``__all__`` when literal) per module;
* **dataclass field index** — ``module.Class`` → ordered public field
  names, the ground truth RL009 checks wire codecs against;
* **decorator / async-def index** — qualified names of coroutine
  functions and the decorators applied to each top-level definition.

The context is deliberately *data, not ASTs*: it pickles cleanly into
``--jobs`` worker processes and hashes stably into the lint-cache key
(editing ``options.py`` must invalidate ``protocol.py``'s cached
result, because RL009's verdict there depends on both files).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Path roots stripped when deriving dotted module names, so
#: ``src/repro/runtime/options.py`` and ``tools/repro_lint/engine.py``
#: index as ``repro.runtime.options`` / ``repro_lint.engine``.
_SOURCE_ROOTS = ("src", "tools")


def module_name_for(rel_path: str) -> str:
    """Dotted module name of a repo-relative posix path ('' if none)."""
    parts = rel_path.split("/")
    if not parts or not parts[-1].endswith(".py"):
        return ""
    while parts and parts[0] in _SOURCE_ROOTS:
        parts = parts[1:]
    if not parts:
        return ""
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts or not all(p.isidentifier() for p in parts):
        return ""
    return ".".join(parts)


def _decorator_name(node: ast.expr) -> str:
    """Dotted name of one decorator expression ('' when dynamic)."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    return any(
        _decorator_name(dec).split(".")[-1] == "dataclass"
        for dec in node.decorator_list
    )


def _annotation_mentions(node: Optional[ast.expr], name: str) -> bool:
    if node is None:
        return False
    for inner in ast.walk(node):
        if isinstance(inner, ast.Name) and inner.id == name:
            return True
        if isinstance(inner, ast.Attribute) and inner.attr == name:
            return True
        if isinstance(inner, ast.Constant) and isinstance(inner.value, str):
            if name in inner.value:
                return True
    return False


def dataclass_fields_of(node: ast.ClassDef) -> Optional[Tuple[str, ...]]:
    """Ordered public field names of a ``@dataclass`` ClassDef.

    Returns None when the class is not decorated with ``dataclass``.
    ``ClassVar`` annotations and underscore-prefixed names (private
    caches like ``TSPInstance._matrix``) are not wire-visible fields
    and are excluded.
    """
    if not _is_dataclass_decorated(node):
        return None
    fields: List[str] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        target = stmt.target
        if not isinstance(target, ast.Name):
            continue
        if target.id.startswith("_"):
            continue
        if _annotation_mentions(stmt.annotation, "ClassVar"):
            continue
        fields.append(target.id)
    return tuple(fields)


@dataclass(frozen=True)
class ModuleSummary:
    """Pure-data distillate of one parsed module (pass-1 output)."""

    rel_path: str
    module: str  # dotted name, '' when underivable
    imports: Tuple[str, ...]  # modules named by import/from-import
    exports: Tuple[str, ...]  # top-level def/class names (or __all__)
    dataclasses: Dict[str, Tuple[str, ...]]  # class name -> fields
    async_functions: Tuple[str, ...]  # dotted qualnames of async defs
    decorators: Dict[str, Tuple[str, ...]]  # qualname -> decorator names


def summarize_module(rel_path: str, tree: ast.Module) -> ModuleSummary:
    """Distil one parsed file into its :class:`ModuleSummary`."""
    imports: List[str] = []
    exports: List[str] = []
    dataclasses: Dict[str, Tuple[str, ...]] = {}
    async_functions: List[str] = []
    decorators: Dict[str, Tuple[str, ...]] = {}

    def visit(nodes: Sequence[ast.stmt], prefix: str) -> None:
        for node in nodes:
            if isinstance(node, ast.Import):
                imports.extend(alias.name for alias in node.names)
            elif isinstance(node, ast.ImportFrom) and node.module:
                imports.append(node.module)
            elif isinstance(node, ast.ClassDef):
                qual = f"{prefix}{node.name}"
                if not prefix:
                    exports.append(node.name)
                names = tuple(
                    filter(None, map(_decorator_name, node.decorator_list))
                )
                if names:
                    decorators[qual] = names
                fields = dataclass_fields_of(node)
                if fields is not None:
                    dataclasses[node.name if not prefix else qual] = fields
                visit(node.body, f"{qual}.")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{node.name}"
                if not prefix:
                    exports.append(node.name)
                names = tuple(
                    filter(None, map(_decorator_name, node.decorator_list))
                )
                if names:
                    decorators[qual] = names
                if isinstance(node, ast.AsyncFunctionDef):
                    async_functions.append(qual)
                visit(node.body, f"{qual}.")
            elif isinstance(node, (ast.If, ast.Try)):
                # Imports guarded by TYPE_CHECKING / try-except still
                # bind names the project graph should know about.
                for child in ast.iter_child_nodes(node):
                    if isinstance(child, ast.stmt):
                        visit([child], prefix)

    visit(tree.body, "")
    return ModuleSummary(
        rel_path=rel_path,
        module=module_name_for(rel_path),
        imports=tuple(dict.fromkeys(imports)),
        exports=tuple(dict.fromkeys(exports)),
        dataclasses=dataclasses,
        async_functions=tuple(async_functions),
        decorators=decorators,
    )


@dataclass
class ProjectContext:
    """Cross-file indexes shared by every rule during pass 2."""

    modules: Dict[str, ModuleSummary] = field(default_factory=dict)
    #: rel_path -> dotted module name (for reverse lookups).
    module_of_path: Dict[str, str] = field(default_factory=dict)
    #: ``module.Class`` -> ordered public dataclass field names.
    dataclass_fields: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def add(self, summary: ModuleSummary) -> None:
        if summary.module:
            self.modules[summary.module] = summary
        self.module_of_path[summary.rel_path] = summary.module
        for cls, fields in summary.dataclasses.items():
            if summary.module:
                self.dataclass_fields[f"{summary.module}.{cls}"] = fields

    # ------------------------------------------------------------------
    def imports_of(self, module: str) -> Tuple[str, ...]:
        """Modules imported by ``module`` ('' summaries excluded)."""
        summary = self.modules.get(module)
        return summary.imports if summary is not None else ()

    def exports_of(self, module: str) -> Tuple[str, ...]:
        """Top-level definitions of ``module``."""
        summary = self.modules.get(module)
        return summary.exports if summary is not None else ()

    def fields_of(self, qualname: str) -> Optional[Tuple[str, ...]]:
        """Dataclass fields of ``module.Class`` (None when unknown)."""
        return self.dataclass_fields.get(qualname)

    def fingerprint(self) -> str:
        """Stable digest of every cross-file fact rules may consume.

        Part of the lint-cache key: a cached verdict for one file is
        only valid while the *project* facts it may have read are
        unchanged (RL009's verdict on ``protocol.py`` depends on
        ``options.py``'s dataclass fields).
        """
        payload = {
            module: {
                "imports": summary.imports,
                "exports": summary.exports,
                "dataclasses": {
                    cls: list(fields)
                    for cls, fields in sorted(summary.dataclasses.items())
                },
                "async": summary.async_functions,
                "decorators": {
                    qual: list(names)
                    for qual, names in sorted(summary.decorators.items())
                },
            }
            for module, summary in sorted(self.modules.items())
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


def build_project_context(
    pairs: Sequence[Tuple[Path, str]],
) -> ProjectContext:
    """Pass 1: parse ``(path, rel_path)`` pairs into a project context.

    Files that do not parse are skipped here — pass 2 reports them as
    ``RL000`` parse errors; the project simply has no facts for them.
    """
    project = ProjectContext()
    for path, rel_path in pairs:
        try:
            tree = ast.parse(
                path.read_text(encoding="utf-8"), filename=str(path)
            )
        except (SyntaxError, OSError, UnicodeDecodeError):
            continue
        project.add(summarize_module(rel_path, tree))
    return project
