"""Suppression-comment parsing.

Two forms, both addressing rules by code:

* line-level — ``# repro-lint: ignore[RL001]`` (or a comma list,
  ``ignore[RL001,RL005]``) on the same physical line as the violation
  silences those rules for that line only;
* file-level — ``# repro-lint: file-ignore[RL006]`` anywhere in the
  file (conventionally the module docstring area) silences the rules
  for the whole file.

``ignore[*]`` / ``file-ignore[*]`` silences every rule.  Comments are
found with :mod:`tokenize` so strings that merely *contain* the magic
text don't suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Set

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>file-ignore|ignore)\[(?P<codes>[^\]]+)\]"
)


@dataclass
class Suppressions:
    """Parsed suppression comments of one file."""

    file_codes: Set[str] = field(default_factory=set)
    line_codes: Dict[int, Set[str]] = field(default_factory=dict)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether ``code`` is silenced at ``line``."""
        if code in self.file_codes or "*" in self.file_codes:
            return True
        at_line = self.line_codes.get(line, ())
        return code in at_line or "*" in at_line


def parse_suppressions(source: str) -> Suppressions:
    """Extract every suppression comment from ``source``.

    Tolerates files that do not tokenize (the engine reports those as
    parse errors separately): whatever comments were seen before the
    tokenizer gave up still count.
    """
    sup = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(tok.string)
            if not match:
                continue
            codes = {
                c.strip() for c in match.group("codes").split(",") if c.strip()
            }
            if match.group("scope") == "file-ignore":
                sup.file_codes |= codes
            else:
                line = tok.start[0]
                sup.line_codes.setdefault(line, set()).update(codes)
    except tokenize.TokenError:
        pass
    return sup
