"""Suppression-comment parsing and usage accounting.

Two forms, both addressing rules by code:

* line-level — ``# repro-lint: ignore[RL001]`` (or a comma list,
  ``ignore[RL001,RL005]``) on the same physical line as the violation
  silences those rules for that line only;
* file-level — ``# repro-lint: file-ignore[RL006]`` anywhere in the
  file (conventionally the module docstring area) silences the rules
  for the whole file.

``ignore[*]`` / ``file-ignore[*]`` silences every rule.  Comments are
found with :mod:`tokenize` so strings that merely *contain* the magic
text don't suppress anything.

The engine filters violations through :meth:`Suppressions.suppress`,
which also *records* which entries fired — the raw material of RL011
(stale-suppression hygiene): an entry that silenced nothing over a
whole run is itself reported, so suppressions cannot rot in place
after the code they excused is fixed or deleted.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, Set, Tuple

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>file-ignore|ignore)\[(?P<codes>[^\]]+)\]"
)

#: The stale-suppression rule's own code.  Its entries are exempt from
#: staleness accounting (an ``ignore[RL011]`` silences RL011 findings
#: and is judged by that filtering, not by itself).
STALE_RULE_CODE = "RL011"


@dataclass
class Suppressions:
    """Parsed suppression comments of one file, with usage tracking."""

    file_codes: Set[str] = field(default_factory=set)
    line_codes: Dict[int, Set[str]] = field(default_factory=dict)
    #: code -> line of the first ``file-ignore`` comment carrying it.
    file_entry_lines: Dict[str, int] = field(default_factory=dict)
    _used_file: Set[str] = field(default_factory=set)
    _used_line: Set[Tuple[int, str]] = field(default_factory=set)

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether ``code`` is silenced at ``line`` (no usage recorded)."""
        if code in self.file_codes or "*" in self.file_codes:
            return True
        at_line = self.line_codes.get(line, ())
        return code in at_line or "*" in at_line

    def suppress(self, code: str, line: int) -> bool:
        """Like :meth:`is_suppressed`, but marks matching entries used.

        Every entry that would silence this violation is credited —
        a hit shared by a line comment and a ``file-ignore`` keeps
        both alive for RL011 purposes.
        """
        hit = False
        for entry in (code, "*"):
            if entry in self.file_codes:
                self._used_file.add(entry)
                hit = True
            if entry in self.line_codes.get(line, ()):
                self._used_line.add((line, entry))
                hit = True
        return hit

    def stale_entries(
        self,
        active_codes: Set[str],
        registry_codes: Set[str],
        assess_wildcard: bool,
    ) -> Iterator[Tuple[int, str, str]]:
        """Yield ``(line, scope, code)`` for entries that silenced nothing.

        Only codes in ``active_codes`` are judged — under a
        ``--select``/``--ignore`` filtered run an entry for a skipped
        rule had no chance to fire, so it is not stale evidence.  A
        code absent from ``registry_codes`` can *never* suppress
        anything and is always stale.  Wildcard entries are judged only
        when ``assess_wildcard`` (the full rule set ran).  RL011's own
        entries are exempt (see :data:`STALE_RULE_CODE`).
        """

        def judge(entry: str) -> bool:
            if entry == STALE_RULE_CODE:
                return False
            if entry == "*":
                return assess_wildcard
            if entry not in registry_codes:
                return True
            return entry in active_codes

        for entry in sorted(self.file_codes):
            if judge(entry) and entry not in self._used_file:
                line = self.file_entry_lines.get(entry, 1)
                yield (line, "file-ignore", entry)
        for line in sorted(self.line_codes):
            for entry in sorted(self.line_codes[line]):
                if judge(entry) and (line, entry) not in self._used_line:
                    yield (line, "ignore", entry)


def parse_suppressions(source: str) -> Suppressions:
    """Extract every suppression comment from ``source``.

    Tolerates files that do not tokenize (the engine reports those as
    parse errors separately): whatever comments were seen before the
    tokenizer gave up still count.
    """
    sup = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PATTERN.search(tok.string)
            if not match:
                continue
            codes = {
                c.strip() for c in match.group("codes").split(",") if c.strip()
            }
            line = tok.start[0]
            if match.group("scope") == "file-ignore":
                sup.file_codes |= codes
                for code in codes:
                    sup.file_entry_lines.setdefault(code, line)
            else:
                sup.line_codes.setdefault(line, set()).update(codes)
    except tokenize.TokenError:
        pass
    return sup
