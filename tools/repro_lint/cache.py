"""Content-hash lint cache.

Re-linting an unchanged tree is the common case (pre-commit hooks, CI
re-runs, editor integrations), so the engine can persist per-file
verdicts into a small JSON document and replay them when nothing
relevant changed.  A cached entry is keyed by everything its verdict
depends on:

* the file's **content digest** — any edit invalidates it;
* the **active rule set** (sorted codes) — ``--select``/``--ignore``
  changes and newly registered rules invalidate it;
* the **project fingerprint** — cross-file rules (RL009) read facts
  from *other* modules, so editing ``options.py`` must invalidate the
  cached verdict for ``protocol.py`` too;
* the **engine cache version** — bumped when rule semantics change.

The cache stores violations only; suppression accounting happens
before a verdict is cached, so replayed entries are byte-identical to
a fresh run.  A corrupt or foreign cache file is ignored, never fatal.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro_lint.violations import Violation

CACHE_SCHEMA = "repro_lint.cache/v1"

#: Bump when rule or engine semantics change in a way that should
#: invalidate previously cached verdicts wholesale.
ENGINE_CACHE_VERSION = "2"


def file_digest(data: bytes) -> str:
    """Content digest of one source file."""
    return hashlib.sha256(data).hexdigest()


def cache_key(
    rel_path: str,
    path_str: str,
    digest: str,
    rules_signature: str,
    project_fingerprint: str,
) -> str:
    """Composite key for one file's cached verdict."""
    blob = "\x00".join(
        (
            ENGINE_CACHE_VERSION,
            rel_path,
            path_str,
            digest,
            rules_signature,
            project_fingerprint,
        )
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class LintCache:
    """One cache file: load, query, update, save."""

    path: Path
    entries: Dict[str, List[Dict[str, Any]]] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0
    _touched: Dict[str, bool] = field(default_factory=dict, repr=False)

    @classmethod
    def load(cls, path: Path) -> "LintCache":
        cache = cls(path=path)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if not isinstance(doc, dict) or doc.get("schema") != CACHE_SCHEMA:
            return cache
        entries = doc.get("entries")
        if isinstance(entries, dict):
            cache.entries = {
                key: value
                for key, value in entries.items()
                if isinstance(value, list)
            }
        return cache

    def get(self, key: str) -> Optional[List[Violation]]:
        """Cached violations for ``key`` (None = miss)."""
        cached = self.entries.get(key)
        if cached is None:
            self.misses += 1
            return None
        try:
            violations = [Violation(**item) for item in cached]
        except TypeError:
            self.misses += 1
            return None
        self.hits += 1
        self._touched[key] = True
        return violations

    def put(self, key: str, violations: List[Violation]) -> None:
        self.entries[key] = [v.to_dict() for v in violations]
        self._touched[key] = True

    def save(self) -> None:
        """Persist only the entries this run touched (prunes stale keys)."""
        doc = {
            "schema": CACHE_SCHEMA,
            "entries": {
                key: self.entries[key]
                for key in sorted(self._touched)
                if key in self.entries
            },
        }
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self.path.write_text(
                json.dumps(doc, indent=1, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError:
            pass  # a read-only checkout must not fail the lint run
