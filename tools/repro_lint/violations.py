"""Violation record emitted by lint rules.

A :class:`Violation` pins one rule hit to a file/line/column.  Records
are plain data so both reporters (text, JSON) and the test suite can
consume them without knowing anything about the rule that produced
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Violation:
    """One rule hit, sortable into deterministic report order."""

    path: str  # posix-style path as given on the command line
    line: int  # 1-based line of the offending node
    col: int  # 0-based column of the offending node
    code: str  # rule code, e.g. "RL001"
    message: str  # human-readable explanation with the fix direction

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native view (keys match the JSON reporter schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    def format(self) -> str:
        """``path:line:col: CODE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
