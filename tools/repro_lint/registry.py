"""Pluggable rule registry.

Rules self-register with the :func:`register` class decorator; the
engine asks :func:`all_rules` for the active set.  Registration is
keyed by the rule's ``code`` (``RLnnn``) so ``--select`` / ``--ignore``
and suppression comments can address rules uniformly, and so a rule
pack shipped outside this package can extend the linter by importing
:func:`register` and decorating its own :class:`Rule` subclasses.
"""

from __future__ import annotations

import ast
import re
from typing import ClassVar, Dict, Iterable, Iterator, List, Type

from repro_lint.context import FileContext
from repro_lint.violations import Violation

_CODE_RE = re.compile(r"^RL\d{3}$")


class Rule:
    """Base class for lint rules.

    Subclasses define the class attributes below and implement
    :meth:`check`; :meth:`applies_to` optionally scopes the rule to a
    subset of files (path-based scoping — e.g. solver kernels only).
    """

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (default: yes)."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        """Yield every violation of this rule in the file."""
        raise NotImplementedError

    # Convenience for subclasses -----------------------------------------
    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a :class:`Rule` subclass to the registry."""
    if not _CODE_RE.match(cls.code):
        raise ValueError(
            f"rule code must match RLnnn, got {cls.code!r} on {cls.__name__}"
        )
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, sorted by code."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rule_codes() -> List[str]:
    """The sorted registered codes."""
    return sorted(_REGISTRY)


def get_rule(code: str) -> Rule:
    """Instantiate the rule registered under ``code``."""
    if code not in _REGISTRY:
        raise KeyError(
            f"unknown rule {code!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[code]()


def select_rules(
    select: Iterable[str] = (), ignore: Iterable[str] = ()
) -> List[Rule]:
    """The active rule set after ``--select`` / ``--ignore`` filtering."""
    chosen = set(select) or set(_REGISTRY)
    unknown = (chosen | set(ignore)) - set(_REGISTRY)
    if unknown:
        raise KeyError(
            f"unknown rule code(s) {sorted(unknown)}; "
            f"known: {', '.join(sorted(_REGISTRY))}"
        )
    return [
        _REGISTRY[code]()
        for code in sorted(chosen - set(ignore))
    ]
