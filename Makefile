# Convenience targets for the reproduction.

.PHONY: install test test-fast test-chaos lint typecheck check bench bench-full bench-json examples clean

install:
	pip install -e . --no-build-isolation || python setup.py develop

# Domain-aware static analysis (rule catalogue: docs/static-analysis.md).
# `tools` self-lints the linter; the content-hash cache makes warm
# pre-commit runs near-instant.
lint:
	PYTHONPATH=tools python -m repro_lint \
		--cache-path .lint-cache.json src tests benchmarks tools

# Strict typing gate; needs mypy (pip install -e .[dev]).  Skips with a
# notice when mypy is absent so `make check` stays runnable offline.
typecheck:
	@python -c "import mypy" 2>/dev/null \
		&& python -m mypy --strict src/repro \
		|| echo "typecheck skipped: mypy not installed (pip install -e .[dev])"

# The trailing lint re-run replays the cache the first pass wrote, so
# the warm-cache path is exercised on every check.
check: lint typecheck test
	@$(MAKE) --no-print-directory lint

test:
	pytest tests/

test-fast:
	pytest tests/ -m "not slow"

# Fault-injection suite: seeded crashes/hangs/broken pools on purpose,
# plus the shard-tier gateway chaos (evictions/failovers/stalls; marker
# chaos_gateway) — docs/robustness.md.  Deselect the slow parts
# elsewhere with -m "not chaos".
test-chaos:
	pytest tests/runtime/test_chaos.py tests/runtime/test_faults.py \
		tests/gateway/test_failover.py -q

bench:
	pytest benchmarks/ --benchmark-only

# Full-size experiments (hours of host time for the quality sweeps).
bench-full:
	REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only

# Append a run record to the machine-readable throughput logs:
# BENCH_ensemble.json (one ensemble, serial vs pool vs batched),
# BENCH_service.json (AnnealingService, concurrent jobs, shared pool),
# BENCH_gateway.json, and BENCH_workloads.json (QUBO problem families
# x backends with per-step op counts).  Each run appends a timestamped
# entry (schema repro.bench_log/v1) so the perf trajectory accumulates.
bench-json:
	pytest benchmarks/test_ext_ensemble_throughput.py \
		benchmarks/test_ext_service_throughput.py \
		benchmarks/test_ext_gateway_throughput.py \
		benchmarks/test_ext_workloads.py --benchmark-only

examples:
	python examples/quickstart.py
	python examples/pcb_drill_routing.py 400
	python examples/logistics_fleet.py 400
	python examples/noisy_sram_playground.py
	python examples/chip_designer_report.py
	python examples/maxcut_annealing.py 200

clean:
	rm -rf .pytest_cache .hypothesis .benchmarks .lint-cache.json
	find . -name __pycache__ -type d -exec rm -rf {} +
