"""Extension — Max-Cut workloads and the Table III normalisation law.

The Table III comparison chips are Max-Cut annealers; the paper's
footnotes argue TSP needs N²/N⁴ resources where Max-Cut needs n/n².
This bench (a) solves chip-scale Max-Cut instances with the annealing
machinery to show the substrate is complete, and (b) prints the
resource-blow-up law that justifies the functional normalisation.
"""

from __future__ import annotations

import pytest

from benchmarks._common import save_and_print
from repro.maxcut import (
    MaxCutAnnealParams,
    anneal_maxcut,
    greedy_maxcut,
    gset_style,
    local_search_improve,
    planted_bisection,
    spin_scaling_comparison,
)
from repro.utils.tables import Table

#: Spin counts of the published chips (Table III).
CHIP_SPINS = {"STATICA": 512, "CIM-Spin": 480, "Yamaoka": 1024}


@pytest.mark.benchmark(group="ext-maxcut")
def test_maxcut_at_published_chip_sizes(benchmark):
    from repro.maxcut import SBParams, simulated_bifurcation_maxcut

    def run():
        rows = []
        for chip, n in CHIP_SPINS.items():
            problem = gset_style(n, avg_degree=6.0, seed=42)
            greedy = greedy_maxcut(problem, seed=0)
            annealed = anneal_maxcut(
                problem, params=MaxCutAnnealParams(n_sweeps=150), seed=0
            )
            polished = local_search_improve(problem, annealed.spins)
            sb = simulated_bifurcation_maxcut(
                problem, SBParams(n_steps=1000), seed=0
            )
            rows.append((chip, n, problem.n_edges, greedy.cut_value,
                         annealed.cut_value, polished.cut_value,
                         sb.cut_value))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        "Extension — Max-Cut at the published chips' spin counts "
        "(G-set-style, +-1 weights)",
        ["chip size of", "#spins", "#edges", "greedy cut", "annealed cut",
         "+local search", "simulated bifurcation"],
    )
    for row in rows:
        table.add_row(list(row))
    table.add_note(
        "SA and dSB (refs [14-16]) both implemented end to end; all "
        "parallel-update families land in one quality band"
    )
    save_and_print(table, "ext_maxcut_chipsizes")

    for _, _, _, greedy, annealed, polished, sb in rows:
        assert annealed >= greedy       # annealing beats construction
        assert polished >= annealed     # polishing never hurts
        assert sb >= 0.9 * annealed     # dSB lands in the same band


@pytest.mark.benchmark(group="ext-maxcut")
def test_maxcut_recovers_planted_cut(benchmark):
    problem, _, planted_cut = planted_bisection(200, seed=7)
    res = benchmark.pedantic(
        anneal_maxcut, args=(problem,),
        kwargs=dict(params=MaxCutAnnealParams(n_sweeps=200), seed=0),
        rounds=1, iterations=1,
    )
    assert res.cut_value >= 0.97 * planted_cut


@pytest.mark.benchmark(group="ext-maxcut")
def test_spin_scaling_law(benchmark):
    sizes = [512, 1024, 3038, 5915, 85900]
    out = benchmark(spin_scaling_comparison, sizes)

    table = Table(
        "Extension — resource blow-up: Max-Cut vs (unoptimised) Ising TSP",
        ["problem size", "Max-Cut spins", "TSP spins (N^2)",
         "Max-Cut weight bits", "TSP weight bits (N^4*8)", "weight blow-up"],
    )
    for n in sizes:
        r = out[n]
        table.add_row(
            [n, r["maxcut_spins"], r["tsp_spins"], r["maxcut_weight_bits"],
             r["tsp_weight_bits"], r["weight_blowup"]]
        )
    table.add_note(
        "Table III footnote: pla85900 functionally needs 7.4G spins and "
        "4e20 weight bits before the clustering/CIM optimisations"
    )
    save_and_print(table, "ext_spin_scaling")

    assert out[85900]["tsp_spins"] == pytest.approx(7.38e9, rel=0.01)
    assert out[85900]["tsp_weight_bits"] == pytest.approx(4.36e20, rel=0.01)
