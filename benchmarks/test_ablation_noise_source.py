"""Ablation — SRAM intrinsic noise vs LFSR PRNG vs no noise.

Paper premise: the intrinsic process variation of SRAM can replace the
conventional LFSR noise generator *at no quality cost* while being far
cheaper in area/energy.  We check the quality equivalence, and that
having *some* noise beats pure greedy descent on average.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import bench_scale, bench_seed, save_and_print
from repro.annealer import AnnealerConfig, ClusteredCIMAnnealer, NoiseSource
from repro.tsp.generators import rl_style
from repro.tsp.reference import reference_length
from repro.utils.tables import Table

N_SEEDS = 5


def _run(instance, source, seeds):
    return [
        ClusteredCIMAnnealer(
            AnnealerConfig(seed=s, noise_source=source)
        ).solve(instance).length
        for s in seeds
    ]


@pytest.mark.benchmark(group="ablation-noise-source")
def test_sram_noise_equivalent_to_lfsr(benchmark):
    scale = bench_scale()
    n = max(200, int(3038 * scale))
    inst = rl_style(n, seed=bench_seed() + 1)
    ref = reference_length(inst)
    seeds = list(range(70, 70 + N_SEEDS))

    sram, lfsr, metro, none = benchmark.pedantic(
        lambda: (
            _run(inst, NoiseSource.SRAM, seeds),
            _run(inst, NoiseSource.LFSR, seeds),
            _run(inst, NoiseSource.METROPOLIS, seeds),
            _run(inst, NoiseSource.NONE, seeds),
        ),
        rounds=1,
        iterations=1,
    )

    table = Table(
        f"Ablation — annealing noise source (rl-style, N = {n}, {N_SEEDS} seeds)",
        ["noise source", "mean ratio", "best ratio", "worst ratio"],
    )
    for label, vals in [
        ("SRAM pseudo-read (proposed)", sram),
        ("LFSR PRNG (conventional)", lfsr),
        ("Metropolis (idealised)", metro),
        ("none (greedy descent)", none),
    ]:
        ratios = np.asarray(vals) / ref
        table.add_row(
            [label, float(ratios.mean()), float(ratios.min()), float(ratios.max())]
        )
    table.add_note(
        "paper: SRAM noise replaces the LFSR 'much more energy- and "
        "area-efficient[ly]' with equal function"
    )
    save_and_print(table, "ablation_noise_source")

    # Equivalence: SRAM within 5% of LFSR on average.
    assert np.mean(sram) == pytest.approx(np.mean(lfsr), rel=0.05)
    # Annealing helps: SRAM noise no worse than pure descent.
    assert np.mean(sram) <= np.mean(none) * 1.02
    # And within 5% of the idealised Metropolis ceiling.
    assert np.mean(sram) <= np.mean(metro) * 1.05
